"""Benchmark E19 — batch analytics: kernel-batched products vs loops.

Compares the ``repro.analytics`` products — OD cost matrices, service
areas, route frequencies — against the per-query dict-backend loops
they replace, exercises the pooled tile fan-out, and writes the result
as ``BENCH_analytics.json``.  Every product is parity-checked
element-wise against the reference loop: a batched sweep that returns
a different cost, membership set, or edge count fails the run instead
of reporting a bogus speedup.

Floors (asserted standalone at full scale, honest-gate convention of
``bench_parallel.py``):

* **OD batched-vs-per-query** — the chunked multi-source sweep beats
  one early-exit dict Dijkstra per pair by at least **5x**; always
  armed at full scale (the sweep amortises per-call overhead across
  the whole pair set, so the margin is wide).
* **pool tile scaling** — armed only on a multi-core host; a
  single-core box records the measured curve with the floor honestly
  disarmed (the sweep then measures dispatch overhead, not
  parallelism).

Runs standalone (``PYTHONPATH=src python benchmarks/bench_analytics.py``,
add ``--smoke`` for the tiny preset) or under pytest, where the smoke
preset keeps the tier-1 suite fast while still asserting exact parity
for all three products, pooled-vs-inline equality, and that the report
parses as valid ``BENCH_analytics.json``.
"""

import argparse
import json

import pytest

from repro.analytics.analytics_bench import (
    apply_overrides,
    full_config,
    run_analytics_benchmark,
    smoke_config,
    validate_report,
    write_report,
)


# ----------------------------------------------------------------------
# pytest entry points (smoke scale — see conftest.analytics_smoke_report)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="analytics")
def test_smoke_all_products_match_per_query_loops(analytics_smoke_report):
    """Zero element-wise mismatches for every product: OD cells,
    service-area membership, route-frequency counts."""
    report = analytics_smoke_report
    assert report["od"]["parity"]["mismatches"] == 0
    assert report["od"]["parity"]["max_abs_diff"] <= 1e-9
    assert report["service_area"]["parity"]["mismatches"] == 0
    assert report["route_frequencies"]["parity"]["mismatches"] == 0
    assert report["headline"]["parity_mismatches"] == 0


@pytest.mark.benchmark(group="analytics")
def test_smoke_pooled_tiles_equal_inline_sweep(analytics_smoke_report):
    """The pooled fan-out must reproduce the inline OD matrix exactly —
    workers run the identical kernel code on shared-memory arrays."""
    scaling = analytics_smoke_report["tile_scaling"]
    assert scaling["pooled_parity_mismatches"] == 0
    assert scaling["sweep"], "tile scaling sweep ran no worker counts"


@pytest.mark.benchmark(group="analytics")
def test_smoke_report_is_valid_bench_analytics_json(analytics_smoke_report):
    """The emitted document must round-trip as valid
    BENCH_analytics.json, with every floor disarmed at smoke scale."""
    validate_report(analytics_smoke_report)  # raises DataError on violation
    assert analytics_smoke_report["preset"] == "smoke"
    assert not analytics_smoke_report["od_speedup_assertion"]["required"], \
        "OD speedup floor must stay disarmed at smoke scale"
    scaling = analytics_smoke_report["tile_scaling"]["scaling_assertion"]
    assert not scaling["required"], \
        "pool scaling floor must stay disarmed at smoke scale"


@pytest.mark.benchmark(group="analytics")
def test_smoke_no_shared_memory_leaked(analytics_smoke_report):
    """Tile fan-out must tear its arena down completely."""
    assert analytics_smoke_report["shm"]["leaked_segments"] == []


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the batch-analytics plane")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny preset (small grid, sub-minute)")
    parser.add_argument("--out", default="BENCH_analytics.json",
                        help="report path (default: BENCH_analytics.json)")
    parser.add_argument("--size", type=int, default=None,
                        help="grid side length (vertices = size^2)")
    parser.add_argument("--origins", type=int, default=None,
                        help="OD matrix origin count")
    parser.add_argument("--destinations", type=int, default=None,
                        help="OD matrix destination count")
    parser.add_argument("--pairs", type=int, default=None,
                        help="route-frequency workload pair count")
    parser.add_argument("--workers", default=None,
                        help="comma-separated pool worker counts, e.g. 1,2,4")
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args(argv)

    config = apply_overrides(smoke_config() if args.smoke else full_config(),
                             size=args.size, origins=args.origins,
                             destinations=args.destinations,
                             pairs=args.pairs, workers=args.workers,
                             seed=args.seed)
    report = run_analytics_benchmark(config)
    write_report(report, args.out)
    print(json.dumps(report, indent=2))

    assertions = [("od_speedup_assertion", report["od_speedup_assertion"]),
                  ("tile_scaling.scaling_assertion",
                   report["tile_scaling"]["scaling_assertion"])]
    for name, assertion in assertions:
        if assertion["required"]:
            assert assertion["achieved"] >= assertion["target"], (
                f"{name}: {assertion['achieved']:.2f}x below the "
                f"{assertion['target']}x floor")
        else:
            print(f"{name} not armed — {assertion['note']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
