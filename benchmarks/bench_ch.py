"""Benchmark E18 — contraction hierarchies: CH lane vs the CSR lanes.

Compares the third routing lane (preprocessed contraction hierarchy,
``backend="ch"``) against both states of the CSR kernel's
point-to-point search — the cold early-exit Dijkstra lane and the
ALT-warmed A* lane — plus Yen candidate generation, on generated grid
networks, and writes the result as ``BENCH_ch.json``.  Every timed
block is parity-checked on vertex sequences *and* costs: a lane that
returns a different path fails the run instead of reporting a bogus
speedup.

Floors (asserted standalone at full scale, honest-gate convention of
``bench_parallel.py``):

* **search effort** — the CH query settles at least **5x** fewer
  vertices than the cold Dijkstra lane on the largest grid; always
  armed at full scale (settle counts are deterministic, no jitter).
* **wall clock vs ALT** — armed only when the measured settle counts
  leave 5x of room; on small planar grids ALT's goal direction already
  settles barely more vertices than the path is long, so the report
  records the measured ratio with the floor honestly disarmed.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_ch.py``, add
``--smoke`` for the tiny preset) or under pytest, where the smoke
preset keeps the tier-1 suite fast while still asserting exact parity
between the lanes and that the report parses as valid
``BENCH_ch.json``.
"""

import argparse
import json

import pytest

from repro.graph.ch_bench import (
    apply_overrides,
    full_config,
    run_ch_benchmark,
    smoke_config,
    validate_report,
    write_report,
)


# ----------------------------------------------------------------------
# pytest entry points (smoke scale — see conftest.ch_smoke_report)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="ch")
def test_smoke_ch_paths_match_csr_lanes_exactly(ch_smoke_report):
    """The hierarchy must return byte-identical paths: zero mismatched
    vertex sequences and costs equal up to float summation order."""
    for entry in ch_smoke_report["networks"]:
        parity = entry["parity"]
        assert parity["path_mismatches"] == 0, (
            f"{entry['name']}: {parity['path_mismatches']} CH paths "
            f"differ from the CSR lanes")
        assert parity["cost_max_abs_diff"] <= 1e-9, (
            f"{entry['name']}: cost diff {parity['cost_max_abs_diff']}")


@pytest.mark.benchmark(group="ch")
def test_smoke_report_is_valid_bench_ch_json(ch_smoke_report):
    """The emitted document must round-trip as valid BENCH_ch.json."""
    validate_report(ch_smoke_report)  # raises DataError on violation
    assert ch_smoke_report["preset"] == "smoke"
    for name in ("effort_assertion", "speedup_assertion"):
        assert not ch_smoke_report[name]["required"], (
            f"{name} must stay disarmed at smoke scale")


@pytest.mark.benchmark(group="ch")
def test_smoke_hierarchy_actually_contracted(ch_smoke_report):
    """A hierarchy with no shortcuts would be a plain bidirectional
    Dijkstra in disguise; even the smoke grid must contract."""
    for entry in ch_smoke_report["networks"]:
        assert entry["ch_shortcuts"] > 0, (
            f"{entry['name']}: contraction produced no shortcuts")
        assert entry["ch_build_ms"] > 0.0


@pytest.mark.benchmark(group="ch")
def test_smoke_ch_cuts_search_effort(ch_smoke_report):
    """Even at smoke scale the upward search must beat the cold lane's
    settle count — the scalable claim behind the hierarchy."""
    for entry in ch_smoke_report["networks"]:
        effort = entry["query_effort"]
        assert effort["settle_reduction_vs_dijkstra"] > 1.0, (
            f"{entry['name']}: CH settled {effort['ch_settled_per_query']} "
            f"vs cold Dijkstra {effort['dijkstra_settled_per_query']}")


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the contraction-hierarchy routing lane")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny preset (one small grid, sub-second)")
    parser.add_argument("--out", default="BENCH_ch.json",
                        help="report path (default: BENCH_ch.json)")
    parser.add_argument("--sizes", default=None,
                        help="comma-separated grid sizes, e.g. 12,24,40")
    parser.add_argument("--k", type=int, default=None,
                        help="paths per Yen query")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--backend", default=None, choices=("csr", "dict"),
                        help="baseline lanes to time (default csr; dict "
                             "adds the slow reference lane)")
    parser.add_argument("--shards", type=int, default=None,
                        help="also benchmark per-shard hierarchy builds "
                             "and corridor certificates at this shard "
                             "count")
    args = parser.parse_args(argv)

    config = apply_overrides(smoke_config() if args.smoke else full_config(),
                             sizes=args.sizes, k=args.k, seed=args.seed,
                             baseline=args.backend, shards=args.shards)
    report = run_ch_benchmark(config)
    write_report(report, args.out)
    print(json.dumps(report, indent=2))

    for name in ("effort_assertion", "speedup_assertion"):
        assertion = report[name]
        if assertion["required"]:
            assert assertion["achieved"] >= assertion["target"], (
                f"{name}: {assertion['achieved']:.2f}x below the "
                f"{assertion['target']}x floor on {assertion['network']}")
        else:
            print(f"{name} not armed — {assertion['note']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
