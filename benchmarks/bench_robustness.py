"""Benchmark E14 — the resilience plane under injected failures.

Drives the PR-7 resilience plane through
``repro.serving.robustness_bench``: a dormant overhead/parity check (no
faults: armed resilience must be free and response-identical), a killed
shard lane (breaker trip, fallback routing, post-disarm recovery), a
slow scorer against a request deadline, and an open-loop 2x overload
against a bounded admission queue.  The result is written as
``BENCH_robustness.json``.

Target (asserted standalone at full scale): zero dormant mismatches and
throughput within 3% of the control arm, killed-lane availability >=
99% with zero hung requests, breaker trip *and* recovery visible, and
overload shedding engaged with non-shed availability >= 99%.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_robustness.py``,
add ``--smoke`` for the tiny preset) or under pytest, where the smoke
preset keeps the tier-1 suite fast while still asserting the
availability, breaker, and parity invariants.
"""

import argparse
import json

import pytest

from repro.serving.robustness_bench import (
    AVAILABILITY_FLOOR,
    apply_overrides,
    full_config,
    run_robustness_benchmark,
    smoke_config,
    validate_report,
    write_report,
)

#: Full-scale acceptance floor: resilience disarmed must cost <= 3%.
DORMANT_RATIO_TARGET = 0.97
#: Smoke-scale floor: generous, because CI timing jitter on a
#: sub-second run is real — the full-scale standalone run enforces the
#: honest 0.97.
SMOKE_RATIO_FLOOR = 0.5


# ----------------------------------------------------------------------
# pytest entry points (smoke scale — see conftest.robustness_smoke_report)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="robustness")
def test_smoke_dormant_parity_is_exact(robustness_smoke_report):
    """With no faults injected, an armed resilience plane must not
    change a single response."""
    dormant = robustness_smoke_report["dormant"]
    assert dormant["requests"] > 0
    assert dormant["mismatches"] == 0
    assert dormant["max_abs_score_diff"] <= 1e-6
    # Nothing may have fired: the armed arm saw a healthy service.
    counters = dormant["armed_counters"]
    assert counters["deadline_exceeded"] == 0
    assert counters["shed_rejected"] == 0 and counters["shed_degraded"] == 0
    assert counters["breaker_degraded"] == 0


@pytest.mark.benchmark(group="robustness")
def test_smoke_dormant_overhead_is_bounded(robustness_smoke_report):
    ratio = robustness_smoke_report["headline"]["dormant_throughput_ratio"]
    assert ratio >= SMOKE_RATIO_FLOOR, (
        f"armed resilience fell to {ratio:.2f}x of the control engine "
        f"with no faults injected")


@pytest.mark.benchmark(group="robustness")
def test_smoke_killed_lane_stays_available(robustness_smoke_report):
    """A dead shard lane must degrade, never hang or error out."""
    killed = robustness_smoke_report["killed_lane"]
    assert killed["availability"] >= AVAILABILITY_FLOOR
    assert killed["hung"] == 0
    served = killed["run"]["served_by"]
    assert served["fallback"] > 0, (
        "the tripped lane never routed to the fallback")


@pytest.mark.benchmark(group="robustness")
def test_smoke_breaker_trips_and_recovers(robustness_smoke_report):
    killed = robustness_smoke_report["killed_lane"]
    assert killed["breaker_after_fault"]["trips"] >= 1
    recovery = killed["recovery"]
    assert recovery["recoveries"] >= 1
    assert recovery["state"] == "closed"
    assert recovery["model_served"] > 0, (
        "the recovered lane never model-served a probe request")


@pytest.mark.benchmark(group="robustness")
def test_smoke_slow_scorer_expires_deadlines(robustness_smoke_report):
    """A stalled lane must expire requests with structured errors at
    bounded latency instead of hanging clients."""
    slow = robustness_smoke_report["slow_scorer"]
    assert slow["hung"] == 0
    assert slow["deadline_exceeded"] >= 1
    bound_ms = (slow["deadline_ms"] + slow["injected_delay_ms"] + 500.0)
    assert slow["p95_ms"] <= bound_ms, (
        f"slow-scorer p95 {slow['p95_ms']:.1f} ms exceeds the "
        f"{bound_ms:.0f} ms deadline+stall bound")


@pytest.mark.benchmark(group="robustness")
def test_smoke_overload_sheds_by_policy(robustness_smoke_report):
    overload = robustness_smoke_report["overload"]
    assert overload["shed_total"] >= 1
    assert overload["hung"] == 0
    assert overload["non_shed_availability"] >= AVAILABILITY_FLOOR


@pytest.mark.benchmark(group="robustness")
def test_smoke_report_is_valid_bench_robustness_json(robustness_smoke_report):
    """The emitted document must round-trip as valid BENCH_robustness.json."""
    validate_report(robustness_smoke_report)  # raises DataError on violation
    assert robustness_smoke_report["preset"] == "smoke"


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the resilience plane under injected "
                    "failures")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny preset (two regions, a few seconds)")
    parser.add_argument("--out", default="BENCH_robustness.json",
                        help="report path (default: BENCH_robustness.json)")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--concurrency", type=int, default=None)
    parser.add_argument("--k", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args(argv)

    config = apply_overrides(
        smoke_config() if args.smoke else full_config(),
        requests=args.requests, shards=args.shards,
        concurrency=args.concurrency, k=args.k, seed=args.seed)
    report = run_robustness_benchmark(config)
    write_report(report, args.out)
    print(json.dumps(report, indent=2))

    if not args.smoke:
        headline = report["headline"]
        assert headline["dormant_mismatches"] == 0
        assert headline["dormant_throughput_ratio"] >= DORMANT_RATIO_TARGET, (
            f"dormant throughput ratio "
            f"{headline['dormant_throughput_ratio']:.3f} below the "
            f"{DORMANT_RATIO_TARGET} floor")
        assert headline["killed_lane_availability"] >= AVAILABILITY_FLOOR
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
