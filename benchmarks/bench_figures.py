"""Benchmarks E4-E8 — the figure-style sweeps and baseline comparison.

The poster's result tables vary the embedding size M and the candidate
strategy; these benches densify those axes (M, k, diversity threshold ξ,
training fraction) and regenerate the baseline comparison behind the
paper's motivation (classic criteria rank candidate paths poorly).
"""

import pytest

from repro.experiments import (
    baseline_comparison,
    diversity_threshold_sweep,
    embedding_size_sweep,
    k_sweep,
    render_table,
    training_fraction_sweep,
)


def _print_sweep(title, points):
    rows = [[p.value, p.metrics.mae, p.metrics.mare, p.metrics.tau, p.metrics.rho]
            for p in points]
    print()
    print(render_table(title, [points[0].axis, "MAE", "MARE", "tau", "rho"], rows))


@pytest.mark.benchmark(group="fig-embedding-size")
def test_fig_embedding_size(benchmark, pipeline, bench_config):
    sizes = (16, 32, 64, 128) if bench_config.name == "paper" else (16, 32, 64)
    points = benchmark.pedantic(
        embedding_size_sweep, args=(pipeline,), kwargs={"sizes": sizes},
        rounds=1, iterations=1,
    )
    _print_sweep("Figure E4: embedding size M sweep", points)
    assert len(points) == len(sizes)
    # Shape: the largest M should not be the worst configuration.
    taus = [p.metrics.tau for p in points]
    assert taus[-1] > min(taus) - 1e-9


@pytest.mark.benchmark(group="fig-k")
def test_fig_k_sweep(benchmark, pipeline, bench_config):
    ks = (3, 5, 8) if bench_config.name != "paper" else (3, 5, 8, 10)
    points = benchmark.pedantic(
        k_sweep, args=(pipeline,), kwargs={"ks": ks}, rounds=1, iterations=1,
    )
    _print_sweep("Figure E5: candidate count k sweep", points)
    for point in points:
        assert -1.0 <= point.metrics.tau <= 1.0


@pytest.mark.benchmark(group="fig-diversity")
def test_fig_diversity_threshold(benchmark, pipeline, bench_config):
    thresholds = (0.6, 0.8, 0.95) if bench_config.name != "paper" \
        else (0.5, 0.6, 0.7, 0.8, 0.9)
    points = benchmark.pedantic(
        diversity_threshold_sweep, args=(pipeline,),
        kwargs={"thresholds": thresholds}, rounds=1, iterations=1,
    )
    _print_sweep("Figure E6: diversity threshold xi sweep", points)
    assert len(points) == len(thresholds)


@pytest.mark.benchmark(group="fig-training-size")
def test_fig_training_fraction(benchmark, pipeline, bench_config):
    fractions = (0.5, 1.0) if bench_config.name != "paper" \
        else (0.25, 0.5, 0.75, 1.0)
    points = benchmark.pedantic(
        training_fraction_sweep, args=(pipeline,),
        kwargs={"fractions": fractions}, rounds=1, iterations=1,
    )
    _print_sweep("Figure E8: training-set size sweep", points)
    # Shape: more training data should not hurt badly.
    assert points[-1].metrics.tau >= points[0].metrics.tau - 0.1


@pytest.mark.benchmark(group="fig-baselines")
def test_fig_baseline_comparison(benchmark, pipeline, bench_config):
    results = benchmark.pedantic(
        baseline_comparison, args=(pipeline,), rounds=1, iterations=1,
    )
    rows = [[name, m.mae, m.mare, m.tau, m.rho] for name, m in results.items()]
    print()
    print(render_table("Figure E7: PathRank vs classic ranking criteria",
                       ["method", "MAE", "MARE", "tau", "rho"], rows))
    if bench_config.name == "smoke":
        return  # shape claims are meaningless at integration scale
    # The paper's motivating claim: learned ranking beats every classic
    # criterion on rank correlation.
    pathrank_tau = results["PathRank"].tau
    for name, metrics in results.items():
        if name == "PathRank":
            continue
        assert pathrank_tau > metrics.tau - 0.02, (
            f"PathRank (tau={pathrank_tau:.4f}) should not lose to "
            f"{name} (tau={metrics.tau:.4f})"
        )
