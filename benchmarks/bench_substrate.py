"""Benchmarks E9/E10 — substrate micro-benchmarks.

E9 measures the routing kernels behind candidate generation (Dijkstra,
bidirectional Dijkstra, A*, Yen, diversified top-k); E10 measures
node2vec.  These are genuine pytest-benchmark timings (multiple rounds),
unlike the table benches which time one full pipeline run.
"""

import pytest

from repro.embedding import BiasedWalkGenerator, Node2Vec, Node2VecConfig
from repro.graph import (
    astar,
    bidirectional_dijkstra,
    diversified_top_k,
    shortest_path,
    yen_k_shortest_paths,
)
from repro.trajectories import MapMatcher, TrajectoryGenerator, generate_fleet


@pytest.fixture(scope="module")
def od_pair(pipeline):
    network = pipeline.network
    ids = network.vertex_ids()
    return network, ids[0], ids[-1]


@pytest.mark.benchmark(group="substrate-routing")
def test_bench_dijkstra(benchmark, od_pair):
    network, source, target = od_pair
    path = benchmark(shortest_path, network, source, target)
    assert path.source == source


@pytest.mark.benchmark(group="substrate-routing")
def test_bench_bidirectional(benchmark, od_pair):
    network, source, target = od_pair
    path = benchmark(bidirectional_dijkstra, network, source, target)
    assert path.length == pytest.approx(
        shortest_path(network, source, target).length)


@pytest.mark.benchmark(group="substrate-routing")
def test_bench_astar(benchmark, od_pair):
    network, source, target = od_pair
    path = benchmark(astar, network, source, target)
    assert path.target == target


@pytest.mark.benchmark(group="substrate-routing")
def test_bench_yen_top5(benchmark, od_pair):
    network, source, target = od_pair
    paths = benchmark(yen_k_shortest_paths, network, source, target, 5)
    assert 1 <= len(paths) <= 5


@pytest.mark.benchmark(group="substrate-routing")
def test_bench_diversified_top5(benchmark, od_pair):
    network, source, target = od_pair
    result = benchmark(diversified_top_k, network, source, target, 5,
                       threshold=0.8, examine_limit=100)
    assert len(result) >= 1
    # Diversification inspects more of the enumeration than it keeps.
    assert result.examined >= len(result)


@pytest.mark.benchmark(group="substrate-embedding")
def test_bench_node2vec_walks(benchmark, pipeline):
    network = pipeline.network
    walker = BiasedWalkGenerator(network)
    walks = benchmark(walker.generate, 2, 20, 0)
    assert len(walks) == 2 * network.num_vertices


@pytest.mark.benchmark(group="substrate-embedding")
def test_bench_node2vec_full(benchmark, pipeline):
    network = pipeline.network
    config = Node2VecConfig(dim=16, num_walks=2, walk_length=15, epochs=1)

    def fit():
        return Node2Vec(network, config).fit(rng=0)

    matrix = benchmark.pedantic(fit, rounds=1, iterations=1)
    assert matrix.shape == (network.num_vertices, 16)


@pytest.mark.benchmark(group="substrate-matching")
def test_bench_map_matching(benchmark, pipeline):
    network = pipeline.network
    population, trips = generate_fleet(network, num_drivers=2,
                                       trips_per_driver=2, rng=5)
    generator = TrajectoryGenerator(network, population)
    trajectory = generator.render_gps(trips[:1], rng=0)[0]
    matcher = MapMatcher(network)
    result = benchmark(matcher.match, trajectory)
    assert result.path.num_vertices >= 2
