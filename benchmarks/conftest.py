"""Shared fixtures for the benchmark suite.

The benchmarks regenerate every table and figure of the paper's
evaluation at the ``quick`` preset scale (small region, short training)
so the whole suite finishes in minutes.  Heavy shared artifacts —
network, fleet, labelled queries, node2vec matrices — are produced once
per session through :class:`ExperimentPipeline`'s cache.

Scale can be raised with ``REPRO_BENCH_PRESET=paper`` to regenerate the
EXPERIMENTS.md headline numbers.
"""

import json
import os

import pytest

from repro.core import scoring_bench
from repro.experiments import ExperimentConfig, ExperimentPipeline
from repro.graph.routing_bench import (
    run_routing_benchmark,
    smoke_config,
    write_report,
)


def _preset() -> ExperimentConfig:
    name = os.environ.get("REPRO_BENCH_PRESET", "quick")
    if name == "paper":
        return ExperimentConfig.paper()
    if name == "smoke":
        return ExperimentConfig.smoke()
    return ExperimentConfig.quick()


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return _preset()


@pytest.fixture(scope="session")
def pipeline(bench_config) -> ExperimentPipeline:
    return ExperimentPipeline(bench_config)


def pytest_collect_file(file_path, parent):
    """Wire the routing/scoring/serving/sharding/observability/
    robustness benchmarks' smoke assertions into tier-1.

    Benchmark modules are named ``bench_*.py`` and therefore invisible
    to the default ``test_*.py`` collection — the heavyweight table /
    figure benches must stay opt-in.  The routing, scoring, serving,
    sharding, observability, robustness, parallel, CH, and analytics
    benches' smoke modes run in a few seconds combined and guard the
    CSR kernel, the fused-scoring backend, the concurrent serving
    engine, the shard plane, the telemetry plane, the resilience plane,
    the process-pool execution plane, the contraction-hierarchy routing
    lane, and the batch-analytics plane
    (not-slower + parity + valid ``BENCH_*.json``), so they alone are
    collected explicitly.
    """
    if file_path.name in ("bench_routing.py", "bench_scoring.py",
                          "bench_serving.py", "bench_sharding.py",
                          "bench_observability.py", "bench_robustness.py",
                          "bench_parallel.py", "bench_ch.py",
                          "bench_analytics.py"):
        return pytest.Module.from_parent(parent, path=file_path)


@pytest.fixture(scope="session")
def routing_smoke_report(tmp_path_factory):
    """The routing benchmark at smoke scale, round-tripped through its
    JSON report so the schema tests exercise what ``bench-routing``
    actually writes.  This wrapper is what wires ``bench_routing.py``
    into the tier-1 test run at a tiny, stable-cost preset."""
    report = run_routing_benchmark(smoke_config())
    out = tmp_path_factory.mktemp("routing") / "BENCH_routing.json"
    write_report(report, out)
    return json.loads(out.read_text(encoding="utf-8"))


@pytest.fixture(scope="session")
def ch_smoke_report(tmp_path_factory):
    """The contraction-hierarchy benchmark at smoke scale, round-tripped
    through its JSON report so the schema tests exercise what
    ``bench-ch`` actually writes.  This wrapper is what wires
    ``bench_ch.py`` into the tier-1 test run at a tiny, stable-cost
    preset."""
    from repro.graph import ch_bench

    report = ch_bench.run_ch_benchmark(ch_bench.smoke_config())
    out = tmp_path_factory.mktemp("ch") / "BENCH_ch.json"
    ch_bench.write_report(report, out)
    return json.loads(out.read_text(encoding="utf-8"))


@pytest.fixture(scope="session")
def scoring_smoke_report(tmp_path_factory):
    """The scoring benchmark at smoke scale, round-tripped through its
    JSON report so the schema tests exercise what ``bench-scoring``
    actually writes.  This wrapper is what wires ``bench_scoring.py``
    into the tier-1 test run at a tiny, stable-cost preset."""
    report = scoring_bench.run_scoring_benchmark(scoring_bench.smoke_config())
    out = tmp_path_factory.mktemp("scoring") / "BENCH_scoring.json"
    scoring_bench.write_report(report, out)
    return json.loads(out.read_text(encoding="utf-8"))


@pytest.fixture(scope="session")
def serving_smoke_report(tmp_path_factory):
    """The serving benchmark at smoke scale, round-tripped through its
    JSON report so the schema tests exercise what ``bench-serve
    --report`` actually writes.  This wrapper is what wires
    ``bench_serving.py`` into the tier-1 test run at a tiny,
    stable-cost preset."""
    from repro.serving import serving_bench

    report = serving_bench.run_serving_benchmark(serving_bench.smoke_config())
    out = tmp_path_factory.mktemp("serving") / "BENCH_serving.json"
    serving_bench.write_report(report, out)
    return json.loads(out.read_text(encoding="utf-8"))


@pytest.fixture(scope="session")
def sharding_smoke_report(tmp_path_factory):
    """The sharding benchmark at smoke scale, round-tripped through its
    JSON report so the schema tests exercise what ``bench-sharding``
    actually writes.  This wrapper is what wires ``bench_sharding.py``
    into the tier-1 test run at a tiny, stable-cost preset."""
    from repro.serving import sharding_bench

    report = sharding_bench.run_sharding_benchmark(
        sharding_bench.smoke_config())
    out = tmp_path_factory.mktemp("sharding") / "BENCH_sharding.json"
    sharding_bench.write_report(report, out)
    return json.loads(out.read_text(encoding="utf-8"))


@pytest.fixture(scope="session")
def observability_smoke_report(tmp_path_factory):
    """The observability benchmark at smoke scale, round-tripped through
    its JSON report so the schema tests exercise what
    ``bench-observability`` actually writes.  This wrapper is what wires
    ``bench_observability.py`` into the tier-1 test run at a tiny,
    stable-cost preset."""
    from repro.obs import observability_bench

    report = observability_bench.run_observability_benchmark(
        observability_bench.smoke_config())
    out = tmp_path_factory.mktemp("obs") / "BENCH_observability.json"
    observability_bench.write_report(report, out)
    return json.loads(out.read_text(encoding="utf-8"))


@pytest.fixture(scope="session")
def robustness_smoke_report(tmp_path_factory):
    """The robustness benchmark at smoke scale, round-tripped through
    its JSON report so the schema tests exercise what
    ``bench-robustness`` actually writes.  This wrapper is what wires
    ``bench_robustness.py`` into the tier-1 test run at a tiny,
    stable-cost preset."""
    from repro.serving import robustness_bench

    report = robustness_bench.run_robustness_benchmark(
        robustness_bench.smoke_config())
    out = tmp_path_factory.mktemp("robustness") / "BENCH_robustness.json"
    robustness_bench.write_report(report, out)
    return json.loads(out.read_text(encoding="utf-8"))


@pytest.fixture(scope="session")
def parallel_smoke_report(tmp_path_factory):
    """The execution-plane benchmark at smoke scale, round-tripped
    through its JSON report so the schema tests exercise what
    ``bench-parallel`` actually writes.  This wrapper is what wires
    ``bench_parallel.py`` into the tier-1 test run at a tiny,
    stable-cost preset."""
    from repro.exec import parallel_bench

    report = parallel_bench.run_parallel_benchmark(
        parallel_bench.smoke_config())
    out = tmp_path_factory.mktemp("parallel") / "BENCH_parallel.json"
    parallel_bench.write_report(report, out)
    return json.loads(out.read_text(encoding="utf-8"))


@pytest.fixture(scope="session")
def analytics_smoke_report(tmp_path_factory):
    """The batch-analytics benchmark at smoke scale, round-tripped
    through its JSON report so the schema tests exercise what
    ``bench-analytics`` actually writes.  This wrapper is what wires
    ``bench_analytics.py`` into the tier-1 test run at a tiny,
    stable-cost preset."""
    from repro.analytics import analytics_bench

    report = analytics_bench.run_analytics_benchmark(
        analytics_bench.smoke_config())
    out = tmp_path_factory.mktemp("analytics") / "BENCH_analytics.json"
    analytics_bench.write_report(report, out)
    return json.loads(out.read_text(encoding="utf-8"))


@pytest.fixture(scope="session", autouse=True)
def _no_shared_memory_leaks():
    """Session-wide /dev/shm hygiene: whatever the suite spawned, no
    ``repro-exec-*`` segment may survive the last test."""
    yield
    from repro.exec.shm import list_repro_segments

    leaked = list_repro_segments()
    assert leaked == [], (
        f"benchmark suite leaked shared-memory segments: {leaked}")


@pytest.fixture(scope="session")
def bench_embedding_sizes(bench_config):
    """Embedding sizes for the table benches: the paper's (64, 128) at
    paper scale, halved at quick scale to bound wall-clock."""
    if bench_config.name == "paper":
        return (64, 128)
    return (32, 64)
