"""Shared fixtures for the benchmark suite.

The benchmarks regenerate every table and figure of the paper's
evaluation at the ``quick`` preset scale (small region, short training)
so the whole suite finishes in minutes.  Heavy shared artifacts —
network, fleet, labelled queries, node2vec matrices — are produced once
per session through :class:`ExperimentPipeline`'s cache.

Scale can be raised with ``REPRO_BENCH_PRESET=paper`` to regenerate the
EXPERIMENTS.md headline numbers.
"""

import os

import pytest

from repro.experiments import ExperimentConfig, ExperimentPipeline


def _preset() -> ExperimentConfig:
    name = os.environ.get("REPRO_BENCH_PRESET", "quick")
    if name == "paper":
        return ExperimentConfig.paper()
    if name == "smoke":
        return ExperimentConfig.smoke()
    return ExperimentConfig.quick()


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return _preset()


@pytest.fixture(scope="session")
def pipeline(bench_config) -> ExperimentPipeline:
    return ExperimentPipeline(bench_config)


@pytest.fixture(scope="session")
def bench_embedding_sizes(bench_config):
    """Embedding sizes for the table benches: the paper's (64, 128) at
    paper scale, halved at quick scale to bound wall-clock."""
    if bench_config.name == "paper":
        return (64, 128)
    return (32, 64)
