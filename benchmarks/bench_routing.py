"""Benchmark E12 — routing backends: dict reference vs CSR kernel.

Compares the two routing backends on generated grid networks across
sizes for the three workloads candidate generation leans on —
single-source Dijkstra, point-to-point shortest path, and Yen's
k-shortest-paths — and writes the result as ``BENCH_routing.json``.
Every timed block is parity-checked: a backend that returns different
costs fails the run instead of reporting a bogus speedup.

Targets (asserted standalone at full scale): the CSR backend is at
least **5x** faster on single-source queries and **3x** faster on
k-shortest-path candidate generation at the largest benchmarked size.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_routing.py``,
add ``--smoke`` for the tiny preset) or under pytest, where the smoke
preset keeps the tier-1 suite fast while still asserting that the CSR
backend is not slower than the reference and that the report parses as
valid ``BENCH_routing.json``.
"""

import argparse
import json

import pytest

from repro.graph.routing_bench import (
    apply_overrides,
    full_config,
    run_routing_benchmark,
    smoke_config,
    validate_report,
    write_report,
)

#: Full-scale acceptance floors for the largest benchmarked network.
SSSP_TARGET = 5.0
KSP_TARGET = 3.0


# ----------------------------------------------------------------------
# pytest entry points (smoke scale — see conftest.routing_smoke_report)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="routing")
def test_smoke_csr_backend_not_slower(routing_smoke_report):
    """Even on a tiny grid the CSR kernel must not lose to the dict
    backend on any benchmarked workload."""
    for entry in routing_smoke_report["networks"]:
        for block in ("single_source", "point_to_point", "ksp"):
            speedup = entry[block]["speedup"]
            assert speedup >= 1.0, (
                f"{entry['name']} {block}: CSR is slower than the dict "
                f"reference (speedup {speedup:.2f}x)"
            )


@pytest.mark.benchmark(group="routing")
def test_smoke_report_is_valid_bench_routing_json(routing_smoke_report):
    """The emitted document must round-trip as valid BENCH_routing.json."""
    validate_report(routing_smoke_report)  # raises DataError on violation
    assert routing_smoke_report["preset"] == "smoke"


@pytest.mark.benchmark(group="routing")
def test_smoke_backends_agree_on_costs(routing_smoke_report):
    for entry in routing_smoke_report["networks"]:
        for key, diff in entry["parity"].items():
            assert diff <= 1e-9, f"{entry['name']} {key}: {diff}"


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the dict vs CSR routing backends")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny preset (one small grid, sub-second)")
    parser.add_argument("--out", default="BENCH_routing.json",
                        help="report path (default: BENCH_routing.json)")
    parser.add_argument("--sizes", default=None,
                        help="comma-separated grid sizes, e.g. 12,24,40")
    parser.add_argument("--k", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args(argv)

    config = apply_overrides(smoke_config() if args.smoke else full_config(),
                             sizes=args.sizes, k=args.k, seed=args.seed)
    report = run_routing_benchmark(config)
    write_report(report, args.out)
    print(json.dumps(report, indent=2))

    if not args.smoke:
        largest = report["largest"]
        assert largest["single_source_speedup"] >= SSSP_TARGET, (
            f"single-source speedup {largest['single_source_speedup']:.1f}x "
            f"below the {SSSP_TARGET}x target")
        assert largest["ksp_speedup"] >= KSP_TARGET, (
            f"ksp speedup {largest['ksp_speedup']:.1f}x below the "
            f"{KSP_TARGET}x target")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
