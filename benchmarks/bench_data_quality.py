"""Benchmark E12 — candidate-set quality: the D-TkDI data advantage.

Measures the paper's central training-data claim on the generated
corpus: diversified candidate sets have (a) lower pairwise overlap and
(b) larger ground-truth score spread than plain top-k sets, which is
precisely the variation a regression model needs.
"""

import pytest

from repro.experiments import render_table
from repro.experiments.analysis import compare_strategies
from repro.ranking import Strategy, TrainingDataConfig


@pytest.mark.benchmark(group="data-quality")
def test_candidate_set_quality(benchmark, pipeline):
    base = pipeline.base.training_data

    def build():
        tkdi = TrainingDataConfig(strategy=Strategy.TKDI, k=base.k,
                                  examine_limit=base.examine_limit)
        dtkdi = TrainingDataConfig(strategy=Strategy.D_TKDI, k=base.k,
                                   diversity_threshold=base.diversity_threshold,
                                   examine_limit=base.examine_limit)
        return compare_strategies({
            "TkDI": pipeline.train_queries(tkdi),
            "D-TkDI": pipeline.train_queries(dtkdi),
        })

    stats = benchmark.pedantic(build, rounds=1, iterations=1)
    rows = [[name, s.mean_candidates, s.mean_pairwise_similarity,
             s.mean_score_spread, s.mean_best_score, s.coverage_at_80,
             s.mean_candidate_stretch, s.mean_best_stretch]
            for name, s in stats.items()]
    print()
    print(render_table(
        "E12: candidate-set quality by strategy",
        ["strategy", "cands/query", "pairwise WJ", "score spread",
         "best score", "coverage@0.8", "stretch", "best stretch"],
        rows,
    ))

    tkdi, dtkdi = stats["TkDI"], stats["D-TkDI"]
    # The paper's data insight, asserted:
    assert dtkdi.mean_pairwise_similarity < tkdi.mean_pairwise_similarity, \
        "diversified candidates must overlap less than plain top-k"
    assert dtkdi.mean_score_spread > tkdi.mean_score_spread, \
        "diversified candidates must spread the ground-truth scores more"
