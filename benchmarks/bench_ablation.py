"""Benchmark E11 — design ablation.

Trains the full PR-A2 model against stripped variants (frozen
embeddings, random-init embeddings, unidirectional GRU, final-state
pooling, pure pointwise loss, multi-task head) on the same data, and
prints the grid.  DESIGN.md calls out each of these choices; this bench
quantifies them.
"""

import pytest

from repro.experiments import ablation_grid, render_table


@pytest.mark.benchmark(group="ablation")
def test_ablation_grid(benchmark, pipeline, bench_config):
    results = benchmark.pedantic(ablation_grid, args=(pipeline,),
                                 rounds=1, iterations=1)
    rows = [[name, m.mae, m.mare, m.tau, m.rho] for name, m in results.items()]
    print()
    print(render_table("Ablation E11: PathRank design choices",
                       ["configuration", "MAE", "MARE", "tau", "rho"], rows))
    assert "PR-A2 (full)" in results
    if bench_config.name == "smoke":
        return  # shape claims are meaningless at integration scale
    full_tau = results["PR-A2 (full)"].tau
    # The full model should be competitive with every ablation.
    for name, metrics in results.items():
        assert full_tau > metrics.tau - 0.15, (
            f"full model tau={full_tau:.4f} collapsed against {name} "
            f"(tau={metrics.tau:.4f})"
        )
