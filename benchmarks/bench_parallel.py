"""Benchmark E13 — the process-pool execution plane vs inline serving.

Drives the PR-8 execution plane through ``repro.exec.parallel_bench``:
a closed-loop Zipf workload replayed through ``execution="inline"``
(the oracle), ``execution="threads"`` (shard/snapshot group fan-out),
and ``execution="processes"`` at a sweep of worker counts over
shared-memory CSR + compiled-weight segments.  The result is written
as ``BENCH_parallel.json``.

Target (asserted standalone at full scale, *on a multi-core host*):
>= 2x engine throughput at the largest worker count vs one worker.  On
a single-core machine the sweep records honest numbers and the floor
stays disarmed — the report's ``cores`` field says which regime it
measured.  Parity is unconditional at every scale: processes and
threads responses must be element-wise identical to inline serving,
and no ``repro-exec-*`` shared-memory segment may outlive the run.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_parallel.py``,
add ``--smoke`` for the tiny preset) or under pytest, where the smoke
preset keeps the tier-1 suite fast while still asserting parity,
dormant-inline neutrality, segment hygiene, and a valid report.
"""

import argparse
import json

import pytest

from repro.exec.parallel_bench import (
    apply_overrides,
    full_config,
    run_parallel_benchmark,
    smoke_config,
    validate_report,
    write_report,
)

#: Dormant-seam tolerance: ``execution="inline"`` must serve within a
#: factor of the field-free default config.  The two arms run the same
#: code path, so this bounds CI timing jitter, not real overhead; the
#: full-scale standalone run tightens it.
SMOKE_DORMANT_FLOOR = 0.5
FULL_DORMANT_FLOOR = 0.9


# ----------------------------------------------------------------------
# pytest entry points (smoke scale — see conftest.parallel_smoke_report)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="parallel")
def test_smoke_processes_parity_is_exact(parallel_smoke_report):
    """Process-pool responses must be element-wise identical to inline
    serving (same rankings; workers mirror the fused scoring branch)."""
    parity = parallel_smoke_report["parity"]["processes"]
    assert parity["requests"] > 0
    assert parity["mismatches"] == 0
    assert parity["max_abs_score_diff"] <= 1e-6


@pytest.mark.benchmark(group="parallel")
def test_smoke_threads_parity_is_exact(parallel_smoke_report):
    """Thread fan-out coalesces per (shard, snapshot) group but must
    not change a single response."""
    parity = parallel_smoke_report["parity"]["threads"]
    assert parity["requests"] > 0
    assert parity["mismatches"] == 0
    assert parity["max_abs_score_diff"] <= 1e-6


@pytest.mark.benchmark(group="parallel")
def test_smoke_dormant_inline_is_free(parallel_smoke_report):
    """Naming ``execution="inline"`` explicitly must cost nothing next
    to the field-free default config (the dormant-seam guarantee)."""
    dormant = parallel_smoke_report["dormant_inline"]
    assert dormant["throughput_ratio"] >= SMOKE_DORMANT_FLOOR, (
        f"explicit inline fell to {dormant['throughput_ratio']:.2f}x of "
        f"the default config")


@pytest.mark.benchmark(group="parallel")
def test_smoke_no_shared_memory_leak(parallel_smoke_report):
    """Every repro-exec segment must be unlinked when the arms close."""
    assert parallel_smoke_report["shm"]["leaked_segments"] == []
    assert parallel_smoke_report["headline"]["leaked_segments"] == 0


@pytest.mark.benchmark(group="parallel")
def test_smoke_sweep_covers_worker_counts(parallel_smoke_report):
    """The sweep must report one finite throughput entry per worker
    count, and the pool microbench must have measured round-trips."""
    sweep = parallel_smoke_report["scaling"]["sweep"]
    counts = [entry["workers"] for entry in sweep]
    assert counts == sorted(set(counts)) and len(counts) >= 2
    assert all(entry["throughput_qps"] > 0 for entry in sweep)
    assert parallel_smoke_report["pool"]["roundtrip_ms"]["p50"] > 0


@pytest.mark.benchmark(group="parallel")
def test_smoke_report_is_valid_bench_parallel_json(parallel_smoke_report):
    """The emitted document must round-trip as valid BENCH_parallel.json."""
    validate_report(parallel_smoke_report)  # raises DataError on violation
    assert parallel_smoke_report["preset"] == "smoke"
    assert parallel_smoke_report["cores"] >= 1


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the process-pool execution plane vs "
                    "inline serving")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny preset (two workers, a few seconds)")
    parser.add_argument("--out", default="BENCH_parallel.json",
                        help="report path (default: BENCH_parallel.json)")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--workers", default=None,
                        help="comma-separated worker counts, e.g. 1,2,4")
    parser.add_argument("--k", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args(argv)

    config = apply_overrides(
        smoke_config() if args.smoke else full_config(),
        requests=args.requests, workers=args.workers,
        k=args.k, seed=args.seed)
    report = run_parallel_benchmark(config)
    write_report(report, args.out)
    print(json.dumps(report, indent=2))

    if not args.smoke:
        headline = report["headline"]
        assert headline["processes_mismatches"] == 0
        assert headline["threads_mismatches"] == 0
        assert headline["leaked_segments"] == 0
        assert headline["dormant_inline_ratio"] >= FULL_DORMANT_FLOOR, (
            f"dormant inline ratio {headline['dormant_inline_ratio']:.2f} "
            f"below the {FULL_DORMANT_FLOOR} floor")
        assertion = report["scaling"]["speedup_assertion"]
        if assertion["required"]:
            assert assertion["achieved"] >= assertion["target"], (
                f"speedup {assertion['achieved']:.2f}x below the "
                f"{assertion['target']}x floor at "
                f"{assertion['workers']} workers")
        else:
            print(f"speedup floor not armed — {assertion['note']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
