"""Benchmark E13 — scoring backends: module reference vs fused kernel.

Compares PathRank inference through the autograd module forward and the
fused numpy kernel (``repro.nn.fused``) on serving-shaped workloads —
per-query candidate lists and coalesced mixed-length batches, plus
bucketed vs global padding and cold vs warm kernel compiles — and
writes the result as ``BENCH_scoring.json``.  Every timed block is
parity-checked: a backend that returns different scores fails the run
instead of reporting a bogus speedup.

Target (asserted standalone at full scale): the fused kernel is at
least **5x** faster on coalesced batch scoring at the paper's model
width with k=10 candidates of 20-120 vertices.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_scoring.py``,
add ``--smoke`` for the tiny preset) or under pytest, where the smoke
preset keeps the tier-1 suite fast while still asserting that the fused
backend is not slower than the reference and that the report parses as
valid ``BENCH_scoring.json``.
"""

import argparse
import json

import pytest

from repro.core.scoring_bench import (
    apply_overrides,
    full_config,
    run_scoring_benchmark,
    smoke_config,
    validate_report,
    write_report,
)

#: Full-scale acceptance floor for coalesced batch scoring.
BATCH_TARGET = 5.0


# ----------------------------------------------------------------------
# pytest entry points (smoke scale — see conftest.scoring_smoke_report)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="scoring")
def test_smoke_fused_backend_not_slower(scoring_smoke_report):
    """Even on a tiny model the fused kernel must not lose to the module
    forward on either benchmarked workload."""
    assert scoring_smoke_report["per_query"]["speedup"] >= 1.0, (
        f"fused per-query scoring slower than the module reference "
        f"({scoring_smoke_report['per_query']['speedup']:.2f}x)"
    )
    assert scoring_smoke_report["coalesced"]["fused_vs_module_speedup"] >= 1.0, (
        f"fused coalesced scoring slower than the module reference "
        f"({scoring_smoke_report['coalesced']['fused_vs_module_speedup']:.2f}x)"
    )


@pytest.mark.benchmark(group="scoring")
def test_smoke_report_is_valid_bench_scoring_json(scoring_smoke_report):
    """The emitted document must round-trip as valid BENCH_scoring.json."""
    validate_report(scoring_smoke_report)  # raises DataError on violation
    assert scoring_smoke_report["preset"] == "smoke"


@pytest.mark.benchmark(group="scoring")
def test_smoke_backends_agree_on_scores(scoring_smoke_report):
    parity = scoring_smoke_report["parity"]
    assert parity["per_query_max_abs_diff"] <= 1e-6
    assert parity["coalesced_max_abs_diff"] <= 1e-6
    assert parity["float64_max_abs_diff"] <= 1e-9


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the module vs fused scoring backends")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny preset (small model, sub-second)")
    parser.add_argument("--out", default="BENCH_scoring.json",
                        help="report path (default: BENCH_scoring.json)")
    parser.add_argument("--k", type=int, default=None,
                        help="candidate paths per query")
    parser.add_argument("--queries", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args(argv)

    config = apply_overrides(smoke_config() if args.smoke else full_config(),
                             k=args.k, queries=args.queries, seed=args.seed)
    report = run_scoring_benchmark(config)
    write_report(report, args.out)
    print(json.dumps(report, indent=2))

    if not args.smoke:
        batch = report["headline"]["batch_speedup"]
        assert batch >= BATCH_TARGET, (
            f"batch scoring speedup {batch:.1f}x below the "
            f"{BATCH_TARGET}x target")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
