"""Benchmark E12 — the sharded serving plane on multi-region workloads.

Drives the PR-5 shard plane through ``repro.serving.sharding_bench``: a
multi-region Zipf workload (per-shard hotspot pools, tunable cross-shard
fraction) replayed closed-loop through the unsharded
:class:`ServingEngine` and through a sharded service (per-region
registries, caches carved from a global budget, scoring flushes
coalesced per *(shard, snapshot)* group), plus the opt-in shard-local
routing mode and a single-region floor check.  The result is written as
``BENCH_sharding.json``.

Target (asserted standalone at full scale): same-shard responses
element-wise identical to the unsharded service's, per-shard cache
hit-rates reported for every shard, and no throughput regression on
either the multi-region or the single-region workload (ratio >= 0.9,
best-of-repeats).

Runs standalone (``PYTHONPATH=src python benchmarks/bench_sharding.py``,
add ``--smoke`` for the tiny preset) or under pytest, where the smoke
preset keeps the tier-1 suite fast while still asserting parity, shard
isolation, and a valid report.
"""

import argparse
import json

import pytest

from repro.serving.sharding_bench import (
    apply_overrides,
    full_config,
    run_sharding_benchmark,
    smoke_config,
    validate_report,
    write_report,
)

#: Full-scale acceptance floors for the shard plane.
THROUGHPUT_RATIO_TARGET = 0.9
#: Smoke-scale floor: generous, because CI timing jitter on a
#: sub-second run is real — the full-scale standalone run enforces the
#: honest 0.9.
SMOKE_RATIO_FLOOR = 0.5


# ----------------------------------------------------------------------
# pytest entry points (smoke scale — see conftest.sharding_smoke_report)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="sharding")
def test_smoke_same_shard_parity_is_exact(sharding_smoke_report):
    """Same-shard rankings must be element-wise identical to the
    unsharded engine's (the exact-mode shard-plane guarantee)."""
    parity = sharding_smoke_report["parity"]
    assert parity["same_shard_requests"] > 0
    assert parity["mismatched_same_shard"] == 0
    assert parity["max_abs_score_diff_same_shard"] <= 1e-6


@pytest.mark.benchmark(group="sharding")
def test_smoke_every_shard_served_and_isolated(sharding_smoke_report):
    """Every shard must own traffic and report its own cache hit-rates
    (the per-shard isolation the global-budget split exists for)."""
    per_shard = sharding_smoke_report["multi_region"]["per_shard"]
    assert len(per_shard) >= 2
    for label, entry in per_shard.items():
        assert entry["requests"] > 0, f"{label} owned no requests"
        assert 0.0 <= entry["candidate_cache_hit_rate"] <= 1.0
    # The warmed closed-loop run must actually hit the per-shard caches.
    assert any(entry["candidate_cache_hit_rate"] > 0.5
               for entry in per_shard.values())


@pytest.mark.benchmark(group="sharding")
def test_smoke_no_gross_throughput_regression(sharding_smoke_report):
    headline = sharding_smoke_report["headline"]
    assert headline["multi_region_throughput_ratio"] >= SMOKE_RATIO_FLOOR, (
        f"sharded engine fell to "
        f"{headline['multi_region_throughput_ratio']:.2f}x of the "
        f"unsharded engine on the multi-region workload")
    assert headline["single_region_throughput_ratio"] >= SMOKE_RATIO_FLOOR, (
        f"sharding taxed the single-region workload down to "
        f"{headline['single_region_throughput_ratio']:.2f}x")


@pytest.mark.benchmark(group="sharding")
def test_smoke_cross_shard_traffic_exists(sharding_smoke_report):
    """The workload generator must produce the configured region mix."""
    multi = sharding_smoke_report["multi_region"]
    assert 0 < multi["cross_shard_requests"] < multi["requests"]


@pytest.mark.benchmark(group="sharding")
def test_smoke_report_is_valid_bench_sharding_json(sharding_smoke_report):
    """The emitted document must round-trip as valid BENCH_sharding.json."""
    validate_report(sharding_smoke_report)  # raises DataError on violation
    assert sharding_smoke_report["preset"] == "smoke"


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the sharded serving plane vs the "
                    "unsharded engine")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny preset (two regions, sub-second)")
    parser.add_argument("--out", default="BENCH_sharding.json",
                        help="report path (default: BENCH_sharding.json)")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--cross-fraction", type=float, default=None)
    parser.add_argument("--concurrency", type=int, default=None)
    parser.add_argument("--k", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args(argv)

    config = apply_overrides(
        smoke_config() if args.smoke else full_config(),
        requests=args.requests, shards=args.shards,
        cross_fraction=args.cross_fraction, concurrency=args.concurrency,
        k=args.k, seed=args.seed)
    report = run_sharding_benchmark(config)
    write_report(report, args.out)
    print(json.dumps(report, indent=2))

    if not args.smoke:
        headline = report["headline"]
        assert headline["same_shard_mismatches"] == 0
        for key in ("multi_region_throughput_ratio",
                    "single_region_throughput_ratio"):
            assert headline[key] >= THROUGHPUT_RATIO_TARGET, (
                f"{key} {headline[key]:.2f} below the "
                f"{THROUGHPUT_RATIO_TARGET} floor")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
