"""Benchmark E13 — the telemetry plane's cost and fidelity.

Drives the serving stack through ``repro.obs.observability_bench``: the
same closed-loop engine workload run with telemetry dormant
(``trace_sample=0``) and with full tracing plus the JSONL timeline
exporter (``trace_sample=1.0``).  The result is written as
``BENCH_observability.json``.

Target (asserted standalone at full scale): full tracing costs less
than **5%** of baseline throughput, with element-wise response parity
between the arms, a complete per-stage latency breakdown, retained
slow-request exemplars, and a monotone exported counter timeline.

Runs standalone (``PYTHONPATH=src python
benchmarks/bench_observability.py``, add ``--smoke`` for the tiny
preset) or under pytest, where the smoke preset keeps tier-1 fast while
still asserting parity, stage completeness, and a loosely bounded
overhead (sub-second workloads jitter past 5%).
"""

import argparse
import json

import pytest

from repro.obs.observability_bench import (
    REQUIRED_STAGES,
    apply_overrides,
    full_config,
    run_observability_benchmark,
    smoke_config,
    validate_report,
    write_report,
)

#: Full-scale acceptance ceiling: tracing every request plus the
#: timeline exporter must cost under 5% of baseline throughput.
OVERHEAD_TARGET = 0.05


# ----------------------------------------------------------------------
# pytest entry points (smoke scale — see conftest.observability_smoke_report)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="observability")
def test_smoke_tracing_preserves_responses(observability_smoke_report):
    """Tracing must be read-only: element-wise parity with the
    untraced arm on the same workload."""
    parity = observability_smoke_report["parity"]
    assert parity["mismatched_responses"] == 0
    assert parity["max_abs_score_diff"] <= 1e-6


@pytest.mark.benchmark(group="observability")
def test_smoke_overhead_bounded(observability_smoke_report):
    """The smoke preset's loose overhead bound still catches a
    telemetry plane that, say, serialises every request."""
    overhead = observability_smoke_report["overhead"]
    assert overhead["fraction"] <= overhead["limit"], (
        f"tracing overhead {overhead['fraction']:.3f} exceeds the smoke "
        f"limit {overhead['limit']:.3f}"
    )


@pytest.mark.benchmark(group="observability")
def test_smoke_stage_breakdown_complete(observability_smoke_report):
    """Every engine pipeline stage must appear with observations and
    a coherent p50 <= p95 summary."""
    stages = observability_smoke_report["stages"]
    for name in REQUIRED_STAGES:
        assert name in stages, f"stage {name!r} missing from breakdown"
        summary = stages[name]
        assert summary["count"] >= 1
        assert summary["p50"] <= summary["p95"] <= summary["max"] + 1e-9


@pytest.mark.benchmark(group="observability")
def test_smoke_slow_request_exemplars_retained(observability_smoke_report):
    """The slowest requests must survive with their full span logs,
    slowest first."""
    exemplars = observability_smoke_report["slow_requests"]
    assert exemplars, "no slow-request exemplars retained"
    latencies = [record["latency_ms"] for record in exemplars]
    assert latencies == sorted(latencies, reverse=True)
    for record in exemplars:
        span_names = {span["name"] for span in record["spans"]}
        assert {"admit", "score", "assemble"} <= span_names


@pytest.mark.benchmark(group="observability")
def test_smoke_timeline_monotone(observability_smoke_report):
    """The exported JSONL timeline must show the request counter only
    ever increasing across snapshots."""
    timeline = observability_smoke_report["timeline"]
    assert timeline["snapshots"] >= 1
    series = timeline["requests_series"]
    assert all(b >= a for a, b in zip(series, series[1:]))
    assert series[-1] >= 1


@pytest.mark.benchmark(group="observability")
def test_smoke_report_is_valid_bench_observability_json(
        observability_smoke_report):
    """The emitted document must round-trip as valid
    BENCH_observability.json."""
    validate_report(observability_smoke_report)  # raises DataError
    assert observability_smoke_report["preset"] == "smoke"


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the telemetry plane: full tracing vs "
                    "dormant, with parity and timeline checks")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny preset (small region, sub-second)")
    parser.add_argument("--out", default="BENCH_observability.json",
                        help="report path (default: "
                             "BENCH_observability.json)")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--hotspots", type=int, default=None)
    parser.add_argument("--concurrency", type=int, default=None)
    parser.add_argument("--k", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args(argv)

    config = apply_overrides(
        smoke_config() if args.smoke else full_config(),
        requests=args.requests, hotspots=args.hotspots,
        concurrency=args.concurrency, k=args.k, seed=args.seed)
    report = run_observability_benchmark(config)
    write_report(report, args.out)
    print(json.dumps(report, indent=2))

    if not args.smoke:
        headline = report["headline"]
        assert headline["overhead_fraction"] < OVERHEAD_TARGET, (
            f"tracing overhead {headline['overhead_fraction']:.3f} "
            f"at or above the {OVERHEAD_TARGET} target")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
