"""Benchmark E1 — regenerate **Table 1**: training-data strategies
(TkDI vs D-TkDI) × embedding size M under **PR-A1** (frozen embeddings).

Prints the table in the poster's layout and asserts its qualitative
shape: the diversified strategy beats plain top-k on every metric.
"""

import pytest

from repro.core.variants import Variant
from repro.experiments import render_strategy_table, strategy_table


@pytest.mark.benchmark(group="table1")
def test_table1_pr_a1(benchmark, pipeline, bench_embedding_sizes, bench_config):
    rows = benchmark.pedantic(
        strategy_table,
        args=(pipeline, Variant.PR_A1),
        kwargs={"embedding_sizes": bench_embedding_sizes},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_strategy_table("Table 1: Training Data Strategies, PR-A1", rows))

    for row in rows:
        assert 0.0 <= row.mae <= 1.0
        assert -1.0 <= row.tau <= 1.0
    if bench_config.name == "smoke":
        return  # shape claims are meaningless at integration scale

    by_cell = {(r.strategy, r.embedding_dim): r for r in rows}
    for dim in bench_embedding_sizes:
        tkdi = by_cell[("TkDI", dim)]
        dtkdi = by_cell[("D-TkDI", dim)]
        # The paper's headline shape: training on diversified candidates
        # yields lower error; rank correlation must not regress beyond
        # single-seed noise at the bench's reduced scale.
        assert dtkdi.mae < tkdi.mae, (
            f"D-TkDI should beat TkDI on MAE at M={dim}: "
            f"{dtkdi.mae:.4f} vs {tkdi.mae:.4f}"
        )
        assert dtkdi.tau > tkdi.tau - 0.06, (
            f"D-TkDI tau collapsed against TkDI at M={dim}: "
            f"{dtkdi.tau:.4f} vs {tkdi.tau:.4f}"
        )
