"""Benchmark E2 — regenerate **Table 2**: training-data strategies
(TkDI vs D-TkDI) × embedding size M under **PR-A2** (fine-tuned
embeddings), and check the Table-2-vs-Table-1 claim: updating the
embedding matrix B helps.
"""

import pytest

from repro.core.variants import Variant
from repro.experiments import render_strategy_table, strategy_table


@pytest.mark.benchmark(group="table2")
def test_table2_pr_a2(benchmark, pipeline, bench_embedding_sizes, bench_config):
    rows = benchmark.pedantic(
        strategy_table,
        args=(pipeline, Variant.PR_A2),
        kwargs={"embedding_sizes": bench_embedding_sizes},
        rounds=1,
        iterations=1,
    )
    print()
    print(render_strategy_table("Table 2: Training Data Strategies, PR-A2", rows))

    if bench_config.name == "smoke":
        return  # shape claims are meaningless at integration scale

    by_cell = {(r.strategy, r.embedding_dim): r for r in rows}
    for dim in bench_embedding_sizes:
        tkdi = by_cell[("TkDI", dim)]
        dtkdi = by_cell[("D-TkDI", dim)]
        assert dtkdi.mae < tkdi.mae, (
            f"D-TkDI should beat TkDI on MAE at M={dim}: "
            f"{dtkdi.mae:.4f} vs {tkdi.mae:.4f}"
        )
        assert dtkdi.tau > tkdi.tau - 0.06, (
            f"D-TkDI tau collapsed against TkDI at M={dim}: "
            f"{dtkdi.tau:.4f} vs {tkdi.tau:.4f}"
        )

    # Cross-table claim (PR-A2 >= PR-A1 within noise) on the best config.
    pr_a1 = strategy_table(pipeline, Variant.PR_A1,
                           embedding_sizes=bench_embedding_sizes[-1:])
    best_a1 = max(r.tau for r in pr_a1 if r.strategy == "D-TkDI")
    best_a2 = max(r.tau for r in rows if r.strategy == "D-TkDI")
    assert best_a2 >= best_a1 - 0.06, (
        f"fine-tuning B (PR-A2) should not lose to frozen B (PR-A1): "
        f"{best_a2:.4f} vs {best_a1:.4f}"
    )
