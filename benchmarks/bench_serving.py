"""Benchmark E11 — the online serving layer under concurrent hotspot load.

Drives the serving stack through ``repro.serving.serving_bench``: a
Zipf-skewed OD-hotspot mix replayed through the synchronous per-query
path and through the concurrent :class:`ServingEngine` (closed-loop
clients, deadline-batched cross-request coalescing), plus cold-vs-cached
caching, A/B traffic-split accounting, and a Poisson open-loop replay.
The result is written as ``BENCH_serving.json``.

Target (asserted standalone at full scale): concurrent throughput at
least **3x** the sequential per-query path at concurrency 32, with mean
scoring-batch occupancy above 1 (coalescing demonstrably engaged) and
engine responses element-wise identical to the synchronous facade's.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_serving.py``,
add ``--smoke`` for the tiny preset) or under pytest, where the smoke
preset keeps the tier-1 suite fast while still asserting parity, cache
effectiveness, and engaged coalescing.
"""

import argparse
import json

import pytest

from repro.serving.serving_bench import (
    apply_overrides,
    full_config,
    run_serving_benchmark,
    smoke_config,
    validate_report,
    write_report,
)

#: Full-scale acceptance floors for the concurrent engine.
SPEEDUP_TARGET = 3.0
OCCUPANCY_TARGET = 1.0


# ----------------------------------------------------------------------
# pytest entry points (smoke scale — see conftest.serving_smoke_report)
# ----------------------------------------------------------------------
@pytest.mark.benchmark(group="serving")
def test_smoke_coalescing_engages(serving_smoke_report):
    """Concurrent clients must actually share scoring batches, and the
    coalesced path must not lose to the sequential one."""
    headline = serving_smoke_report["headline"]
    assert headline["mean_batch_occupancy"] > OCCUPANCY_TARGET, (
        f"scoring batches averaged {headline['mean_batch_occupancy']:.2f} "
        f"requests: cross-request coalescing never engaged"
    )
    assert headline["concurrent_speedup"] >= 1.0, (
        f"concurrent serving slower than the sequential per-query path "
        f"({headline['concurrent_speedup']:.2f}x)"
    )


@pytest.mark.benchmark(group="serving")
def test_smoke_engine_matches_sync_responses(serving_smoke_report):
    """Element-wise parity: same outcomes, same rankings, same scores
    (to float32 roundoff) as the synchronous facade."""
    parity = serving_smoke_report["parity"]
    assert parity["mismatched_responses"] == 0
    assert parity["max_abs_score_diff"] <= 1e-6


@pytest.mark.benchmark(group="serving")
def test_smoke_cached_queries_much_faster(serving_smoke_report):
    result = serving_smoke_report["cold_vs_cached"]
    assert result["speedup"] >= 10.0, (
        f"cached repeats should be >= 10x faster than cold queries: "
        f"cold {result['cold_mean_ms']:.3f} ms vs "
        f"cached {result['cached_mean_ms']:.3f} ms"
    )


@pytest.mark.benchmark(group="serving")
def test_smoke_ab_split_roughly_proportional(serving_smoke_report):
    """Both variants must see traffic, in the ballpark of the weights."""
    ab = serving_smoke_report["ab_split"]
    weight_b = ab["weights"]["bench-b"]
    assert all(count > 0 for count in ab["requests_by_split"].values())
    assert abs(ab["observed_fraction_b"] - weight_b) < 0.15


@pytest.mark.benchmark(group="serving")
def test_smoke_open_loop_serves_everything(serving_smoke_report):
    open_loop = serving_smoke_report["open_loop"]
    assert open_loop["errors"] == 0
    assert open_loop["achieved_qps"] > 0.0


@pytest.mark.benchmark(group="serving")
def test_smoke_report_is_valid_bench_serving_json(serving_smoke_report):
    """The emitted document must round-trip as valid BENCH_serving.json."""
    validate_report(serving_smoke_report)  # raises DataError on violation
    assert serving_smoke_report["preset"] == "smoke"


# ----------------------------------------------------------------------
# standalone entry point
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="benchmark the concurrent serving engine vs the "
                    "sequential per-query path")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny preset (small region, sub-second)")
    parser.add_argument("--out", default="BENCH_serving.json",
                        help="report path (default: BENCH_serving.json)")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--hotspots", type=int, default=None)
    parser.add_argument("--concurrency", type=int, default=None)
    parser.add_argument("--flush-deadline-ms", type=float, default=None)
    parser.add_argument("--k", type=int, default=None)
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args(argv)

    config = apply_overrides(
        smoke_config() if args.smoke else full_config(),
        requests=args.requests, hotspots=args.hotspots,
        concurrency=args.concurrency,
        flush_deadline_ms=args.flush_deadline_ms,
        k=args.k, seed=args.seed)
    report = run_serving_benchmark(config)
    write_report(report, args.out)
    print(json.dumps(report, indent=2))

    if not args.smoke:
        headline = report["headline"]
        assert headline["concurrent_speedup"] >= SPEEDUP_TARGET, (
            f"concurrent speedup {headline['concurrent_speedup']:.2f}x "
            f"below the {SPEEDUP_TARGET}x target")
        assert headline["mean_batch_occupancy"] > OCCUPANCY_TARGET, (
            f"batch occupancy {headline['mean_batch_occupancy']:.2f} "
            f"below the {OCCUPANCY_TARGET} floor")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
