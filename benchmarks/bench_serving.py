"""Benchmark E11 — the online serving layer under hotspot load.

Replays a Zipf-skewed OD-hotspot query mix (the commuter regime the
paper's introduction describes) against :class:`RankingService` and
reports latency percentiles, throughput, and cache hit rates as JSON.
Two properties are asserted, mirroring the subsystem's contract:

* repeat (cached) queries answer with a mean latency at least 10x lower
  than cold queries — candidate generation dominates the cold path;
* coalesced batch scoring produces scores identical (<= 1e-9) to
  sequential per-query scoring.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_serving.py``)
or under pytest (``python -m pytest benchmarks/bench_serving.py``).
"""

import json
import tempfile
import time

import numpy as np
import pytest

from repro.core import PathRankRanker, RankerConfig, build_pathrank
from repro.graph import north_jutland_like
from repro.ranking import Strategy, TrainingDataConfig
from repro.serving import (
    BatchingScorer,
    ModelRegistry,
    RankingService,
    RankRequest,
    ServingConfig,
    WorkloadConfig,
    generate_workload,
    run_workload,
)

CANDIDATES = TrainingDataConfig(strategy=Strategy.D_TKDI, k=4,
                                diversity_threshold=0.8, examine_limit=60)


def build_service(tmp_root: str) -> RankingService:
    """A service over a mid-size region with an untrained (random) model.

    Serving latency does not depend on the weights' quality, so the
    benchmark skips training and publishes a randomly initialised model.
    """
    network = north_jutland_like(num_towns=4, seed=11)
    ranker = PathRankRanker(network, RankerConfig(
        embedding_dim=32, hidden_size=32, fc_hidden=16,
        training_data=CANDIDATES))
    ranker.model = build_pathrank(
        "PR-A2", num_vertices=network.num_vertices, embedding_dim=32,
        hidden_size=32, fc_hidden=16, rng=0)
    registry = ModelRegistry(tmp_root, network)
    registry.publish(ranker, version="bench", activate=True)
    return RankingService(network, registry,
                          ServingConfig(candidates=CANDIDATES))


def measure_cold_vs_cached(service: RankingService,
                           requests: list[RankRequest]) -> dict:
    """Mean per-request latency for first-touch vs repeat queries."""
    unique = list({(r.source, r.target): r for r in requests}.values())

    def replay(label: str) -> float:
        started = time.perf_counter()
        for request in unique:
            response = service.rank(request)
            assert response.ok, f"{label} replay failed: {response.error}"
        return (time.perf_counter() - started) * 1000.0 / len(unique)

    cold_ms = replay("cold")
    cached_ms = replay("cached")
    return {
        "unique_queries": len(unique),
        "cold_mean_ms": cold_ms,
        "cached_mean_ms": cached_ms,
        "speedup": cold_ms / cached_ms if cached_ms > 0 else float("inf"),
    }


def measure_batched_equivalence(service: RankingService,
                                requests: list[RankRequest]) -> dict:
    """Max |batched - sequential| score deviation over the workload."""
    model = service.registry.require_snapshot().model
    unique = list({(r.source, r.target): r for r in requests}.values())
    candidate_lists = []
    for request in unique:
        paths, _ = service._candidates(
            request, service._candidate_config(request))
        if paths:
            candidate_lists.append(paths)

    sequential = [model.score_paths(paths) for paths in candidate_lists]
    # No score cache here: the point is the forward pass itself.
    scorer = BatchingScorer(max_batch_size=64)
    tickets = [scorer.submit(paths) for paths in candidate_lists]
    scorer.flush(model, "bench")
    deviation = max(
        float(np.max(np.abs(ticket.scores - expected)))
        for ticket, expected in zip(tickets, sequential)
    )
    return {
        "queries": len(candidate_lists),
        "paths": sum(len(p) for p in candidate_lists),
        "forward_batches": scorer.batches_run,
        "max_abs_deviation": deviation,
    }


def run_benchmark() -> dict:
    with tempfile.TemporaryDirectory() as tmp_root:
        service = build_service(tmp_root)
        workload = generate_workload(
            service.network,
            WorkloadConfig(num_requests=150, num_hotspots=25,
                           zipf_exponent=1.1),
            rng=0,
        )
        cold_cached = measure_cold_vs_cached(service, workload)
        equivalence = measure_batched_equivalence(service, workload)
        zipf = run_workload(service, workload, batch_size=8)
        zipf.pop("stats")  # cumulative service stats, reported separately
        return {
            "cold_vs_cached": cold_cached,
            "batched_vs_sequential": equivalence,
            "zipf_replay": zipf,
            "service_stats": service.stats(),
        }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def report() -> dict:
    return run_benchmark()


@pytest.mark.benchmark(group="serving")
def test_cached_queries_much_faster(report):
    result = report["cold_vs_cached"]
    assert result["speedup"] >= 10.0, (
        f"cached repeats should be >= 10x faster than cold queries: "
        f"cold {result['cold_mean_ms']:.3f} ms vs "
        f"cached {result['cached_mean_ms']:.3f} ms"
    )


@pytest.mark.benchmark(group="serving")
def test_batched_scores_match_sequential(report):
    assert report["batched_vs_sequential"]["max_abs_deviation"] <= 1e-9
    # Coalescing must actually coalesce: far fewer forward passes than queries.
    assert report["batched_vs_sequential"]["forward_batches"] < \
        report["batched_vs_sequential"]["queries"]


@pytest.mark.benchmark(group="serving")
def test_zipf_replay_hits_the_caches(report):
    replay = report["zipf_replay"]
    assert replay["served_by"]["error"] == 0
    assert replay["candidate_cache_hit_rate"] > 0.5
    assert replay["throughput_qps"] > 0.0


def main() -> None:
    print(json.dumps(run_benchmark(), indent=2))


if __name__ == "__main__":
    main()
