"""Setup shim.

The offline environment ships setuptools 65 without the ``wheel``
package, so PEP 517 editable installs fail with ``invalid command
'bdist_wheel'``.  This shim lets ``pip install -e . --no-use-pep517``
take the legacy ``setup.py develop`` path, which needs no wheel.
"""

from setuptools import setup

setup()
