"""Tests for the HMM map matcher."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.graph import Path, weighted_jaccard
from repro.trajectories import (
    GPSPoint,
    MapMatcher,
    Trajectory,
    generate_fleet,
    render_path_to_gps,
)


class TestMatcherConstruction:
    def test_validation(self, tiny_network):
        with pytest.raises(ValueError):
            MapMatcher(tiny_network, sigma=0.0)
        with pytest.raises(ValueError):
            MapMatcher(tiny_network, beta=-1.0)
        with pytest.raises(ValueError):
            MapMatcher(tiny_network, candidates_per_point=0)

    def test_empty_network_rejected(self):
        from repro.graph import RoadNetwork

        net = RoadNetwork()
        net.add_vertex(0, 0, 0)
        with pytest.raises(ValueError):
            MapMatcher(net)


class TestExactMatch:
    def test_noise_free_recovery(self, tiny_network):
        truth = Path(tiny_network, [0, 1, 4, 5, 2])
        traj = render_path_to_gps(truth, 1, 1, sample_interval=3.0, noise_std=0.0)
        result = MapMatcher(tiny_network, sigma=10.0).match(traj)
        assert weighted_jaccard(result.path, truth) == pytest.approx(1.0)

    def test_matched_endpoints(self, tiny_network):
        truth = Path(tiny_network, [3, 4, 1, 2])
        traj = render_path_to_gps(truth, 1, 1, sample_interval=3.0, noise_std=0.0)
        result = MapMatcher(tiny_network).match(traj)
        assert result.path.source == 3
        assert result.path.target == 2

    def test_log_likelihood_finite(self, tiny_network):
        truth = Path(tiny_network, [0, 1, 2])
        traj = render_path_to_gps(truth, 1, 1, noise_std=0.0)
        result = MapMatcher(tiny_network).match(traj)
        assert np.isfinite(result.log_likelihood)

    def test_noisy_recovery_high_overlap(self, region_network):
        population, trips = generate_fleet(region_network, num_drivers=5,
                                           trips_per_driver=3, rng=4)
        from repro.trajectories import TrajectoryGenerator

        generator = TrajectoryGenerator(region_network, population)
        gps = generator.render_gps(trips[:6], noise_std=8.0, rng=1)
        matcher = MapMatcher(region_network)
        overlaps = [
            weighted_jaccard(matcher.match(t).path, trip.path)
            for trip, t in zip(trips[:6], gps)
        ]
        assert np.mean(overlaps) > 0.75
        assert min(overlaps) > 0.4

    def test_result_is_loop_free(self, region_network):
        population, trips = generate_fleet(region_network, num_drivers=3,
                                           trips_per_driver=2, rng=5)
        from repro.trajectories import TrajectoryGenerator

        generator = TrajectoryGenerator(region_network, population)
        gps = generator.render_gps(trips, noise_std=10.0, rng=2)
        matcher = MapMatcher(region_network)
        for traj in gps:
            assert matcher.match(traj).path.is_simple()


class TestDegenerateInputs:
    def test_two_identical_fixes_rejected(self, tiny_network):
        v = tiny_network.vertex(0)
        traj = Trajectory(1, 1, [GPSPoint(v.x, v.y, 0.0), GPSPoint(v.x, v.y, 1.0)])
        with pytest.raises(DataError):
            MapMatcher(tiny_network).match(traj)

    def test_matched_edges_exposed(self, tiny_network):
        truth = Path(tiny_network, [0, 1, 2])
        traj = render_path_to_gps(truth, 1, 1, noise_std=0.0)
        result = MapMatcher(tiny_network).match(traj)
        assert len(result.matched_edges) == len(traj)
        for key in result.matched_edges:
            assert tiny_network.has_edge(*key)


class TestLoopRemoval:
    def test_no_loops_untouched(self):
        assert MapMatcher._remove_loops([1, 2, 3]) == [1, 2, 3]

    def test_simple_loop_cut(self):
        assert MapMatcher._remove_loops([1, 2, 3, 2, 4]) == [1, 2, 4]

    def test_nested_loops_cut(self):
        # First the 2-cycle collapses, then the trailing revisit of 1 is
        # cheaper to drop as a tail: [1,2,3,4,2,5,1,6] -> [1,2,5,1,6] -> [1,2,5].
        assert MapMatcher._remove_loops([1, 2, 3, 4, 2, 5, 1, 6]) == [1, 2, 5]

    def test_repeated_adjacent(self):
        assert MapMatcher._remove_loops([1, 1, 2]) == [1, 2]

    def test_spurious_final_spur_drops_tail(self):
        # A long path with one wrong final vertex must lose only the tail.
        assert MapMatcher._remove_loops([0, 1, 4, 5, 2, 1]) == [0, 1, 4, 5, 2]

    def test_result_has_no_duplicates(self):
        cleaned = MapMatcher._remove_loops([3, 1, 2, 1, 3, 5, 3, 9])
        assert len(cleaned) == len(set(cleaned))
