"""Tests for driver profiles, population sampling, and fleet simulation."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.graph import RoadCategory, shortest_path, travel_time_cost, weighted_jaccard
from repro.trajectories import (
    ARCHETYPES,
    DriverProfile,
    FleetConfig,
    TrajectoryDataset,
    TrajectoryGenerator,
    Trip,
    generate_fleet,
    sample_population,
)


def flat_profile(driver_id=0, noise=0.0):
    return DriverProfile(
        driver_id=driver_id,
        category_multipliers={c: 1.0 for c in RoadCategory},
        familiarity_noise=noise,
    )


class TestDriverProfile:
    def test_flat_profile_equals_travel_time(self, tiny_network):
        profile = flat_profile()
        edge = tiny_network.edge(0, 1)
        assert profile.perceived_cost(edge) == pytest.approx(edge.travel_time)

    def test_multiplier_scales_cost(self, tiny_network):
        multipliers = {c: 1.0 for c in RoadCategory}
        multipliers[RoadCategory.LOCAL] = 2.0
        profile = DriverProfile(0, multipliers, familiarity_noise=0.0)
        edge = tiny_network.edge(0, 1)  # LOCAL
        assert profile.perceived_cost(edge) == pytest.approx(2.0 * edge.travel_time)

    def test_familiarity_stable_per_edge(self, tiny_network):
        profile = flat_profile(noise=0.3)
        edge = tiny_network.edge(0, 1)
        assert profile.perceived_cost(edge) == profile.perceived_cost(edge)

    def test_familiarity_differs_between_drivers(self, tiny_network):
        edge = tiny_network.edge(0, 1)
        a = flat_profile(driver_id=1, noise=0.3).perceived_cost(edge)
        b = flat_profile(driver_id=2, noise=0.3).perceived_cost(edge)
        assert a != b

    def test_missing_category_rejected(self):
        with pytest.raises(ValueError):
            DriverProfile(0, {RoadCategory.MOTORWAY: 1.0})

    def test_non_positive_multiplier_rejected(self):
        multipliers = {c: 1.0 for c in RoadCategory}
        multipliers[RoadCategory.LOCAL] = 0.0
        with pytest.raises(ValueError):
            DriverProfile(0, multipliers)

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            flat_profile(noise=-0.1)

    def test_motorway_avoider_prefers_surface_roads(self, tiny_network):
        avoider = DriverProfile(0, ARCHETYPES["motorway_avoider"][0],
                                familiarity_noise=0.0)
        chosen = shortest_path(tiny_network, 0, 2, avoider.cost_function())
        assert (0, 2) not in chosen.edge_set  # skips the motorway

    def test_motorway_lover_takes_motorway(self, tiny_network):
        lover = DriverProfile(0, ARCHETYPES["motorway_lover"][0],
                              familiarity_noise=0.0)
        chosen = shortest_path(tiny_network, 0, 2, lover.cost_function())
        assert (0, 2) in chosen.edge_set


class TestPopulation:
    def test_size_and_ids(self):
        population = sample_population(10, rng=0)
        assert len(population) == 10
        assert [p.driver_id for p in population] == list(range(10))

    def test_deterministic(self):
        a = sample_population(5, rng=3)
        b = sample_population(5, rng=3)
        assert all(
            x.category_multipliers == y.category_multipliers for x, y in zip(a, b)
        )

    def test_archetype_mixture(self):
        population = sample_population(200, rng=0)
        names = {p.archetype for p in population}
        assert names == set(ARCHETYPES)

    def test_jitter_makes_drivers_distinct(self):
        population = sample_population(20, rng=1)
        multipliers = {
            tuple(sorted((c.value, round(v, 9))
                         for c, v in p.category_multipliers.items()))
            for p in population
        }
        assert len(multipliers) == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_population(0)
        with pytest.raises(ValueError):
            sample_population(5, multiplier_jitter=-1.0)
        with pytest.raises(ValueError):
            sample_population(5, archetypes={})


class TestFleet:
    def test_generate_counts(self, region_network):
        population, trips = generate_fleet(region_network, num_drivers=4,
                                           trips_per_driver=3, rng=0)
        assert len(population) == 4
        assert len(trips) == 12
        assert [t.trip_id for t in trips] == list(range(12))

    def test_trips_respect_min_distance(self, region_network):
        config = FleetConfig(num_drivers=3, trips_per_driver=3,
                             min_trip_distance=2000.0)
        _, trips = generate_fleet(region_network, rng=1, config=config)
        for trip in trips:
            crow = region_network.euclidean(trip.source, trip.target)
            assert crow >= 2000.0

    def test_deterministic(self, region_network):
        _, a = generate_fleet(region_network, num_drivers=3, trips_per_driver=2, rng=9)
        _, b = generate_fleet(region_network, num_drivers=3, trips_per_driver=2, rng=9)
        assert [t.path.vertices for t in a] == [t.path.vertices for t in b]

    def test_some_trips_deviate_from_fastest(self, region_network):
        _, trips = generate_fleet(region_network, num_drivers=10,
                                  trips_per_driver=5, rng=0)
        deviating = sum(
            1 for trip in trips
            if weighted_jaccard(
                trip.path,
                shortest_path(region_network, trip.source, trip.target,
                              travel_time_cost),
            ) < 0.999
        )
        # The learnable signal the paper relies on: drivers are not all
        # taking the fastest path.
        assert deviating >= len(trips) * 0.2

    def test_impossible_min_distance(self, tiny_network):
        population = [flat_profile()]
        config = FleetConfig(min_trip_distance=1e9, max_od_attempts=5)
        generator = TrajectoryGenerator(tiny_network, population, config)
        with pytest.raises(DataError):
            generator.generate_trip(0, population[0], rng=0)

    def test_empty_population_rejected(self, tiny_network):
        with pytest.raises(ValueError):
            TrajectoryGenerator(tiny_network, [])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(num_drivers=0)
        with pytest.raises(ValueError):
            FleetConfig(via_detour_probability=1.5)
        with pytest.raises(ValueError):
            FleetConfig(min_trip_distance=-1.0)

    def test_render_gps(self, region_network):
        population, trips = generate_fleet(region_network, num_drivers=2,
                                           trips_per_driver=2, rng=0)
        generator = TrajectoryGenerator(region_network, population)
        gps = generator.render_gps(trips, rng=0)
        assert len(gps) == len(trips)
        assert all(len(t) >= 2 for t in gps)


class TestDataset:
    @pytest.fixture(scope="class")
    def dataset(self, region_network):
        _, trips = generate_fleet(region_network, num_drivers=6,
                                  trips_per_driver=5, rng=2)
        return TrajectoryDataset(region_network, trips)

    def test_len_iter(self, dataset):
        assert len(dataset) == 30
        assert len(list(dataset)) == 30

    def test_num_drivers(self, dataset):
        assert dataset.num_drivers == 6

    def test_trips_of_driver(self, dataset):
        assert len(dataset.trips_of_driver(0)) == 5

    def test_mean_path_length_positive(self, dataset):
        assert dataset.mean_path_length() > 0

    def test_split_fractions(self, dataset):
        split = dataset.split(train_fraction=0.6, validation_fraction=0.2, rng=0)
        assert sum(split.sizes) == len(dataset)
        assert split.sizes[0] == 18

    def test_split_disjoint(self, dataset):
        split = dataset.split(rng=0)
        ids = [t.trip_id for part in (split.train, split.validation, split.test)
               for t in part]
        assert len(ids) == len(set(ids))

    def test_split_deterministic(self, dataset):
        a = dataset.split(rng=5)
        b = dataset.split(rng=5)
        assert [t.trip_id for t in a.train] == [t.trip_id for t in b.train]

    def test_split_validation(self, dataset):
        with pytest.raises(ValueError):
            dataset.split(train_fraction=0.0)
        with pytest.raises(ValueError):
            dataset.split(train_fraction=0.9, validation_fraction=0.2)

    def test_empty_dataset_rejected(self, region_network):
        with pytest.raises(DataError):
            TrajectoryDataset(region_network, [])

    def test_foreign_network_rejected(self, region_network, tiny_network):
        from repro.graph import Path

        trip = Trip(0, 0, Path(tiny_network, [0, 1]))
        with pytest.raises(DataError):
            TrajectoryDataset(region_network, [trip])

    def test_save_load_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "trips.json"
        dataset.save(path)
        restored = TrajectoryDataset.load(path)
        assert len(restored) == len(dataset)
        assert [t.path.vertices for t in restored] == [
            t.path.vertices for t in dataset
        ]

    def test_load_missing(self, tmp_path):
        from repro.errors import SerializationError

        with pytest.raises(SerializationError):
            TrajectoryDataset.load(tmp_path / "nope.json")
