"""Tests for GPS containers and path-to-GPS rendering."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.graph import Path
from repro.trajectories import GPSPoint, Trajectory, render_path_to_gps


class TestGPSPoint:
    def test_distance(self):
        assert GPSPoint(0, 0, 0).distance_to(GPSPoint(3, 4, 1)) == 5.0

    def test_frozen(self):
        with pytest.raises(AttributeError):
            GPSPoint(0, 0, 0).x = 1.0


class TestTrajectory:
    def make(self, times=(0.0, 10.0, 20.0)):
        points = [GPSPoint(float(i), 0.0, t) for i, t in enumerate(times)]
        return Trajectory(1, 2, points)

    def test_basic_properties(self):
        traj = self.make()
        assert len(traj) == 3
        assert traj.trip_id == 1
        assert traj.vehicle_id == 2
        assert traj.duration == 20.0

    def test_iteration_and_indexing(self):
        traj = self.make()
        assert list(traj)[0] == traj[0]

    def test_crow_distance(self):
        assert self.make().crow_distance == 2.0

    def test_travelled_distance(self):
        assert self.make().travelled_distance() == 2.0

    def test_too_few_points(self):
        with pytest.raises(DataError):
            Trajectory(1, 1, [GPSPoint(0, 0, 0)])

    def test_non_monotone_time(self):
        points = [GPSPoint(0, 0, 10.0), GPSPoint(1, 0, 5.0)]
        with pytest.raises(DataError):
            Trajectory(1, 1, points)

    def test_equal_timestamps_allowed(self):
        Trajectory(1, 1, [GPSPoint(0, 0, 5.0), GPSPoint(1, 0, 5.0)])

    def test_repr(self):
        assert "fixes=3" in repr(self.make())


class TestRenderPathToGps:
    def test_noise_free_endpoints(self, tiny_network):
        path = Path(tiny_network, [0, 1, 2])
        traj = render_path_to_gps(path, 1, 1, noise_std=0.0, rng=0)
        first, last = traj[0], traj[-1]
        v0 = tiny_network.vertex(0)
        v2 = tiny_network.vertex(2)
        assert (first.x, first.y) == (v0.x, v0.y)
        assert (last.x, last.y) == (v2.x, v2.y)

    def test_duration_matches_travel_time(self, tiny_network):
        path = Path(tiny_network, [0, 1, 2])
        traj = render_path_to_gps(path, 1, 1, noise_std=0.0, rng=0)
        assert traj.duration == pytest.approx(path.travel_time)

    def test_sampling_interval(self, tiny_network):
        path = Path(tiny_network, [0, 3, 4, 5, 2])
        traj = render_path_to_gps(path, 1, 1, sample_interval=5.0, noise_std=0.0)
        gaps = [b.t - a.t for a, b in zip(traj.points, traj.points[1:])]
        assert all(g <= 5.0 + 1e-9 for g in gaps)

    def test_points_near_path_with_noise(self, tiny_network):
        path = Path(tiny_network, [0, 1, 2])
        traj = render_path_to_gps(path, 1, 1, noise_std=5.0, rng=0)
        # Every fix should be within ~6 sigma of the path's bounding box.
        for p in traj:
            assert -40.0 <= p.x <= 240.0
            assert 60.0 <= p.y <= 140.0

    def test_start_time_offset(self, tiny_network):
        path = Path(tiny_network, [0, 1])
        traj = render_path_to_gps(path, 1, 1, start_time=100.0, noise_std=0.0)
        assert traj[0].t == 100.0

    def test_deterministic_given_rng(self, tiny_network):
        path = Path(tiny_network, [0, 1, 2])
        a = render_path_to_gps(path, 1, 1, rng=5)
        b = render_path_to_gps(path, 1, 1, rng=5)
        assert all(p.x == q.x and p.y == q.y for p, q in zip(a, b))

    def test_validation(self, tiny_network):
        path = Path(tiny_network, [0, 1])
        with pytest.raises(ValueError):
            render_path_to_gps(path, 1, 1, sample_interval=0.0)
        with pytest.raises(ValueError):
            render_path_to_gps(path, 1, 1, noise_std=-1.0)
