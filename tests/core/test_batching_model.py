"""Tests for path batching and the PathRank network."""

import numpy as np
import pytest

from repro.errors import ConfigError, DataError
from repro.core import (
    PathRank,
    PathRankMultiTask,
    Variant,
    build_pathrank,
    encode_path_buckets,
    encode_paths,
    length_buckets,
    minibatches,
)
from repro.graph import Path
from repro.nn import Tensor, check_gradients


@pytest.fixture
def paths(tiny_network):
    return [
        Path(tiny_network, [0, 1, 2]),
        Path(tiny_network, [0, 3, 4, 5, 2]),
        Path(tiny_network, [0, 2]),
    ]


class TestEncodePaths:
    def test_shapes(self, paths):
        vertex_ids, mask = encode_paths(paths)
        assert vertex_ids.shape == (5, 3)
        assert mask.shape == (5, 3)

    def test_padding_masked(self, paths):
        vertex_ids, mask = encode_paths(paths)
        np.testing.assert_allclose(mask[:, 0], [1, 1, 1, 0, 0])
        np.testing.assert_allclose(mask[:, 1], [1, 1, 1, 1, 1])
        np.testing.assert_allclose(mask[:, 2], [1, 1, 0, 0, 0])

    def test_ids_correct(self, paths):
        vertex_ids, _ = encode_paths(paths)
        assert vertex_ids[:3, 0].tolist() == [0, 1, 2]
        assert vertex_ids[:5, 1].tolist() == [0, 3, 4, 5, 2]

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            encode_paths([])

    def test_minibatches_cover_everything(self, paths):
        targets = np.array([0.1, 0.2, 0.3])
        seen = 0
        for ids, mask, t in minibatches(paths, targets, batch_size=2, shuffle=False):
            assert ids.shape[1] == t.shape[0]
            seen += t.shape[0]
        assert seen == 3

    def test_minibatches_shuffle_deterministic(self, paths):
        targets = np.array([0.1, 0.2, 0.3])
        a = [t.tolist() for _, _, t in minibatches(paths, targets, 1, rng=3)]
        b = [t.tolist() for _, _, t in minibatches(paths, targets, 1, rng=3)]
        assert a == b

    def test_minibatches_validation(self, paths):
        with pytest.raises(DataError):
            list(minibatches(paths, np.zeros(2), 2))
        with pytest.raises(ValueError):
            list(minibatches(paths, np.zeros(3), 0))

    def test_compact_dtypes(self, paths):
        vertex_ids, mask = encode_paths(paths)
        assert vertex_ids.dtype == np.int32
        assert mask.dtype == np.float32

    def test_scratch_reused_for_repeat_shapes(self, paths):
        first_ids, first_mask = encode_paths(paths)
        again_ids, again_mask = encode_paths(paths)
        assert np.shares_memory(first_ids, again_ids)
        assert np.shares_memory(first_mask, again_mask)
        # Contents are re-written correctly on every call.
        assert again_ids[:5, 1].tolist() == [0, 3, 4, 5, 2]
        np.testing.assert_allclose(again_mask[:, 2], [1, 1, 0, 0, 0])

    def test_reuse_false_returns_fresh_arrays(self, paths):
        first_ids, first_mask = encode_paths(paths, reuse=False)
        again_ids, again_mask = encode_paths(paths, reuse=False)
        assert not np.shares_memory(first_ids, again_ids)
        assert not np.shares_memory(first_mask, again_mask)

    def test_scratch_zeroes_padding_after_larger_batch(self, paths,
                                                       tiny_network):
        encode_paths(paths)  # leaves non-zero ids in the scratch buffer
        vertex_ids, mask = encode_paths(
            [Path(tiny_network, [0, 2]), Path(tiny_network, [0, 1, 2])])
        assert vertex_ids[:, 0].tolist() == [0, 2, 0]
        np.testing.assert_allclose(mask[:, 0], [1, 1, 0])


class TestLengthBuckets:
    def test_partition_covers_every_index(self):
        lengths = [30, 2, 17, 5, 5, 90, 8, 3, 44, 12, 2, 61, 7, 9, 20, 28,
                   33, 70, 4, 11]
        buckets = length_buckets(lengths, min_bucket=4)
        flat = sorted(int(i) for bucket in buckets for i in bucket)
        assert flat == list(range(len(lengths)))

    def test_buckets_are_length_sorted(self):
        lengths = [12, 3, 40, 7, 25, 5, 90, 18, 2, 33, 6, 11, 80, 4, 55, 9]
        buckets = length_buckets(lengths, min_bucket=2)
        ordered = [lengths[int(i)] for bucket in buckets for i in bucket]
        assert ordered == sorted(lengths)

    def test_growth_bounds_full_buckets(self):
        rng = np.random.default_rng(4)
        lengths = rng.integers(2, 200, size=100)
        for bucket in length_buckets(lengths, growth=1.5, min_bucket=8):
            values = lengths[bucket]
            if len(values) > 8:
                # Elements beyond the size floor only join while within
                # the growth bound of the bucket's shortest member.
                assert values[-1] <= values[0] * 1.5

    def test_small_batches_stay_whole(self):
        buckets = length_buckets([2, 50, 9, 120], min_bucket=8)
        assert len(buckets) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            length_buckets([2, 3], growth=0.5)
        with pytest.raises(ValueError):
            length_buckets([2, 3], min_bucket=0)
        assert length_buckets([]) == []

    def test_encode_path_buckets_round_trip(self, tiny_network):
        paths = [
            Path(tiny_network, [0, 1, 2]),
            Path(tiny_network, [0, 3, 4, 5, 2]),
            Path(tiny_network, [0, 2]),
            Path(tiny_network, [1, 4, 5]),
        ]
        seen = []
        for index, vertex_ids, mask in encode_path_buckets(paths,
                                                           min_bucket=1):
            assert vertex_ids.shape == mask.shape
            for column, i in enumerate(index):
                path = paths[int(i)]
                assert vertex_ids[:path.num_vertices,
                                  column].tolist() == list(path.vertices)
                assert mask[:, column].sum() == path.num_vertices
                seen.append(int(i))
        assert sorted(seen) == [0, 1, 2, 3]

    def test_encode_path_buckets_rejects_empty(self):
        with pytest.raises(DataError):
            list(encode_path_buckets([]))


class TestBucketedMinibatches:
    def make_paths(self, tiny_network):
        pool = [
            Path(tiny_network, [0, 1, 2]),
            Path(tiny_network, [0, 3, 4, 5, 2]),
            Path(tiny_network, [0, 2]),
            Path(tiny_network, [1, 4, 5]),
            Path(tiny_network, [3, 4, 1, 0]),
            Path(tiny_network, [2, 1, 4, 3]),
            Path(tiny_network, [5, 4, 1, 2, 5]),
        ]
        return pool, np.arange(len(pool), dtype=float) / 10.0

    def test_bucketed_is_permutation_of_unbucketed(self, tiny_network):
        """Bucketing only regroups batches; the multiset of
        (path-column, target) pairs must be exactly the dataset."""
        paths, targets = self.make_paths(tiny_network)
        for seed in range(5):
            yielded = []
            for vertex_ids, mask, batch_targets in minibatches(
                    paths, targets, batch_size=3, rng=seed,
                    bucket_by_length=True):
                assert vertex_ids.shape == mask.shape
                assert vertex_ids.shape[1] == batch_targets.shape[0]
                for column, target in enumerate(batch_targets):
                    real = int(mask[:, column].sum())
                    yielded.append(
                        (tuple(vertex_ids[:real, column].tolist()),
                         float(target)))
            expected = sorted((tuple(p.vertices), float(t))
                              for p, t in zip(paths, targets))
            assert sorted(yielded) == expected

    def test_bucketed_batches_pad_locally(self, tiny_network):
        paths, targets = self.make_paths(tiny_network)
        steps = sorted(ids.shape[0] for ids, _, _ in minibatches(
            paths, targets, batch_size=3, shuffle=False,
            bucket_by_length=True))
        # Without bucketing every batch containing a 5-vertex path pads
        # to 5; the length-sorted order must produce a shorter batch.
        assert steps[0] < 5

    def test_bucketed_shuffle_deterministic(self, tiny_network):
        paths, targets = self.make_paths(tiny_network)

        def run(seed):
            return [t.tolist() for _, _, t in minibatches(
                paths, targets, 2, rng=seed, bucket_by_length=True)]

        assert run(9) == run(9)


class TestBucketedBatchIndices:
    def test_exact_partition(self):
        from repro.core.batching import bucketed_batch_indices

        lengths = [9, 2, 7, 2, 11, 4, 4, 8, 3]
        for seed in range(4):
            batches = bucketed_batch_indices(lengths, 3, rng=seed)
            flat = sorted(int(i) for batch in batches for i in batch)
            assert flat == list(range(len(lengths)))

    def test_batches_group_similar_lengths(self):
        from repro.core.batching import bucketed_batch_indices

        lengths = [2, 2, 2, 2, 30, 30, 30, 30]
        batches = bucketed_batch_indices(lengths, 4, rng=0)
        spans = sorted(
            max(lengths[int(i)] for i in batch)
            - min(lengths[int(i)] for i in batch)
            for batch in batches)
        # Length-sorted batching must separate the two length modes.
        assert spans == [0, 0]

    def test_unshuffled_is_plain_length_sort(self):
        from repro.core.batching import bucketed_batch_indices

        lengths = [5, 1, 3, 2, 4]
        batches = bucketed_batch_indices(lengths, 2, shuffle=False)
        ordered = [lengths[int(i)] for batch in batches for i in batch]
        assert ordered == sorted(lengths)

    def test_empty_and_validation(self):
        from repro.core.batching import bucketed_batch_indices

        assert bucketed_batch_indices([], 4) == []
        with pytest.raises(ValueError):
            bucketed_batch_indices([1, 2], 0)


class TestPathRankModel:
    def make(self, **kwargs):
        defaults = dict(num_vertices=6, embedding_dim=8, hidden_size=8,
                        fc_hidden=4, rng=0)
        defaults.update(kwargs)
        return PathRank(**defaults)

    def test_forward_shape_and_range(self, paths):
        model = self.make()
        vertex_ids, mask = encode_paths(paths)
        scores = model(vertex_ids, mask)
        assert scores.shape == (3,)
        assert np.all((scores.data > 0) & (scores.data < 1))

    def test_score_paths(self, paths):
        model = self.make()
        scores = model.score_paths(paths)
        assert scores.shape == (3,)

    def test_score_paths_empty(self):
        assert self.make().score_paths([]).shape == (0,)

    def test_padding_invariance(self, paths, tiny_network):
        """Scoring a path alone or in a padded batch must agree."""
        model = self.make()
        short = Path(tiny_network, [0, 2])
        alone = model.score_paths([short])[0]
        batched = model.score_paths(paths)[2]
        assert alone == pytest.approx(batched, abs=1e-12)

    def test_unidirectional_option(self, paths):
        model = self.make(bidirectional=False)
        assert model.summary_size == 8
        vertex_ids, mask = encode_paths(paths)
        assert model(vertex_ids, mask).shape == (3,)

    def test_final_pooling_option(self, paths):
        model = self.make(pooling="final")
        vertex_ids, mask = encode_paths(paths)
        assert model(vertex_ids, mask).shape == (3,)

    def test_attention_pooling_option(self, paths):
        model = self.make(pooling="attention")
        vertex_ids, mask = encode_paths(paths)
        scores = model(vertex_ids, mask)
        assert scores.shape == (3,)
        assert np.all((scores.data > 0) & (scores.data < 1))

    def test_attention_padding_invariance(self, paths, tiny_network):
        model = self.make(pooling="attention")
        short = Path(tiny_network, [0, 2])
        alone = model.score_paths([short])[0]
        batched = model.score_paths(paths)[2]
        assert alone == pytest.approx(batched, abs=1e-10)

    def test_attention_registers_extra_parameters(self):
        plain = self.make(pooling="mean")
        attentive = self.make(pooling="attention")
        assert attentive.num_parameters() > plain.num_parameters()

    def test_pretrained_embedding(self):
        matrix = np.random.default_rng(0).normal(size=(6, 8))
        model = self.make(embedding_matrix=matrix)
        np.testing.assert_allclose(model.embedding.weight.data, matrix)

    def test_pretrained_shape_mismatch(self):
        with pytest.raises(ConfigError):
            self.make(embedding_matrix=np.zeros((6, 9)))

    def test_frozen_embedding_pr_a1(self):
        model = self.make(trainable_embedding=False)
        assert not model.embedding.weight.requires_grad

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            PathRank(num_vertices=0)
        with pytest.raises(ConfigError):
            self.make(pooling="max")

    def test_gradients_flow_end_to_end(self, paths):
        model = self.make()
        vertex_ids, mask = encode_paths(paths)

        def forward():
            scores = model(vertex_ids, mask)
            return (scores * scores).mean()

        check_gradients(forward, [model.embedding.weight, model.fc2.weight],
                        atol=1e-4, rtol=1e-3)

    def test_deterministic_construction(self, paths):
        a, b = self.make(rng=9), self.make(rng=9)
        vertex_ids, mask = encode_paths(paths)
        np.testing.assert_allclose(a(vertex_ids, mask).data, b(vertex_ids, mask).data)


class TestVariants:
    def test_variant_lookup(self):
        assert Variant.from_name("pr-a1") is Variant.PR_A1
        with pytest.raises(KeyError):
            Variant.from_name("pr-zz")

    def test_pr_a1_frozen(self):
        model = build_pathrank(Variant.PR_A1, num_vertices=6, embedding_dim=8,
                               hidden_size=8, fc_hidden=4)
        assert not model.embedding.weight.requires_grad

    def test_pr_a2_trainable(self):
        model = build_pathrank(Variant.PR_A2, num_vertices=6, embedding_dim=8,
                               hidden_size=8, fc_hidden=4)
        assert model.embedding.weight.requires_grad

    def test_pr_m_is_multitask(self, paths):
        model = build_pathrank(Variant.PR_M, num_vertices=6, embedding_dim=8,
                               hidden_size=8, fc_hidden=4)
        assert isinstance(model, PathRankMultiTask)
        vertex_ids, mask = encode_paths(paths)
        scores, aux = model.forward_with_aux(vertex_ids, mask)
        assert scores.shape == (3,)
        assert aux.shape == (3, 2)

    def test_build_from_string(self):
        model = build_pathrank("PR-A2", num_vertices=6, embedding_dim=8,
                               hidden_size=8, fc_hidden=4)
        assert isinstance(model, PathRank)
