"""Tests for path batching and the PathRank network."""

import numpy as np
import pytest

from repro.errors import ConfigError, DataError
from repro.core import PathRank, PathRankMultiTask, Variant, build_pathrank, encode_paths, minibatches
from repro.graph import Path
from repro.nn import Tensor, check_gradients


@pytest.fixture
def paths(tiny_network):
    return [
        Path(tiny_network, [0, 1, 2]),
        Path(tiny_network, [0, 3, 4, 5, 2]),
        Path(tiny_network, [0, 2]),
    ]


class TestEncodePaths:
    def test_shapes(self, paths):
        vertex_ids, mask = encode_paths(paths)
        assert vertex_ids.shape == (5, 3)
        assert mask.shape == (5, 3)

    def test_padding_masked(self, paths):
        vertex_ids, mask = encode_paths(paths)
        np.testing.assert_allclose(mask[:, 0], [1, 1, 1, 0, 0])
        np.testing.assert_allclose(mask[:, 1], [1, 1, 1, 1, 1])
        np.testing.assert_allclose(mask[:, 2], [1, 1, 0, 0, 0])

    def test_ids_correct(self, paths):
        vertex_ids, _ = encode_paths(paths)
        assert vertex_ids[:3, 0].tolist() == [0, 1, 2]
        assert vertex_ids[:5, 1].tolist() == [0, 3, 4, 5, 2]

    def test_empty_rejected(self):
        with pytest.raises(DataError):
            encode_paths([])

    def test_minibatches_cover_everything(self, paths):
        targets = np.array([0.1, 0.2, 0.3])
        seen = 0
        for ids, mask, t in minibatches(paths, targets, batch_size=2, shuffle=False):
            assert ids.shape[1] == t.shape[0]
            seen += t.shape[0]
        assert seen == 3

    def test_minibatches_shuffle_deterministic(self, paths):
        targets = np.array([0.1, 0.2, 0.3])
        a = [t.tolist() for _, _, t in minibatches(paths, targets, 1, rng=3)]
        b = [t.tolist() for _, _, t in minibatches(paths, targets, 1, rng=3)]
        assert a == b

    def test_minibatches_validation(self, paths):
        with pytest.raises(DataError):
            list(minibatches(paths, np.zeros(2), 2))
        with pytest.raises(ValueError):
            list(minibatches(paths, np.zeros(3), 0))


class TestPathRankModel:
    def make(self, **kwargs):
        defaults = dict(num_vertices=6, embedding_dim=8, hidden_size=8,
                        fc_hidden=4, rng=0)
        defaults.update(kwargs)
        return PathRank(**defaults)

    def test_forward_shape_and_range(self, paths):
        model = self.make()
        vertex_ids, mask = encode_paths(paths)
        scores = model(vertex_ids, mask)
        assert scores.shape == (3,)
        assert np.all((scores.data > 0) & (scores.data < 1))

    def test_score_paths(self, paths):
        model = self.make()
        scores = model.score_paths(paths)
        assert scores.shape == (3,)

    def test_score_paths_empty(self):
        assert self.make().score_paths([]).shape == (0,)

    def test_padding_invariance(self, paths, tiny_network):
        """Scoring a path alone or in a padded batch must agree."""
        model = self.make()
        short = Path(tiny_network, [0, 2])
        alone = model.score_paths([short])[0]
        batched = model.score_paths(paths)[2]
        assert alone == pytest.approx(batched, abs=1e-12)

    def test_unidirectional_option(self, paths):
        model = self.make(bidirectional=False)
        assert model.summary_size == 8
        vertex_ids, mask = encode_paths(paths)
        assert model(vertex_ids, mask).shape == (3,)

    def test_final_pooling_option(self, paths):
        model = self.make(pooling="final")
        vertex_ids, mask = encode_paths(paths)
        assert model(vertex_ids, mask).shape == (3,)

    def test_attention_pooling_option(self, paths):
        model = self.make(pooling="attention")
        vertex_ids, mask = encode_paths(paths)
        scores = model(vertex_ids, mask)
        assert scores.shape == (3,)
        assert np.all((scores.data > 0) & (scores.data < 1))

    def test_attention_padding_invariance(self, paths, tiny_network):
        model = self.make(pooling="attention")
        short = Path(tiny_network, [0, 2])
        alone = model.score_paths([short])[0]
        batched = model.score_paths(paths)[2]
        assert alone == pytest.approx(batched, abs=1e-10)

    def test_attention_registers_extra_parameters(self):
        plain = self.make(pooling="mean")
        attentive = self.make(pooling="attention")
        assert attentive.num_parameters() > plain.num_parameters()

    def test_pretrained_embedding(self):
        matrix = np.random.default_rng(0).normal(size=(6, 8))
        model = self.make(embedding_matrix=matrix)
        np.testing.assert_allclose(model.embedding.weight.data, matrix)

    def test_pretrained_shape_mismatch(self):
        with pytest.raises(ConfigError):
            self.make(embedding_matrix=np.zeros((6, 9)))

    def test_frozen_embedding_pr_a1(self):
        model = self.make(trainable_embedding=False)
        assert not model.embedding.weight.requires_grad

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            PathRank(num_vertices=0)
        with pytest.raises(ConfigError):
            self.make(pooling="max")

    def test_gradients_flow_end_to_end(self, paths):
        model = self.make()
        vertex_ids, mask = encode_paths(paths)

        def forward():
            scores = model(vertex_ids, mask)
            return (scores * scores).mean()

        check_gradients(forward, [model.embedding.weight, model.fc2.weight],
                        atol=1e-4, rtol=1e-3)

    def test_deterministic_construction(self, paths):
        a, b = self.make(rng=9), self.make(rng=9)
        vertex_ids, mask = encode_paths(paths)
        np.testing.assert_allclose(a(vertex_ids, mask).data, b(vertex_ids, mask).data)


class TestVariants:
    def test_variant_lookup(self):
        assert Variant.from_name("pr-a1") is Variant.PR_A1
        with pytest.raises(KeyError):
            Variant.from_name("pr-zz")

    def test_pr_a1_frozen(self):
        model = build_pathrank(Variant.PR_A1, num_vertices=6, embedding_dim=8,
                               hidden_size=8, fc_hidden=4)
        assert not model.embedding.weight.requires_grad

    def test_pr_a2_trainable(self):
        model = build_pathrank(Variant.PR_A2, num_vertices=6, embedding_dim=8,
                               hidden_size=8, fc_hidden=4)
        assert model.embedding.weight.requires_grad

    def test_pr_m_is_multitask(self, paths):
        model = build_pathrank(Variant.PR_M, num_vertices=6, embedding_dim=8,
                               hidden_size=8, fc_hidden=4)
        assert isinstance(model, PathRankMultiTask)
        vertex_ids, mask = encode_paths(paths)
        scores, aux = model.forward_with_aux(vertex_ids, mask)
        assert scores.shape == (3,)
        assert aux.shape == (3, 2)

    def test_build_from_string(self):
        model = build_pathrank("PR-A2", num_vertices=6, embedding_dim=8,
                               hidden_size=8, fc_hidden=4)
        assert isinstance(model, PathRank)
