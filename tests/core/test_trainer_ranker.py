"""Tests for the Trainer and the end-to-end PathRankRanker API.

These use a small grid network and short training budgets; they verify
convergence mechanics and API contracts, not headline accuracy (the
benchmarks do that).
"""

import numpy as np
import pytest

from repro.core import (
    PathRankRanker,
    RankerConfig,
    Trainer,
    TrainerConfig,
    Variant,
    build_pathrank,
)
from repro.core.trainer import _pairs_within, flatten_queries
from repro.errors import ConfigError, TrainingError
from repro.graph import grid_network
from repro.ranking import Strategy, TrainingDataConfig, generate_queries
from repro.trajectories import FleetConfig, generate_fleet


@pytest.fixture(scope="module")
def small_setup():
    network = grid_network(6, 6, seed=2)
    config = FleetConfig(num_drivers=6, trips_per_driver=6,
                         min_trip_distance=600.0, num_od_hotspots=12)
    _, trips = generate_fleet(network, rng=4, config=config)
    queries = generate_queries(
        trips,
        TrainingDataConfig(strategy=Strategy.TKDI, k=4),
    )
    return network, trips, queries


class TestFlattenAndPairs:
    def test_flatten_counts(self, small_setup):
        _, _, queries = small_setup
        material = flatten_queries(queries)
        assert len(material) == len(queries)
        paths, targets, scores = material[0]
        assert len(paths) == targets.shape[0] == scores.shape[0]

    def test_flatten_with_aux_columns(self, small_setup):
        _, _, queries = small_setup
        material = flatten_queries(queries, with_aux=True)
        _, targets, _ = material[0]
        assert targets.ndim == 2 and targets.shape[1] == 3
        assert np.all(targets[:, 1:] <= 1.0 + 1e-9)

    def test_flatten_empty_rejected(self):
        with pytest.raises(TrainingError):
            flatten_queries([])

    def test_pairs_within_margin(self):
        pairs = _pairs_within(np.array([0.9, 0.5, 0.52]), margin=0.05)
        as_set = {tuple(p) for p in pairs}
        assert (0, 1) in as_set and (0, 2) in as_set
        assert (2, 1) not in as_set  # gap 0.02 below margin

    def test_pairs_empty_when_constant(self):
        assert _pairs_within(np.array([0.5, 0.5]), margin=0.05).shape == (0, 2)


class TestTrainer:
    def make_model(self, network, **kwargs):
        return build_pathrank(Variant.PR_A2, num_vertices=network.num_vertices,
                              embedding_dim=8, hidden_size=8, fc_hidden=4,
                              rng=0, **kwargs)

    def test_loss_decreases(self, small_setup):
        network, _, queries = small_setup
        model = self.make_model(network)
        trainer = Trainer(model, TrainerConfig(epochs=8, patience=8,
                                               queries_per_batch=8), rng=0)
        history = trainer.fit(queries)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_early_stopping(self, small_setup):
        network, _, queries = small_setup
        model = self.make_model(network)
        trainer = Trainer(model, TrainerConfig(epochs=200, patience=2,
                                               queries_per_batch=8,
                                               min_delta=0.5), rng=0)
        history = trainer.fit(queries)
        assert history.stopped_early
        assert history.epochs_run < 200

    def test_validation_tracked(self, small_setup):
        network, _, queries = small_setup
        model = self.make_model(network)
        trainer = Trainer(model, TrainerConfig(epochs=4, patience=4,
                                               queries_per_batch=8), rng=0)
        history = trainer.fit(queries[:-3], validation_queries=queries[-3:])
        assert len(history.validation_loss) == history.epochs_run

    def test_best_weights_restored(self, small_setup):
        network, _, queries = small_setup
        model = self.make_model(network)
        trainer = Trainer(model, TrainerConfig(epochs=6, patience=6,
                                               queries_per_batch=8), rng=0)
        history = trainer.fit(queries[:-3], validation_queries=queries[-3:])
        assert 0 <= history.best_epoch < history.epochs_run

    def test_multitask_training_runs(self, small_setup):
        network, _, queries = small_setup
        model = build_pathrank(Variant.PR_M, num_vertices=network.num_vertices,
                               embedding_dim=8, hidden_size=8, fc_hidden=4, rng=0)
        trainer = Trainer(model, TrainerConfig(epochs=3, patience=3,
                                               queries_per_batch=8), rng=0)
        history = trainer.fit(queries)
        assert trainer.is_multitask
        assert history.epochs_run == 3

    def test_pure_regression_mode(self, small_setup):
        """rank_weight=0 recovers the paper's pointwise objective."""
        network, _, queries = small_setup
        model = self.make_model(network)
        trainer = Trainer(model, TrainerConfig(epochs=3, patience=3,
                                               queries_per_batch=8,
                                               rank_weight=0.0), rng=0)
        history = trainer.fit(queries)
        assert history.epochs_run == 3

    def test_frozen_everything_rejected(self, small_setup):
        network, _, queries = small_setup
        model = self.make_model(network)
        for parameter in model.parameters():
            parameter.freeze()
        with pytest.raises(TrainingError):
            Trainer(model).fit(queries)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainerConfig(rank_weight=-1.0)
        with pytest.raises(ValueError):
            TrainerConfig(rank_margin=2.0)
        with pytest.raises(ValueError):
            TrainerConfig(rank_scale=0.0)

    def test_bucketed_batches_still_converge(self, small_setup):
        """Length-bucketed query batching (opt-in) must train as
        well as the plain shuffled order."""
        network, _, queries = small_setup
        losses = {}
        for bucketed in (True, False):
            model = self.make_model(network)
            trainer = Trainer(model, TrainerConfig(
                epochs=6, patience=6, queries_per_batch=8,
                bucket_by_length=bucketed), rng=0)
            history = trainer.fit(queries)
            assert history.train_loss[-1] < history.train_loss[0]
            losses[bucketed] = history.train_loss[-1]
        # Both orders reach the same loss regime (not bit-identical:
        # batch composition differs).
        assert losses[True] == pytest.approx(losses[False], rel=0.5)

    def test_bucketed_batches_visit_every_query(self, small_setup,
                                                monkeypatch):
        network, _, queries = small_setup
        model = self.make_model(network)
        trainer = Trainer(model, TrainerConfig(epochs=1, patience=1,
                                               queries_per_batch=4,
                                               bucket_by_length=True), rng=0)
        seen = []
        original = Trainer._query_batch_loss

        def spy(self, batch):
            seen.append(len(batch))
            return original(self, batch)

        monkeypatch.setattr(Trainer, "_query_batch_loss", spy)
        trainer.fit(queries)
        assert sum(seen) == len(queries)


class TestRanker:
    @pytest.fixture(scope="class")
    def fitted(self):
        network = grid_network(6, 6, seed=2)
        fleet_config = FleetConfig(num_drivers=6, trips_per_driver=6,
                                   min_trip_distance=600.0, num_od_hotspots=12)
        _, trips = generate_fleet(network, rng=4, config=fleet_config)
        config = RankerConfig(
            variant=Variant.PR_A2,
            embedding_dim=8,
            hidden_size=8,
            fc_hidden=4,
            training_data=TrainingDataConfig(strategy=Strategy.TKDI, k=3),
            trainer=TrainerConfig(epochs=4, patience=4, queries_per_batch=8),
            node2vec=None,
        )
        ranker = PathRankRanker(network, config)
        ranker.fit(trips, rng=0)
        return network, ranker, trips

    def test_fit_records_history(self, fitted):
        _, ranker, _ = fitted
        assert ranker.history is not None
        assert ranker.history.epochs_run >= 1

    def test_embedding_matrix_stored(self, fitted):
        network, ranker, _ = fitted
        assert ranker.embedding_matrix.shape == (network.num_vertices, 8)

    def test_rank_returns_sorted(self, fitted):
        _, ranker, trips = fitted
        results = ranker.rank(trips[0].source, trips[0].target)
        assert len(results) >= 1
        scores = [score for _, score in results]
        assert scores == sorted(scores, reverse=True)

    def test_rank_paths_connect_endpoints(self, fitted):
        _, ranker, trips = fitted
        for path, _ in ranker.rank(trips[0].source, trips[0].target):
            assert path.source == trips[0].source
            assert path.target == trips[0].target

    def test_score_paths(self, fitted):
        _, ranker, trips = fitted
        scores = ranker.score_paths([trips[0].path])
        assert scores.shape == (1,)
        assert 0.0 < scores[0] < 1.0

    def test_inference_before_fit_rejected(self):
        network = grid_network(4, 4, seed=0)
        ranker = PathRankRanker(network)
        with pytest.raises(TrainingError):
            ranker.rank(0, network.num_vertices - 1)

    def test_fit_empty_rejected(self):
        network = grid_network(4, 4, seed=0)
        with pytest.raises(TrainingError):
            PathRankRanker(network).fit([])

    def test_save_load_roundtrip(self, fitted, tmp_path):
        network, ranker, trips = fitted
        checkpoint = tmp_path / "ranker.npz"
        ranker.save(checkpoint)
        restored = PathRankRanker(network, ranker.config).load(checkpoint)
        original = ranker.score_paths([trips[0].path])
        loaded = restored.score_paths([trips[0].path])
        np.testing.assert_allclose(loaded, original)

    def test_load_wrong_network_rejected(self, fitted, tmp_path):
        _, ranker, _ = fitted
        checkpoint = tmp_path / "ranker.npz"
        ranker.save(checkpoint)
        other = grid_network(5, 5, seed=9)
        with pytest.raises(ConfigError):
            PathRankRanker(other).load(checkpoint)

    def test_non_dense_network_rejected(self):
        from repro.graph import RoadNetwork

        network = RoadNetwork()
        network.add_vertex(3, 0, 0)
        network.add_vertex(7, 1, 0)
        network.add_two_way(3, 7, length=1.0)
        with pytest.raises(ConfigError):
            PathRankRanker(network)

    def test_node2vec_dim_mismatch_rejected(self):
        from repro.embedding import Node2VecConfig

        network = grid_network(4, 4, seed=0)
        config = RankerConfig(embedding_dim=16,
                              node2vec=Node2VecConfig(dim=8))
        with pytest.raises(ConfigError):
            PathRankRanker(network, config)
