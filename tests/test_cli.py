"""Tests for the command-line interface (in-process, via main())."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def artifacts(tmp_path_factory):
    """Run the full CLI pipeline once; later tests reuse its outputs."""
    root = tmp_path_factory.mktemp("cli")
    network = root / "net.json"
    dataset = root / "trips.json"
    model = root / "model.npz"

    assert main(["build-network", "--kind", "region", "--towns", "3",
                 "--seed", "7", "--out", str(network)]) == 0
    assert main(["simulate-fleet", "--network", str(network),
                 "--drivers", "6", "--trips", "4", "--hotspots", "10",
                 "--seed", "0", "--out", str(dataset)]) == 0
    assert main(["train", "--dataset", str(dataset), "--variant", "PR-A2",
                 "--strategy", "D-TkDI", "--k", "3",
                 "--embedding-dim", "8", "--hidden-size", "8",
                 "--epochs", "3", "--out", str(model)]) == 0
    return network, dataset, model


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_build_network_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["build-network"])


class TestBuildNetwork:
    def test_grid(self, tmp_path, capsys):
        out = tmp_path / "grid.json"
        assert main(["build-network", "--kind", "grid", "--rows", "4",
                     "--cols", "4", "--out", str(out)]) == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_osm_export(self, tmp_path):
        out = tmp_path / "ring.json"
        osm = tmp_path / "ring.osm"
        assert main(["build-network", "--kind", "ring", "--out", str(out),
                     "--osm-out", str(osm)]) == 0
        assert osm.exists()

    def test_region_artifacts_loadable(self, artifacts):
        from repro.graph import load_network_json

        network, _, _ = artifacts
        loaded = load_network_json(network)
        assert loaded.is_strongly_connected()


class TestFleetAndTraining:
    def test_dataset_written(self, artifacts):
        from repro.trajectories import TrajectoryDataset

        _, dataset, _ = artifacts
        loaded = TrajectoryDataset.load(dataset)
        assert len(loaded) == 24

    def test_model_written(self, artifacts):
        _, _, model = artifacts
        assert model.exists()

    def test_evaluate_json_output(self, artifacts, capsys):
        _, dataset, model = artifacts
        code = main(["evaluate", "--dataset", str(dataset),
                     "--model", str(model), "--strategy", "D-TkDI",
                     "--k", "3", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) >= {"mae", "mare", "tau", "rho"}
        assert 0.0 <= payload["mae"] <= 1.0

    def test_evaluate_human_output(self, artifacts, capsys):
        _, dataset, model = artifacts
        assert main(["evaluate", "--dataset", str(dataset),
                     "--model", str(model), "--k", "3"]) == 0
        assert "MAE=" in capsys.readouterr().out


class TestRank:
    def test_rank_prints_sorted(self, artifacts, capsys):
        from repro.trajectories import TrajectoryDataset

        _, dataset, model = artifacts
        trips = TrajectoryDataset.load(dataset)
        trip = trips[0]
        code = main(["rank", "--dataset", str(dataset), "--model", str(model),
                     "--source", str(trip.source), "--target", str(trip.target)])
        assert code == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.startswith("#")]
        assert lines
        scores = [float(line.split("score=")[1].split()[0]) for line in lines]
        assert scores == sorted(scores, reverse=True)

    def test_rank_bad_vertex(self, artifacts, capsys):
        _, dataset, model = artifacts
        code = main(["rank", "--dataset", str(dataset), "--model", str(model),
                     "--source", "0", "--target", "99999"])
        assert code == 2


@pytest.fixture(scope="module")
def queries_file(artifacts, tmp_path_factory):
    """An offline replay file with a deliberate repeat query."""
    from repro.graph import load_network_json

    network_path, _, _ = artifacts
    ids = load_network_json(network_path).vertex_ids()
    queries = [
        {"source": ids[0], "target": ids[-1]},
        {"source": ids[1], "target": ids[-2]},
        {"source": ids[0], "target": ids[-1]},  # repeat: must hit the cache
    ]
    path = tmp_path_factory.mktemp("serve") / "queries.json"
    path.write_text(json.dumps(queries))
    return path


class TestServe:
    def test_serve_replays_queries(self, artifacts, queries_file, capsys):
        network, _, model = artifacts
        code = main(["serve", "--network", str(network), "--model", str(model),
                     "--queries-file", str(queries_file), "--k", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cache hit" in out
        assert "served 3 requests" in out

    def test_serve_json_reports_cache_hits(self, artifacts, queries_file,
                                           capsys):
        network, _, model = artifacts
        code = main(["serve", "--network", str(network), "--model", str(model),
                     "--queries-file", str(queries_file), "--k", "3",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["responses"]) == 3
        assert all(r["served_by"] == "model" for r in payload["responses"])
        assert payload["responses"][2]["candidate_cache_hit"] is True
        # Identical queries must produce identical rankings.
        assert payload["responses"][2]["top_vertices"] == \
            payload["responses"][0]["top_vertices"]
        assert payload["stats"]["candidate_cache"]["hits"] >= 1

    def test_serve_json_failed_request_exits_nonzero(self, artifacts,
                                                     tmp_path, capsys):
        network, _, model = artifacts
        bad = tmp_path / "unreachable.json"
        bad.write_text('[{"source": 0, "target": 99999}]')
        code = main(["serve", "--network", str(network), "--model", str(model),
                     "--queries-file", str(bad), "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["responses"][0]["served_by"] == "error"

    def test_serve_missing_model_exits_cleanly(self, artifacts, queries_file,
                                               capsys):
        network, _, _ = artifacts
        code = main(["serve", "--network", str(network),
                     "--model", str(network.parent / "absent.npz"),
                     "--queries-file", str(queries_file)])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_serve_missing_network_exits_cleanly(self, artifacts, queries_file,
                                                 capsys):
        _, _, model = artifacts
        code = main(["serve", "--network", "/nonexistent/net.json",
                     "--model", str(model),
                     "--queries-file", str(queries_file)])
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_serve_malformed_queries_exits_cleanly(self, artifacts, tmp_path,
                                                   capsys):
        network, _, model = artifacts
        bad = tmp_path / "bad.json"
        bad.write_text('{"queries": "not a list"}')
        code = main(["serve", "--network", str(network), "--model", str(model),
                     "--queries-file", str(bad)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_rank_missing_model_exits_cleanly(self, artifacts, capsys):
        _, dataset, _ = artifacts
        code = main(["rank", "--dataset", str(dataset),
                     "--model", "/nonexistent/model.npz",
                     "--source", "0", "--target", "1"])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err


class TestServeConcurrent:
    def test_serve_through_engine(self, artifacts, queries_file, capsys):
        network, _, model = artifacts
        code = main(["serve", "--network", str(network), "--model", str(model),
                     "--queries-file", str(queries_file), "--k", "3",
                     "--concurrency", "4", "--flush-deadline-ms", "1",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["responses"]) == 3
        assert all(r["served_by"] == "model" for r in payload["responses"])
        # Identical queries must rank identically through the engine too.
        assert payload["responses"][2]["top_vertices"] == \
            payload["responses"][0]["top_vertices"]
        assert payload["stats"]["engine"]["concurrency"] == 4
        assert payload["stats"]["engine"]["occupancy"]["flushes"] >= 1

    def test_serve_split_single_version(self, artifacts, queries_file,
                                        capsys):
        network, _, model = artifacts
        code = main(["serve", "--network", str(network), "--model", str(model),
                     "--queries-file", str(queries_file), "--k", "3",
                     "--split", f"{model.stem}=1", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert all(r["model_version"] == model.stem
                   for r in payload["responses"])
        assert model.stem in payload["stats"]["splits"]

    def test_serve_split_unknown_version_exits_cleanly(self, artifacts,
                                                       queries_file, capsys):
        network, _, model = artifacts
        code = main(["serve", "--network", str(network), "--model", str(model),
                     "--queries-file", str(queries_file),
                     "--split", "v9999=1"])
        assert code == 2
        assert "v9999" in capsys.readouterr().err

    def test_serve_malformed_split_exits_cleanly(self, artifacts,
                                                 queries_file, capsys):
        network, _, model = artifacts
        code = main(["serve", "--network", str(network), "--model", str(model),
                     "--queries-file", str(queries_file),
                     "--split", "justaname"])
        assert code == 2
        assert capsys.readouterr().err.startswith("error:")


class TestBenchServe:
    def test_bench_serve_reports_json(self, artifacts, capsys):
        network, _, model = artifacts
        code = main(["bench-serve", "--network", str(network),
                     "--model", str(model), "--requests", "40",
                     "--hotspots", "5", "--k", "3", "--seed", "1"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["requests"] == 40
        assert payload["served_by"]["error"] == 0
        assert payload["throughput_qps"] > 0
        assert set(payload["latency_ms"]) == {"mean", "p50", "p95"}
        # A Zipf mix over 5 hotspots repeats constantly: the cache must show it.
        assert payload["candidate_cache_hit_rate"] > 0.5

    def test_bench_serve_concurrent_closed_loop(self, artifacts, capsys):
        network, _, model = artifacts
        code = main(["bench-serve", "--network", str(network),
                     "--model", str(model), "--requests", "30",
                     "--hotspots", "5", "--k", "3", "--seed", "1",
                     "--concurrency", "8"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["requests"] == 30
        assert payload["served_by"]["error"] == 0
        assert payload["concurrency"] == 8
        assert payload["occupancy"]["requests_coalesced"] == 30

    def test_bench_serve_open_loop(self, artifacts, capsys):
        network, _, model = artifacts
        code = main(["bench-serve", "--network", str(network),
                     "--model", str(model), "--requests", "20",
                     "--hotspots", "5", "--k", "3", "--seed", "1",
                     "--concurrency", "4", "--qps", "2000"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["requests"] == 20
        assert payload["offered_qps"] > 0
        assert payload["served_by"]["error"] == 0

    def test_bench_serve_qps_requires_concurrency(self, artifacts, capsys):
        network, _, model = artifacts
        code = main(["bench-serve", "--network", str(network),
                     "--model", str(model), "--qps", "100"])
        assert code == 2
        assert "concurrency" in capsys.readouterr().err


class TestBenchScoring:
    def test_bench_scoring_smoke_reports_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_scoring.json"
        code = main(["bench-scoring", "--smoke", "--out", str(out)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["preset"] == "smoke"
        assert payload["headline"]["batch_speedup"] > 0
        assert payload["parity"]["coalesced_max_abs_diff"] <= 1e-5
        written = json.loads(out.read_text(encoding="utf-8"))
        assert written["schema_version"] == payload["schema_version"]


class TestAnalyticsCommands:
    @pytest.fixture(scope="class")
    def grid_file(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("analytics") / "grid.json"
        assert main(["build-network", "--kind", "grid", "--rows", "5",
                     "--cols", "5", "--seed", "3", "--out", str(out)]) == 0
        return out

    def test_od_matrix_text(self, grid_file, capsys):
        assert main(["od-matrix", "--network", str(grid_file),
                     "--origins", "0,7", "--destinations", "24,12"]) == 0
        out = capsys.readouterr().out
        assert "origin 0:" in out
        assert "4 pairs via" in out

    def test_od_matrix_json(self, grid_file, capsys):
        assert main(["od-matrix", "--network", str(grid_file),
                     "--origins", "0,7", "--method", "sweep",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["origins"] == [0, 7]
        assert payload["destinations"] == [0, 7]
        assert payload["costs"][0][0] == 0.0

    def test_service_area(self, grid_file, capsys):
        assert main(["service-area", "--network", str(grid_file),
                     "--sources", "0,12", "--budgets", "200,500"]) == 0
        out = capsys.readouterr().out
        assert out.count("source 0 budget") == 2
        assert out.count("source 12 budget") == 2

    def test_service_area_json_reverse(self, grid_file, capsys):
        assert main(["service-area", "--network", str(grid_file),
                     "--sources", "12", "--budgets", "300",
                     "--reverse", "--json"]) == 0
        [area] = json.loads(capsys.readouterr().out)
        assert area["reverse"] is True
        assert 12 in area["vertices"]

    def test_route_frequencies(self, grid_file, capsys):
        assert main(["route-frequencies", "--network", str(grid_file),
                     "--pairs", "0:24,7:24", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "2 pairs over" in out

    def test_route_frequencies_pairs_file(self, grid_file, tmp_path,
                                          capsys):
        pairs = tmp_path / "pairs.json"
        pairs.write_text(json.dumps([[0, 24], {"source": 7, "target": 24}]),
                         encoding="utf-8")
        assert main(["route-frequencies", "--network", str(grid_file),
                     "--pairs-file", str(pairs), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_pairs"] == 2
        assert payload["unreachable_pairs"] == 0
        assert all(load >= 1.0 for _, _, load in payload["edges"])

    def test_malformed_inputs_exit_2(self, grid_file, capsys):
        assert main(["od-matrix", "--network", str(grid_file),
                     "--origins", "zero,one"]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["route-frequencies", "--network", str(grid_file),
                     "--pairs", "1-2"]) == 2
        assert main(["route-frequencies", "--network",
                     str(grid_file)]) == 2
        assert main(["service-area", "--network", str(grid_file),
                     "--sources", "0", "--budgets", "cheap"]) == 2

    def test_bench_analytics_parser_wired(self):
        args = build_parser().parse_args(
            ["bench-analytics", "--smoke", "--workers", "1,2"])
        assert args.command == "bench-analytics"
        assert args.smoke is True
