"""Coalesced scoring: equivalence with sequential, chunking, caching."""

import numpy as np
import pytest

from repro.errors import ServingError
from repro.graph.ksp import yen_k_shortest_paths
from repro.serving import BatchingScorer, ScoreCache


@pytest.fixture(scope="module")
def model(small_grid, make_ranker):
    return make_ranker(small_grid, seed=3).model


@pytest.fixture(scope="module")
def candidate_lists(small_grid):
    """Candidate sets of varying path lengths from several OD pairs."""
    ids = small_grid.vertex_ids()
    pairs = [(ids[0], ids[-1]), (ids[3], ids[-5]), (ids[0], ids[7]),
             (ids[10], ids[-1])]
    return [yen_k_shortest_paths(small_grid, s, t, 4) for s, t in pairs]


class TestEquivalence:
    def test_batched_matches_sequential_scoring(self, model, candidate_lists):
        sequential = [model.score_paths(paths) for paths in candidate_lists]
        scorer = BatchingScorer(max_batch_size=64)
        batched = scorer.score_many(model, candidate_lists)
        assert scorer.batches_run == 1  # all queries shared one forward pass
        for got, want in zip(batched, sequential):
            np.testing.assert_allclose(got, want, atol=1e-9, rtol=0.0)

    def test_equivalence_survives_small_batch_chunks(self, model,
                                                     candidate_lists):
        sequential = [model.score_paths(paths) for paths in candidate_lists]
        scorer = BatchingScorer(max_batch_size=3)
        batched = scorer.score_many(model, candidate_lists)
        assert scorer.batches_run > 1
        for got, want in zip(batched, sequential):
            np.testing.assert_allclose(got, want, atol=1e-9, rtol=0.0)


class TestTickets:
    def test_ticket_unavailable_before_flush(self, candidate_lists):
        scorer = BatchingScorer()
        ticket = scorer.submit(candidate_lists[0])
        assert not ticket.ready
        with pytest.raises(ServingError, match="flush"):
            _ = ticket.scores

    def test_flush_scores_all_pending(self, model, candidate_lists):
        scorer = BatchingScorer()
        tickets = [scorer.submit(paths) for paths in candidate_lists]
        assert scorer.pending_requests() == len(candidate_lists)
        scorer.flush(model)
        assert scorer.pending_requests() == 0
        for ticket, paths in zip(tickets, candidate_lists):
            assert ticket.ready
            assert ticket.scores.shape == (len(paths),)

    def test_empty_flush_is_a_noop(self, model):
        scorer = BatchingScorer()
        assert scorer.flush(model) == 0
        assert scorer.batches_run == 0

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ServingError):
            BatchingScorer(max_batch_size=0)


class TestChunkingAndDedup:
    def test_chunking_respects_max_batch_size(self, model, candidate_lists):
        total = sum(len(paths) for paths in candidate_lists)
        scorer = BatchingScorer(max_batch_size=3)
        scorer.score_many(model, candidate_lists)
        assert scorer.paths_scored == total  # all paths here are distinct
        assert scorer.batches_run == -(-total // 3)

    def test_duplicate_paths_scored_once_per_flush(self, model,
                                                   candidate_lists):
        scorer = BatchingScorer()
        repeated = [candidate_lists[0], candidate_lists[0]]
        scores = scorer.score_many(model, repeated)
        assert scorer.paths_scored == len(candidate_lists[0])
        np.testing.assert_array_equal(scores[0], scores[1])


class TestBucketedFlush:
    def test_mixed_length_flush_matches_sequential(self, model, small_grid):
        """Length-sorted chunking + per-bucket padding must not change a
        single score relative to one-query-at-a-time scoring."""
        from repro.core.scoring_bench import random_walk_paths

        rng = np.random.default_rng(7)
        lists = [random_walk_paths(small_grid,
                                   [int(n) for n in rng.integers(2, 30, 5)],
                                   rng)
                 for _ in range(4)]
        sequential = [model.score_paths(paths) for paths in lists]
        scorer = BatchingScorer(max_batch_size=6)
        batched = scorer.score_many(model, lists)
        for got, want in zip(batched, sequential):
            np.testing.assert_allclose(got, want, atol=1e-7, rtol=0.0)

    def test_flush_returns_python_floats(self, model, candidate_lists):
        scorer = BatchingScorer()
        ticket = scorer.submit(candidate_lists[0])
        scorer.flush(model)
        assert ticket.scores.dtype == np.float64


class TestScoreCacheIntegration:
    def test_repeat_flush_skips_forward_pass(self, model, candidate_lists):
        scorer = BatchingScorer(score_cache=ScoreCache(capacity=64))
        first = scorer.score_many(model, candidate_lists, "v1")
        batches_after_first = scorer.batches_run
        second = scorer.score_many(model, candidate_lists, "v1")
        assert scorer.batches_run == batches_after_first
        assert scorer.cache_hits == sum(len(p) for p in candidate_lists)
        for got, want in zip(second, first):
            np.testing.assert_array_equal(got, want)

    def test_version_change_forces_rescore(self, model, candidate_lists):
        scorer = BatchingScorer(score_cache=ScoreCache(capacity=64))
        scorer.score_many(model, candidate_lists, "v1")
        batches_after_first = scorer.batches_run
        scorer.score_many(model, candidate_lists, "v2")
        assert scorer.batches_run > batches_after_first

    def test_no_version_disables_the_cache(self, model, candidate_lists):
        # Without a version to key on, cached scores from one model could
        # be served for another; the cache must sit the flush out.
        cache = ScoreCache(capacity=64)
        scorer = BatchingScorer(score_cache=cache)
        scorer.score_many(model, candidate_lists)
        scorer.score_many(model, candidate_lists)
        assert scorer.cache_hits == 0
        assert len(cache) == 0
        assert scorer.paths_scored == 2 * sum(len(p) for p in candidate_lists)
