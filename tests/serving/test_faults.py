"""The deterministic fault-injection layer and its spec grammar."""

import threading
import time

import pytest

from repro.errors import ConfigError, FaultInjected, ServingError
from repro.serving import (
    FaultInjector,
    FaultRule,
    RankingService,
    RankRequest,
    ServingConfig,
    format_fault_spec,
    parse_fault_spec,
)

from repro.ranking import Strategy, TrainingDataConfig

CANDIDATES = TrainingDataConfig(strategy=Strategy.TKDI, k=3)


# ----------------------------------------------------------------------
# Spec grammar
# ----------------------------------------------------------------------
def test_parse_single_rule():
    (rule,) = parse_fault_spec("score@1:error")
    assert rule.point == "score"
    assert rule.kind == "error"
    assert rule.shard == 1
    assert rule.rate == 1.0


def test_parse_delay_shorthand():
    (rule,) = parse_fault_spec("prepare:delay=20")
    assert rule.kind == "delay"
    assert rule.delay_ms == 20.0
    (longform,) = parse_fault_spec("prepare:delay:delay_ms=20")
    assert longform == rule


def test_parse_options_and_multiple_rules():
    rules = parse_fault_spec(
        "score:error:rate=0.25,count=10,after=5; engine.flush:hang")
    assert len(rules) == 2
    assert rules[0].rate == 0.25
    assert rules[0].count == 10
    assert rules[0].after == 5
    assert rules[1].point == "engine.flush"
    assert rules[1].kind == "hang"


def test_format_round_trips():
    spec = "score@1:error;prepare:delay:delay_ms=20,rate=0.5;admit:error:count=3"
    rules = parse_fault_spec(spec)
    assert parse_fault_spec(format_fault_spec(rules)) == rules


@pytest.mark.parametrize("spec", [
    "",                          # no rules at all
    ";;",                        # only empty chunks
    "score",                     # missing kind
    "nowhere:error",             # unknown injection point
    "score:explode",             # unknown kind
    "score@one:error",           # non-integer shard
    "score:error:rate=banana",   # malformed value
    "score:error:volume=11",     # unknown option
    "score:error:rate",          # option without value
    "prepare:hang=20",           # shorthand only for delay
    "prepare:delay",             # delay without delay_ms
    "score:error:rate=0",        # rate outside (0, 1]
    "score:error:count=0",       # count below 1
])
def test_malformed_specs_fail_fast(spec):
    with pytest.raises(ConfigError):
        parse_fault_spec(spec)


def test_rule_validation_direct():
    with pytest.raises(ConfigError):
        FaultRule(point="score", kind="delay")  # delay_ms missing
    with pytest.raises(ConfigError):
        FaultRule(point="score", kind="error", after=-1)
    with pytest.raises(ConfigError):
        FaultRule(point="score", kind="error", shard=-2)


# ----------------------------------------------------------------------
# Injector semantics
# ----------------------------------------------------------------------
def test_error_fault_raises_fault_injected():
    injector = FaultInjector.from_spec("score:error")
    with pytest.raises(FaultInjected) as excinfo:
        injector.fire("score", shard=2)
    # FaultInjected is a ServingError: the stack degrades it like any
    # real transient failure instead of needing a special case.
    assert isinstance(excinfo.value, ServingError)
    assert "shard 2" in str(excinfo.value)


def test_rules_only_fire_at_their_point():
    injector = FaultInjector.from_spec("score:error")
    injector.fire("prepare")
    injector.fire("admit")
    assert injector.stats()["rules"][0]["hits"] == 0
    with pytest.raises(FaultInjected):
        injector.fire("score")


def test_shard_scoping():
    injector = FaultInjector.from_spec("score@1:error")
    injector.fire("score", shard=0)  # other shard: no-op
    with pytest.raises(FaultInjected):
        injector.fire("score", shard=1)
    # A shard-less hit (unsharded service) matches every rule.
    unscoped = FaultInjector.from_spec("score@1:error")
    with pytest.raises(FaultInjected):
        unscoped.fire("score", shard=None)


def test_count_caps_total_firings():
    injector = FaultInjector.from_spec("score:error:count=2")
    for _ in range(2):
        with pytest.raises(FaultInjected):
            injector.fire("score")
    injector.fire("score")  # budget spent: silent
    stats = injector.stats()["rules"][0]
    assert stats["fired"] == 2
    assert stats["hits"] == 3


def test_after_skips_warmup_hits():
    injector = FaultInjector.from_spec("score:error:after=2")
    injector.fire("score")
    injector.fire("score")
    with pytest.raises(FaultInjected):
        injector.fire("score")


def test_rate_draws_are_deterministic_per_seed():
    def firings(seed: int) -> list[bool]:
        injector = FaultInjector.from_spec("score:error:rate=0.3", seed=seed)
        outcomes = []
        for _ in range(64):
            try:
                injector.fire("score")
                outcomes.append(False)
            except FaultInjected:
                outcomes.append(True)
        return outcomes

    first = firings(seed=7)
    assert first == firings(seed=7)  # same seed: identical chaos
    assert first != firings(seed=8)  # different seed: different draws
    assert 4 <= sum(first) <= 40     # roughly the asked-for 30%


def test_delay_fault_sleeps():
    injector = FaultInjector.from_spec("prepare:delay=30")
    began = time.perf_counter()
    injector.fire("prepare")
    assert time.perf_counter() - began >= 0.025


def test_hang_blocks_until_disarm():
    injector = FaultInjector.from_spec("engine.flush:hang")
    released = threading.Event()

    def victim():
        injector.fire("engine.flush")
        released.set()

    thread = threading.Thread(target=victim)
    thread.start()
    deadline = time.time() + 5.0
    while injector.hanging == 0 and time.time() < deadline:
        time.sleep(0.001)
    assert injector.hanging == 1
    assert not released.is_set()
    injector.disarm()
    thread.join(timeout=5.0)
    assert released.is_set()
    assert injector.hanging == 0
    assert not injector.armed  # disarm is permanent for this injector


def test_from_spec_accepts_rules_and_injectors():
    rules = parse_fault_spec("score:error")
    from_rules = FaultInjector.from_spec(rules, seed=3)
    assert from_rules.rules == rules
    assert from_rules.seed == 3
    rearmed = FaultInjector.from_spec(from_rules, seed=9)
    assert rearmed.rules == rules
    assert rearmed.seed == 9
    assert rearmed.armed


def test_stats_shape():
    injector = FaultInjector.from_spec("score@1:error;prepare:delay=5")
    stats = injector.stats()
    assert stats["armed"] is True
    assert stats["hanging"] == 0
    assert [r["point"] for r in stats["rules"]] == ["score", "prepare"]
    assert stats["rules"][0]["shard"] == 1


# ----------------------------------------------------------------------
# Service wiring
# ----------------------------------------------------------------------
def test_service_is_dormant_by_default(service):
    assert service.faults is None
    assert "faults" not in service.stats()["resilience"]


def test_arm_and_disarm_through_the_service(tiny_network, registry,
                                            make_ranker):
    registry.publish(make_ranker(tiny_network, seed=1), activate=True)
    service = RankingService(tiny_network, registry,
                             ServingConfig(candidates=CANDIDATES))
    service.arm_faults("admit:error", seed=5)
    response = service.rank(RankRequest(source=0, target=5))
    assert response.served_by == "error"
    assert service.stats()["resilience"]["faults"]["rules"][0]["fired"] == 1
    service.disarm_faults()
    assert service.faults is None
    assert service.rank(RankRequest(source=0, target=5)).ok


def test_config_fault_spec_parses_eagerly():
    with pytest.raises(ConfigError):
        ServingConfig(candidates=CANDIDATES, fault_spec="nowhere:error")
    config = ServingConfig(candidates=CANDIDATES, fault_spec="score:error")
    assert isinstance(config.fault_spec, tuple)
    assert config.fault_spec[0].point == "score"


def test_config_fault_spec_arms_at_construction(tiny_network, registry,
                                                make_ranker):
    registry.publish(make_ranker(tiny_network, seed=1), activate=True)
    service = RankingService(tiny_network, registry, ServingConfig(
        candidates=CANDIDATES, fault_spec="admit:error:count=1",
        fault_seed=11))
    assert service.faults is not None
    assert service.faults.seed == 11
    assert service.rank(RankRequest(source=0, target=5)).served_by == "error"
    assert service.rank(RankRequest(source=0, target=5)).ok
