"""LRU cache semantics: eviction order, capacity bounds, key hygiene."""

import pytest

from repro.errors import ConfigError
from repro.graph.path import Path
from repro.ranking import Strategy, TrainingDataConfig
from repro.serving import CandidateCache, LRUCache, ScoreCache


class TestLRUCache:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigError):
            LRUCache(0)

    def test_get_miss_returns_default(self):
        cache = LRUCache(2)
        assert cache.get("absent") is None
        assert cache.get("absent", default=-1) == -1
        assert cache.stats.misses == 2

    def test_capacity_is_a_hard_bound(self):
        cache = LRUCache(3)
        for i in range(50):
            cache.put(i, i * 10)
            assert len(cache) <= 3
        assert cache.stats.evictions == 47

    def test_evicts_least_recently_used(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key.upper())
        cache.get("a")          # refresh: b is now the LRU entry
        cache.put("d", "D")
        assert "b" not in cache
        assert set(cache.keys()) == {"a", "c", "d"}

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 99)       # rewrite refreshes recency too
        cache.put("c", 3)        # evicts b, not a
        assert cache.peek("a") == 99
        assert "b" not in cache

    def test_keys_ordered_lru_first(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key)
        cache.get("b")
        assert cache.keys() == ["a", "c", "b"]

    def test_stats_track_hit_rate(self):
        cache = LRUCache(4)
        cache.put("x", 1)
        cache.get("x")
        cache.get("x")
        cache.get("y")
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_clear_empties_but_keeps_stats(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_peek_does_not_touch_recency_or_stats(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.peek("a")
        cache.put("c", 3)        # a is still the LRU entry despite the peek
        assert "a" not in cache
        assert cache.stats.lookups == 0


class TestCandidateCache:
    def _paths(self, network):
        return [Path(network, [0, 1, 2]), Path(network, [0, 3, 4, 5])]

    def test_roundtrip(self, tiny_network):
        config = TrainingDataConfig(strategy=Strategy.TKDI, k=3)
        cache = CandidateCache(capacity=4)
        assert cache.lookup(0, 5, config) is None
        cache.store(0, 5, config, self._paths(tiny_network))
        cached = cache.lookup(0, 5, config)
        assert [p.vertices for p in cached] == [(0, 1, 2), (0, 3, 4, 5)]

    def test_key_separates_strategy_and_k(self, tiny_network):
        cache = CandidateCache(capacity=8)
        tkdi3 = TrainingDataConfig(strategy=Strategy.TKDI, k=3)
        cache.store(0, 5, tkdi3, self._paths(tiny_network))
        assert cache.lookup(
            0, 5, TrainingDataConfig(strategy=Strategy.TKDI, k=4)) is None
        assert cache.lookup(
            0, 5, TrainingDataConfig(strategy=Strategy.D_TKDI, k=3)) is None
        assert cache.lookup(5, 0, tkdi3) is None
        assert cache.lookup(0, 5, tkdi3) is not None

    def test_key_separates_diversity_parameters(self, tiny_network):
        cache = CandidateCache(capacity=8)
        base = TrainingDataConfig(strategy=Strategy.D_TKDI, k=3,
                                  diversity_threshold=0.8, examine_limit=100)
        cache.store(0, 5, base, self._paths(tiny_network))
        assert cache.lookup(0, 5, TrainingDataConfig(
            strategy=Strategy.D_TKDI, k=3, diversity_threshold=0.3,
            examine_limit=100)) is None
        assert cache.lookup(0, 5, TrainingDataConfig(
            strategy=Strategy.D_TKDI, k=3, diversity_threshold=0.8,
            examine_limit=50)) is None
        assert cache.lookup(0, 5, base) is not None

    def test_returns_fresh_list(self, tiny_network):
        config = TrainingDataConfig(strategy=Strategy.TKDI, k=3)
        cache = CandidateCache(capacity=4)
        cache.store(0, 5, config, self._paths(tiny_network))
        cache.lookup(0, 5, config).clear()   # caller mutation is isolated
        assert len(cache.lookup(0, 5, config)) == 2


class TestScoreCache:
    def test_keyed_by_model_version(self, tiny_network):
        path = Path(tiny_network, [0, 1, 2])
        cache = ScoreCache(capacity=4)
        cache.store("v1", path, 0.75)
        assert cache.lookup("v1", path) == pytest.approx(0.75)
        assert cache.lookup("v2", path) is None

    def test_same_vertices_share_an_entry(self, tiny_network):
        cache = ScoreCache(capacity=4)
        cache.store("v1", Path(tiny_network, [0, 1, 2]), 0.5)
        assert cache.lookup(
            "v1", Path(tiny_network, [0, 1, 2])) == pytest.approx(0.5)


class TestCandidateCacheInvalidation:
    """A network-aware cache must never serve candidates for a mutated graph."""

    def test_mutation_invalidates_entries(self, tiny_network):
        import copy

        network = copy.deepcopy(tiny_network)
        config = TrainingDataConfig(strategy=Strategy.TKDI, k=3)
        cache = CandidateCache(capacity=4, network=network)
        cache.store(0, 5, config, [Path(network, [0, 1, 2])])
        assert cache.lookup(0, 5, config) is not None
        network.add_edge(3, 1)  # a new road may change the candidate set
        assert cache.lookup(0, 5, config) is None

    def test_restored_after_fresh_store(self, tiny_network):
        import copy

        network = copy.deepcopy(tiny_network)
        config = TrainingDataConfig(strategy=Strategy.TKDI, k=3)
        cache = CandidateCache(capacity=4, network=network)
        cache.store(0, 5, config, [Path(network, [0, 1, 2])])
        network.add_edge(3, 1)
        cache.store(0, 5, config, [Path(network, [0, 1, 2])])
        assert cache.lookup(0, 5, config) is not None

    def test_networkless_cache_keeps_legacy_keys(self, tiny_network):
        config = TrainingDataConfig(strategy=Strategy.TKDI, k=3)
        cache = CandidateCache(capacity=4)
        key = CandidateCache.key_for(0, 5, config)
        assert key == (0, 5, "TkDI", 3, config.diversity_threshold,
                       config.examine_limit)
        cache.store(0, 5, config, [Path(tiny_network, [0, 1, 2])])
        assert cache.lookup(0, 5, config) is not None
