"""LRU cache semantics: eviction order, capacity bounds, key hygiene."""

import pytest

from repro.errors import ConfigError
from repro.graph.path import Path
from repro.ranking import Strategy, TrainingDataConfig
from repro.serving import CandidateCache, LRUCache, ScoreCache


class TestLRUCache:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigError):
            LRUCache(0)

    def test_get_miss_returns_default(self):
        cache = LRUCache(2)
        assert cache.get("absent") is None
        assert cache.get("absent", default=-1) == -1
        assert cache.stats.misses == 2

    def test_capacity_is_a_hard_bound(self):
        cache = LRUCache(3)
        for i in range(50):
            cache.put(i, i * 10)
            assert len(cache) <= 3
        assert cache.stats.evictions == 47

    def test_evicts_least_recently_used(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key.upper())
        cache.get("a")          # refresh: b is now the LRU entry
        cache.put("d", "D")
        assert "b" not in cache
        assert set(cache.keys()) == {"a", "c", "d"}

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 99)       # rewrite refreshes recency too
        cache.put("c", 3)        # evicts b, not a
        assert cache.peek("a") == 99
        assert "b" not in cache

    def test_keys_ordered_lru_first(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key)
        cache.get("b")
        assert cache.keys() == ["a", "c", "b"]

    def test_stats_track_hit_rate(self):
        cache = LRUCache(4)
        cache.put("x", 1)
        cache.get("x")
        cache.get("x")
        cache.get("y")
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_clear_empties_but_keeps_stats(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_peek_does_not_touch_recency_or_stats(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.peek("a")
        cache.put("c", 3)        # a is still the LRU entry despite the peek
        assert "a" not in cache
        assert cache.stats.lookups == 0


class TestCandidateCache:
    def _paths(self, network):
        return [Path(network, [0, 1, 2]), Path(network, [0, 3, 4, 5])]

    def test_roundtrip(self, tiny_network):
        config = TrainingDataConfig(strategy=Strategy.TKDI, k=3)
        cache = CandidateCache(capacity=4)
        assert cache.lookup(0, 5, config) is None
        cache.store(0, 5, config, self._paths(tiny_network))
        cached = cache.lookup(0, 5, config)
        assert [p.vertices for p in cached] == [(0, 1, 2), (0, 3, 4, 5)]

    def test_key_separates_strategy_and_k(self, tiny_network):
        cache = CandidateCache(capacity=8)
        tkdi3 = TrainingDataConfig(strategy=Strategy.TKDI, k=3)
        cache.store(0, 5, tkdi3, self._paths(tiny_network))
        assert cache.lookup(
            0, 5, TrainingDataConfig(strategy=Strategy.TKDI, k=4)) is None
        assert cache.lookup(
            0, 5, TrainingDataConfig(strategy=Strategy.D_TKDI, k=3)) is None
        assert cache.lookup(5, 0, tkdi3) is None
        assert cache.lookup(0, 5, tkdi3) is not None

    def test_key_separates_diversity_parameters(self, tiny_network):
        cache = CandidateCache(capacity=8)
        base = TrainingDataConfig(strategy=Strategy.D_TKDI, k=3,
                                  diversity_threshold=0.8, examine_limit=100)
        cache.store(0, 5, base, self._paths(tiny_network))
        assert cache.lookup(0, 5, TrainingDataConfig(
            strategy=Strategy.D_TKDI, k=3, diversity_threshold=0.3,
            examine_limit=100)) is None
        assert cache.lookup(0, 5, TrainingDataConfig(
            strategy=Strategy.D_TKDI, k=3, diversity_threshold=0.8,
            examine_limit=50)) is None
        assert cache.lookup(0, 5, base) is not None

    def test_returns_fresh_list(self, tiny_network):
        config = TrainingDataConfig(strategy=Strategy.TKDI, k=3)
        cache = CandidateCache(capacity=4)
        cache.store(0, 5, config, self._paths(tiny_network))
        cache.lookup(0, 5, config).clear()   # caller mutation is isolated
        assert len(cache.lookup(0, 5, config)) == 2


class TestScoreCache:
    def test_keyed_by_model_version(self, tiny_network):
        path = Path(tiny_network, [0, 1, 2])
        cache = ScoreCache(capacity=4)
        cache.store("v1", path, 0.75)
        assert cache.lookup("v1", path) == pytest.approx(0.75)
        assert cache.lookup("v2", path) is None

    def test_same_vertices_share_an_entry(self, tiny_network):
        cache = ScoreCache(capacity=4)
        cache.store("v1", Path(tiny_network, [0, 1, 2]), 0.5)
        assert cache.lookup(
            "v1", Path(tiny_network, [0, 1, 2])) == pytest.approx(0.5)


class TestCandidateCacheInvalidation:
    """A network-aware cache must never serve candidates for a mutated graph."""

    def test_mutation_invalidates_entries(self, tiny_network):
        import copy

        network = copy.deepcopy(tiny_network)
        config = TrainingDataConfig(strategy=Strategy.TKDI, k=3)
        cache = CandidateCache(capacity=4, network=network)
        cache.store(0, 5, config, [Path(network, [0, 1, 2])])
        assert cache.lookup(0, 5, config) is not None
        network.add_edge(3, 1)  # a new road may change the candidate set
        assert cache.lookup(0, 5, config) is None

    def test_restored_after_fresh_store(self, tiny_network):
        import copy

        network = copy.deepcopy(tiny_network)
        config = TrainingDataConfig(strategy=Strategy.TKDI, k=3)
        cache = CandidateCache(capacity=4, network=network)
        cache.store(0, 5, config, [Path(network, [0, 1, 2])])
        network.add_edge(3, 1)
        cache.store(0, 5, config, [Path(network, [0, 1, 2])])
        assert cache.lookup(0, 5, config) is not None

    def test_networkless_cache_keeps_legacy_keys(self, tiny_network):
        config = TrainingDataConfig(strategy=Strategy.TKDI, k=3)
        cache = CandidateCache(capacity=4)
        key = CandidateCache.key_for(0, 5, config)
        assert key == (0, 5, "TkDI", 3, config.diversity_threshold,
                       config.examine_limit)
        cache.store(0, 5, config, [Path(tiny_network, [0, 1, 2])])
        assert cache.lookup(0, 5, config) is not None


class _FakePath:
    """Stands in for a Path in score-cache keys (only ``vertices`` is read)."""

    __slots__ = ("vertices",)

    def __init__(self, *vertices):
        self.vertices = tuple(vertices)


class TestScoreCacheQuotas:
    def test_minority_split_survives_majority_churn(self):
        """The whole point of split quotas: a 10% variant's entries must
        not be evicted by the 90% variant's churn."""
        cache = ScoreCache(capacity=100, quotas={"big": 0.9, "small": 0.1})
        cache.store("small", _FakePath(0, 1), 0.5)
        for i in range(500):
            cache.store("big", _FakePath(i, i + 1), float(i))
        assert cache.lookup("small", _FakePath(0, 1)) == pytest.approx(0.5)

    def test_without_quotas_majority_churn_evicts(self):
        """Baseline behaviour the quotas exist to fix."""
        cache = ScoreCache(capacity=100)
        cache.store("small", _FakePath(0, 1), 0.5)
        for i in range(500):
            cache.store("big", _FakePath(i, i + 1), float(i))
        assert cache.lookup("small", _FakePath(0, 1)) is None

    def test_unquoted_version_uses_shared_segment(self):
        cache = ScoreCache(capacity=100, quotas={"a": 0.5, "b": 0.5})
        cache.store("other", _FakePath(7, 8), 1.25)
        assert cache.lookup("other", _FakePath(7, 8)) == pytest.approx(1.25)
        assert cache.lookup("a", _FakePath(7, 8)) is None

    def test_shared_segment_keeps_working_capacity(self):
        """Out-of-split pinned versions must keep a real cache, not the
        one-entry sliver that fully-allocated quota weights would leave."""
        cache = ScoreCache(capacity=800, quotas={"a": 0.5, "b": 0.5})
        for i in range(50):
            cache.store("pinned", _FakePath(i, i + 1), float(i))
        hits = sum(cache.lookup("pinned", _FakePath(i, i + 1)) is not None
                   for i in range(50))
        assert hits == 50  # capacity // SHARED_FRACTION = 100 entries
        assert cache.capacity <= 800

    def test_stats_aggregate_across_segments(self):
        cache = ScoreCache(capacity=100, quotas={"a": 0.5, "b": 0.5})
        cache.store("a", _FakePath(0, 1), 0.1)
        cache.lookup("a", _FakePath(0, 1))
        cache.lookup("b", _FakePath(0, 1))
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        quota_stats = cache.quota_stats()
        assert set(quota_stats) == {"a", "b", "(shared)"}
        assert quota_stats["a"]["hits"] == 1

    def test_lookup_many_respects_segments(self):
        cache = ScoreCache(capacity=100, quotas={"a": 0.5})
        paths = [_FakePath(0, 1), _FakePath(1, 2)]
        cache.store_many("a", [(paths[0], 0.5)])
        found = cache.lookup_many("a", paths)
        assert found == {(0, 1): 0.5}

    def test_clear_empties_every_segment(self):
        cache = ScoreCache(capacity=100, quotas={"a": 0.5})
        cache.store("a", _FakePath(0, 1), 0.5)
        cache.store("other", _FakePath(2, 3), 0.5)
        cache.clear()
        assert len(cache) == 0

    def test_invalid_quotas_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ScoreCache(capacity=10, quotas={"": 1.0})
        with pytest.raises(ConfigError):
            ScoreCache(capacity=10, quotas={"a": 0.0})
        with pytest.raises(ConfigError):
            ScoreCache(capacity=10, quotas=[("a", 1.0), ("a", 1.0)])


class TestCandidateCachePerGraphKeys:
    """The shard plane keys one cache by several routing graphs."""

    def test_network_override_separates_graphs(self, tiny_network):
        import copy

        config = TrainingDataConfig(strategy=Strategy.TKDI, k=3)
        other = copy.deepcopy(tiny_network)
        other.add_edge(3, 1)
        cache = CandidateCache(capacity=8)
        cache.store(0, 5, config, [Path(tiny_network, [0, 1, 2])],
                    network=tiny_network)
        assert cache.lookup(0, 5, config, network=tiny_network) is not None
        assert cache.lookup(0, 5, config, network=other) is None
        assert cache.lookup(0, 5, config) is None  # unkeyed lookup differs

    def test_override_wins_over_bound_network(self, tiny_network):
        import copy

        config = TrainingDataConfig(strategy=Strategy.TKDI, k=3)
        other = copy.deepcopy(tiny_network)
        other.add_edge(3, 1)
        cache = CandidateCache(capacity=8, network=tiny_network)
        cache.store(0, 5, config, [Path(tiny_network, [0, 1, 2])],
                    network=other)
        assert cache.lookup(0, 5, config) is None
        assert cache.lookup(0, 5, config, network=other) is not None
