"""The telemetry plane wired into serving: traces, canonical metric
names, kernel counters, and JSON-clean payloads end to end."""

import json

import pytest

from repro.graph import GraphPartition
from repro.obs.export import prometheus_lines
from repro.serving import (
    ModelRegistry,
    RankingService,
    RankRequest,
    ServingConfig,
    ServingEngine,
    ShardedRegistry,
)
from repro.serving.instrumentation import ShardMetrics

ALL_PAIRS = [(s, t) for s in range(6) for t in range(6) if s != t]

#: Stages the synchronous facade stamps on every traced request.
SYNC_STAGES = {"admit", "split_assign", "candidates", "flush_wait",
               "score", "assemble"}


@pytest.fixture
def traced_service(tiny_network, registry, make_ranker,
                   candidates_config) -> RankingService:
    registry.publish(make_ranker(tiny_network, seed=1), activate=True)
    return RankingService(tiny_network, registry,
                          ServingConfig(candidates=candidates_config,
                                        trace_sample=1.0,
                                        trace_exemplars=4))


class TestServiceTracing:
    def test_default_config_keeps_tracing_off(self, service):
        service.rank(RankRequest(source=0, target=5))
        assert not service.tracer.enabled
        assert "trace" not in service.stats()

    def test_traced_request_carries_all_sync_stages(self, traced_service):
        traced_service.rank(RankRequest(source=0, target=5))
        trace = traced_service.stats()["trace"]
        assert trace["finished"] == 1
        assert set(trace["stages"]) == SYNC_STAGES
        for summary in trace["stages"].values():
            assert summary["count"] == 1

    def test_candidate_span_reports_cache_hit(self, traced_service):
        request = RankRequest(source=0, target=5)
        traced_service.rank(request)
        traced_service.rank(request)
        exemplars = traced_service.tracer.exemplars.snapshot()
        hits = []
        for record in exemplars:
            for span in record["spans"]:
                if span["name"] == "candidates":
                    hits.append(span["cache_hit"])
        assert sorted(hits) == [False, True]

    def test_exemplar_buffer_bounded_by_config(self, traced_service):
        for index, (s, t) in enumerate(ALL_PAIRS):
            traced_service.rank(RankRequest(source=s, target=t,
                                            request_id=index))
        trace = traced_service.stats()["trace"]
        assert trace["finished"] == len(ALL_PAIRS)
        exemplars = trace["slow_requests"]
        assert len(exemplars) == 4  # trace_exemplars
        latencies = [record["latency_ms"] for record in exemplars]
        assert latencies == sorted(latencies, reverse=True)
        assert {"request", "served_by", "cache_hit", "spans"} \
            <= set(exemplars[0])

    def test_sampling_traces_a_fraction(self, tiny_network, registry,
                                        make_ranker, candidates_config):
        registry.publish(make_ranker(tiny_network, seed=1), activate=True)
        service = RankingService(
            tiny_network, registry,
            ServingConfig(candidates=candidates_config, trace_sample=0.5))
        for index, (s, t) in enumerate(ALL_PAIRS[:10]):
            service.rank(RankRequest(source=s, target=t, request_id=index))
        assert service.tracer.finished == 5

    def test_config_rejects_bad_trace_knobs(self, candidates_config):
        with pytest.raises(Exception):
            ServingConfig(candidates=candidates_config, trace_sample=2.0)
        with pytest.raises(Exception):
            ServingConfig(candidates=candidates_config, trace_exemplars=-1)


class TestEngineTracing:
    def test_engine_adds_queue_wait_and_rebases_offsets(
            self, tiny_network, registry, make_ranker, candidates_config):
        registry.publish(make_ranker(tiny_network, seed=1), activate=True)
        service = RankingService(
            tiny_network, registry,
            ServingConfig(candidates=candidates_config, trace_sample=1.0))
        requests = [RankRequest(source=s, target=t, request_id=i)
                    for i, (s, t) in enumerate(ALL_PAIRS)]
        with ServingEngine(service, concurrency=4,
                           flush_deadline_ms=2.0) as engine:
            engine.rank_batch(requests)
            stats = engine.stats()
        trace = stats["trace"]
        assert trace["finished"] == len(requests)
        assert "queue_wait" in trace["stages"]
        assert trace["stages"]["queue_wait"]["count"] == len(requests)
        # Offsets are rebased to submit time: every span of every
        # exemplar starts at or after the origin.
        for record in trace["slow_requests"]:
            for span in record["spans"]:
                assert span["offset_ms"] >= -1e-6


class TestCanonicalMetricNames:
    def test_service_registers_canonical_families(self, traced_service):
        traced_service.rank(RankRequest(source=0, target=5))
        exported = traced_service.metrics.export()
        assert exported["serving.requests"] == 1
        assert exported["serving.model_served"] == 1
        assert exported["serving.latency.count"] == 1
        assert exported["cache.candidate.misses"] == 1
        assert exported["scoring.batches_run"] >= 1
        assert exported["cache.score.misses"] >= 1
        assert exported["serving.stage.score.count"] == 1

    def test_kernel_counters_flow_after_serving(self, traced_service):
        # After a served request the candidate generator has built the
        # CSR kernel and the registry has compiled the fused scorer;
        # both kernels' counters surface under ``kernel.*``.
        traced_service.rank(RankRequest(source=0, target=5))
        after = traced_service.metrics.export()
        assert after["kernel.routing.yen_runs"] >= 1
        assert after["kernel.routing.heap_pops"] >= 1
        assert after["kernel.scoring.forwards"] >= 1
        assert after["kernel.scoring.paths_scored"] >= 1

    def test_kernel_views_never_build_kernels(self, tiny_network):
        # Telemetry readers must never build what serving hasn't: a
        # network no service has routed on yields no cached CSR, and an
        # uncompiled model yields no scoring profile.
        from repro.graph import RoadNetwork, csr_if_built
        from repro.nn import compiled_if_cached

        fresh = RoadNetwork(name="untouched")
        fresh.add_vertex(0, 0.0, 0.0)
        assert csr_if_built(fresh) is None

        class NeverCompiled:
            pass

        assert compiled_if_cached(NeverCompiled()) is None

    def test_score_cache_disabled_view(self, tiny_network, registry,
                                       make_ranker, candidates_config):
        registry.publish(make_ranker(tiny_network, seed=1), activate=True)
        service = RankingService(
            tiny_network, registry,
            ServingConfig(candidates=candidates_config,
                          score_cache_size=0))
        exported = service.metrics.export()
        assert exported["cache.score.disabled"] is True


class TestShardedTelemetry:
    @pytest.fixture
    def sharded_service(self, tmp_path, tiny_network, make_ranker,
                        candidates_config) -> RankingService:
        assignment = {vid: (0 if vid in {0, 1, 2} else 1)
                      for vid in tiny_network.vertex_ids()}
        partition = GraphPartition(tiny_network, assignment)
        registry = ShardedRegistry(tmp_path / "shards", tiny_network,
                                   partition, candidate_cache_size=64,
                                   score_cache_size=256)
        registry.publish(make_ranker(tiny_network, seed=1),
                         version="v0001", activate=True)
        return RankingService(
            tiny_network, registry,
            ServingConfig(candidates=candidates_config, trace_sample=1.0))

    def test_per_shard_lane_metrics_registered(self, sharded_service):
        sharded_service.rank(RankRequest(source=0, target=2))  # shard 0
        sharded_service.rank(RankRequest(source=3, target=5))  # shard 1
        exported = sharded_service.metrics.export()
        assert exported["shard.shard-00.requests"] == 1
        assert exported["shard.shard-01.requests"] == 1
        assert exported["cache.candidate.shard-00.misses"] == 1
        assert exported["cache.candidate.shard-01.misses"] == 1
        assert exported["scoring.shard-00.batches_run"] >= 1
        assert exported["cache.score.shard-00.misses"] >= 1

    def test_trace_spans_carry_shard_attribution(self, sharded_service):
        sharded_service.rank(RankRequest(source=0, target=5))  # cross
        record = sharded_service.tracer.exemplars.snapshot()[0]
        assert record["shard"] == 0
        route_spans = [span for span in record["spans"]
                       if span["name"] == "shard_route"]
        assert route_spans and route_spans[0]["cross"] is True


class TestShardMetricsOther:
    def test_unknown_outcome_counts_under_other(self):
        metrics = ShardMetrics()
        metrics.record(0, cross_shard=False, served_by="model")
        metrics.record(0, cross_shard=True, served_by="shadow")
        entry = metrics.as_dict()["shard-00"]
        assert entry["requests"] == 2
        assert entry["model"] == 1
        assert entry["other"] == 1
        assert entry["model"] + entry["fallback"] + entry["error"] \
            + entry["other"] == entry["requests"]

    def test_known_outcomes_do_not_touch_other(self):
        metrics = ShardMetrics()
        for outcome in ("model", "fallback", "error"):
            metrics.record(1, cross_shard=False, served_by=outcome)
        entry = metrics.as_dict()["shard-01"]
        assert entry["other"] == 0


class TestPayloadsAreJsonClean:
    """Satellite lint: every stats()/export() surface the serving and
    obs layers expose must survive ``json.dumps`` untouched."""

    def _assert_json_clean(self, payload):
        assert payload == json.loads(json.dumps(payload))

    def test_unsharded_service_surfaces(self, traced_service):
        traced_service.rank(RankRequest(source=0, target=5))
        self._assert_json_clean(traced_service.stats())
        self._assert_json_clean(traced_service.metrics.export())
        self._assert_json_clean(traced_service.tracer.as_dict())
        self._assert_json_clean(traced_service.counters.as_dict())
        self._assert_json_clean(traced_service.latency.as_dict())
        self._assert_json_clean(traced_service.split_metrics.as_dict())
        self._assert_json_clean(traced_service.shard_metrics.as_dict())
        for line in prometheus_lines(traced_service.metrics):
            assert isinstance(line, str)

    def test_engine_surfaces(self, tiny_network, registry, make_ranker,
                             candidates_config):
        registry.publish(make_ranker(tiny_network, seed=1), activate=True)
        service = RankingService(
            tiny_network, registry,
            ServingConfig(candidates=candidates_config, trace_sample=1.0))
        requests = [RankRequest(source=s, target=t, request_id=i)
                    for i, (s, t) in enumerate(ALL_PAIRS[:8])]
        with ServingEngine(service, concurrency=2,
                           flush_deadline_ms=2.0) as engine:
            engine.rank_batch(requests)
            self._assert_json_clean(engine.stats())
            self._assert_json_clean(engine.occupancy.as_dict())

    def test_sharded_service_surfaces(self, tmp_path, tiny_network,
                                      make_ranker, candidates_config):
        assignment = {vid: (0 if vid in {0, 1, 2} else 1)
                      for vid in tiny_network.vertex_ids()}
        partition = GraphPartition(tiny_network, assignment)
        registry = ShardedRegistry(tmp_path / "shards", tiny_network,
                                   partition, candidate_cache_size=64,
                                   score_cache_size=256)
        registry.publish(make_ranker(tiny_network, seed=1),
                         version="v0001", activate=True)
        service = RankingService(
            tiny_network, registry,
            ServingConfig(candidates=candidates_config, trace_sample=1.0))
        service.rank(RankRequest(source=0, target=5))
        self._assert_json_clean(service.stats())
        self._assert_json_clean(service.metrics.export())
