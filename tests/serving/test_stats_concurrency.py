"""Telemetry reads under fire: stats()/export() hammered from reader
threads while the engine serves a workload.

The satellite fix this guards: every tracker snapshot
(``LatencyTracker``, ``ServiceCounters``, ``OccupancyTracker``,
``ShardMetrics``) now happens under its lock, so a reader can never
observe a torn view (e.g. a count that includes a sample the total
doesn't), and the registry's export is safe to call at any moment.
"""

import json
import threading

import pytest

from repro.obs.export import prometheus_lines
from repro.serving import (
    RankingService,
    RankRequest,
    ServingConfig,
    ServingEngine,
)

ALL_PAIRS = [(s, t) for s in range(6) for t in range(6) if s != t]


@pytest.fixture
def traced_engine(tiny_network, registry, make_ranker, candidates_config):
    registry.publish(make_ranker(tiny_network, seed=1), activate=True)
    service = RankingService(
        tiny_network, registry,
        ServingConfig(candidates=candidates_config, trace_sample=1.0))
    with ServingEngine(service, concurrency=4,
                       flush_deadline_ms=2.0) as engine:
        yield engine


class TestStatsUnderConcurrency:
    def test_readers_never_crash_and_counters_stay_monotone(
            self, traced_engine):
        engine = traced_engine
        requests = [RankRequest(source=s, target=t, request_id=i)
                    for i, (s, t) in enumerate(ALL_PAIRS * 4)]
        stop = threading.Event()
        errors: list[BaseException] = []
        request_counts: list[list[int]] = []

        def hammer():
            seen: list[int] = []
            try:
                while not stop.is_set():
                    stats = engine.stats()
                    json.dumps(stats)
                    exported = engine.service.metrics.export()
                    json.dumps(exported)
                    prometheus_lines(engine.service.metrics)
                    seen.append(exported["serving.requests"])
                    # Torn tracker reads would show a latency count
                    # ahead of the request counter or a negative mean.
                    assert stats["latency"]["count"] \
                        <= stats["counters"]["requests"]
                    assert engine.service.latency.mean_ms >= 0.0
                    assert engine.occupancy.flushes >= 0
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                errors.append(exc)
            finally:
                request_counts.append(seen)

        readers = [threading.Thread(target=hammer) for _ in range(4)]
        for reader in readers:
            reader.start()
        try:
            responses = engine.rank_batch(requests)
        finally:
            stop.set()
            for reader in readers:
                reader.join(timeout=30.0)

        assert not errors, f"reader thread failed: {errors[0]!r}"
        assert all(response.ok for response in responses)
        # Each reader's view of the request counter must be monotone —
        # a counter that ever runs backwards means a torn snapshot.
        assert len(request_counts) == 4
        for seen in request_counts:
            assert seen, "reader never completed a single stats pass"
            assert all(b >= a for a, b in zip(seen, seen[1:]))
        final = engine.service.metrics.export()
        assert final["serving.requests"] == len(requests)
        assert engine.service.tracer.finished == len(requests)

    def test_export_consistent_after_the_dust_settles(self, traced_engine):
        engine = traced_engine
        requests = [RankRequest(source=s, target=t, request_id=i)
                    for i, (s, t) in enumerate(ALL_PAIRS)]
        engine.rank_batch(requests)
        stats = engine.stats()
        exported = engine.service.metrics.export()
        assert stats["counters"]["requests"] == len(requests)
        assert exported["serving.requests"] == len(requests)
        assert exported["serving.latency.count"] == len(requests)
        assert stats["latency"]["count"] == len(requests)
