"""Serving-layer fixtures: small networks with untrained (random) models.

Serving behaviour — caching, batching, hot-swap, fallback — does not
depend on the quality of the weights, so these fixtures skip training
entirely and publish randomly initialised models, which keeps the suite
fast.
"""

import pytest

from repro.core import PathRankRanker, RankerConfig, build_pathrank
from repro.ranking import Strategy, TrainingDataConfig
from repro.serving import ModelRegistry, RankingService, ServingConfig

CANDIDATES = TrainingDataConfig(strategy=Strategy.TKDI, k=3)


def _make_ranker(network, seed: int) -> PathRankRanker:
    ranker = PathRankRanker(network, RankerConfig(
        embedding_dim=8, hidden_size=8, fc_hidden=4,
        training_data=CANDIDATES))
    ranker.model = build_pathrank(
        "PR-A2", num_vertices=network.num_vertices, embedding_dim=8,
        hidden_size=8, fc_hidden=4, rng=seed)
    return ranker


@pytest.fixture(scope="session")
def candidates_config() -> TrainingDataConfig:
    return CANDIDATES


@pytest.fixture(scope="session")
def make_ranker():
    """Factory: a PathRankRanker carrying a randomly initialised model."""
    return _make_ranker


@pytest.fixture
def registry(tmp_path, tiny_network) -> ModelRegistry:
    return ModelRegistry(tmp_path / "models", tiny_network)


@pytest.fixture
def service(tiny_network, registry, make_ranker) -> RankingService:
    """A service over ``tiny_network`` with version ``v0001`` active."""
    registry.publish(make_ranker(tiny_network, seed=1), activate=True)
    return RankingService(tiny_network, registry,
                          ServingConfig(candidates=CANDIDATES))
