"""The shard plane: router policy, sharded registry, per-shard serving."""

import threading

import pytest

from repro.errors import ConfigError, ServingError
from repro.graph import (
    GraphPartition,
    grid_network,
    partition_network,
    use_routing_backend,
    voronoi_partition,
)
from repro.serving import (
    ModelRegistry,
    RankingService,
    RankRequest,
    ServingConfig,
    ServingEngine,
    ShardedRegistry,
    ShardRouter,
)
from repro.serving.sharding import split_budget

#: tiny_network split down the middle: the top row {0, 1, 2} and the
#: bottom row {3, 4, 5} (cut edges: 0-3, 1-4, 2-5 in both directions).
TOP, BOTTOM = {0, 1, 2}, {3, 4, 5}


@pytest.fixture
def tiny_partition(tiny_network) -> GraphPartition:
    assignment = {vid: (0 if vid in TOP else 1)
                  for vid in tiny_network.vertex_ids()}
    return GraphPartition(tiny_network, assignment)


@pytest.fixture
def sharded_registry(tmp_path, tiny_network, tiny_partition,
                     make_ranker) -> ShardedRegistry:
    registry = ShardedRegistry(tmp_path / "shards", tiny_network,
                               tiny_partition, candidate_cache_size=64,
                               score_cache_size=256)
    registry.publish(make_ranker(tiny_network, seed=1), version="v0001",
                     activate=True)
    return registry


@pytest.fixture
def sharded_service(tiny_network, sharded_registry,
                    candidates_config) -> RankingService:
    return RankingService(tiny_network, sharded_registry,
                          ServingConfig(candidates=candidates_config))


ALL_PAIRS = [(s, t) for s in range(6) for t in range(6) if s != t]


class TestShardRouter:
    def test_same_shard_routes_to_source_shard(self, tiny_network,
                                               tiny_partition):
        router = ShardRouter(tiny_network, tiny_partition)
        route = router.route(0, 2)
        assert route.shard == route.target_shard == 0
        assert not route.cross

    def test_exact_mode_keeps_full_network(self, tiny_network,
                                           tiny_partition):
        router = ShardRouter(tiny_network, tiny_partition)
        assert router.route(0, 2).graph is tiny_network
        assert not router.route(0, 2).local

    def test_local_mode_uses_subnetwork(self, tiny_network, tiny_partition):
        router = ShardRouter(tiny_network, tiny_partition,
                             local_candidates=True)
        route = router.route(3, 5)
        assert route.local
        assert sorted(route.graph.vertex_ids()) == sorted(BOTTOM)

    def test_cross_shard_corridor_is_stitched_union(self, tiny_network,
                                                    tiny_partition):
        router = ShardRouter(tiny_network, tiny_partition)
        route = router.route(0, 5)
        assert route.cross and route.shard == 0 and route.target_shard == 1
        assert sorted(route.graph.vertex_ids()) == [0, 1, 2, 3, 4, 5]
        assert route.graph.has_edge(1, 4)  # a cut edge survives stitching

    def test_cross_shard_fallback_policy_uses_full_network(
            self, tiny_network, tiny_partition):
        router = ShardRouter(tiny_network, tiny_partition,
                             cross_policy="fallback")
        route = router.route(0, 5)
        assert route.cross and route.graph is tiny_network and not route.local

    def test_bad_policy_rejected(self, tiny_network, tiny_partition):
        with pytest.raises(ConfigError):
            ShardRouter(tiny_network, tiny_partition, cross_policy="teleport")

    def test_stale_partition_rejected(self, tiny_network, tiny_partition):
        import copy

        mutated = copy.deepcopy(tiny_network)
        partition = GraphPartition(
            mutated, {vid: (0 if vid in TOP else 1)
                      for vid in mutated.vertex_ids()})
        mutated.add_edge(3, 1)
        with pytest.raises(ConfigError):
            ShardRouter(mutated, partition)

    def test_mid_serving_mutation_fails_routes_loudly(self, tiny_network,
                                                      tiny_partition):
        """Memoised shard graphs cannot invalidate implicitly, so a
        post-construction mutation must fail every route (and thereby
        every request) instead of serving a closed road."""
        import copy

        mutated = copy.deepcopy(tiny_network)
        partition = GraphPartition(
            mutated, {vid: (0 if vid in TOP else 1)
                      for vid in mutated.vertex_ids()})
        router = ShardRouter(mutated, partition)
        assert not router.route(0, 2).cross
        mutated.remove_edge(0, 2)
        with pytest.raises(ServingError, match="stale"):
            router.route(0, 2)


class TestSplitBudget:
    def test_proportional_with_floor(self):
        shares = split_budget(100, [60, 30, 10])
        assert shares == [60, 30, 10]
        # A dominant shard's share is trimmed so the floor of one entry
        # per remaining shard still fits inside the total.
        assert split_budget(4, [1000, 1, 1]) == [2, 1, 1]

    def test_never_exceeds_total_when_budget_covers_floors(self):
        assert sum(split_budget(10, [1, 1, 1, 1])) <= 10
        assert sum(split_budget(7, [97, 1, 1, 1])) <= 7

    def test_floor_of_one_entry_per_shard_wins_over_tiny_budgets(self):
        shares = split_budget(2, [5, 5, 5])
        assert shares == [1, 1, 1]  # sum == len(weights) > total, by design

    def test_validation(self):
        with pytest.raises(ConfigError):
            split_budget(0, [1])
        with pytest.raises(ConfigError):
            split_budget(10, [0, 0])


class TestShardedRegistry:
    def test_per_shard_roots_and_publish_all(self, sharded_registry):
        for shard_id in sharded_registry.shard_ids():
            registry = sharded_registry.registry(shard_id)
            assert registry.versions() == ["v0001"]
            assert f"shard-{shard_id:02d}" in str(registry.root)
        assert sharded_registry.active_versions() == {0: "v0001", 1: "v0001"}

    def test_activate_subset(self, tmp_path, tiny_network, tiny_partition,
                             make_ranker):
        registry = ShardedRegistry(tmp_path / "s", tiny_network,
                                   tiny_partition)
        registry.publish(make_ranker(tiny_network, seed=1), version="v0001")
        registry.activate("v0001", shards=[1])
        assert registry.active_versions() == {0: None, 1: "v0001"}

    def test_cache_budget_split_proportionally(self, tmp_path, tiny_network,
                                               tiny_partition):
        registry = ShardedRegistry(tmp_path / "s", tiny_network,
                                   tiny_partition, candidate_cache_size=100,
                                   score_cache_size=50)
        total_candidates = sum(
            registry.candidate_cache(s)._cache.capacity
            for s in registry.shard_ids())
        assert total_candidates <= 100
        assert all(registry.score_cache(s) is not None
                   for s in registry.shard_ids())

    def test_score_cache_disabled_globally(self, tmp_path, tiny_network,
                                           tiny_partition):
        registry = ShardedRegistry(tmp_path / "s", tiny_network,
                                   tiny_partition, score_cache_size=0)
        assert all(registry.score_cache(s) is None
                   for s in registry.shard_ids())

    def test_shared_mode_backs_all_shards_with_one_registry(
            self, tmp_path, tiny_network, tiny_partition, make_ranker):
        base = ModelRegistry(tmp_path / "one", tiny_network)
        base.publish(make_ranker(tiny_network, seed=1), version="v0001")
        shared = ShardedRegistry.shared(base, tiny_partition)
        assert shared.registry(0) is shared.registry(1) is base
        actives = shared.activate("v0001")
        # One load serves every shard: identical snapshot objects.
        assert actives[0] is actives[1]
        assert shared.publish(make_ranker(tiny_network, seed=2)) == "v0002"
        assert base.versions() == ["v0001", "v0002"]

    def test_unknown_shard_rejected(self, sharded_registry):
        with pytest.raises(ServingError):
            sharded_registry.registry(7)

    def test_stats_cover_every_shard(self, sharded_registry):
        stats = sharded_registry.stats()
        assert set(stats["per_shard"]) == {"shard-00", "shard-01"}
        assert stats["partition"]["num_shards"] == 2


class TestShardedService:
    def test_same_responses_as_unsharded_service(self, tiny_network,
                                                 sharded_service, tmp_path,
                                                 make_ranker,
                                                 candidates_config):
        """Exact mode: every pair — same- and cross-shard — identical."""
        registry = ModelRegistry(tmp_path / "flat", tiny_network)
        registry.publish(make_ranker(tiny_network, seed=1), version="v0001",
                         activate=True)
        flat = RankingService(tiny_network, registry,
                              ServingConfig(candidates=candidates_config))
        requests = [RankRequest(source=s, target=t, request_id=i)
                    for i, (s, t) in enumerate(ALL_PAIRS)]
        mine = sharded_service.rank_batch(requests)
        theirs = flat.rank_batch(requests)
        for a, b in zip(mine, theirs):
            assert a.served_by == b.served_by == "model"
            assert [r.path.vertices for r in a.results] == \
                [r.path.vertices for r in b.results]
            assert [r.score for r in a.results] == pytest.approx(
                [r.score for r in b.results], abs=1e-6)

    def test_responses_tagged_with_owning_shard(self, sharded_service):
        same = sharded_service.rank(RankRequest(source=3, target=5))
        cross = sharded_service.rank(RankRequest(source=4, target=0))
        assert same.shard == 1
        assert cross.shard == 1  # source shard owns cross-shard queries

    def test_scoring_batches_coalesce_per_shard(self, sharded_service):
        requests = [RankRequest(source=0, target=2),
                    RankRequest(source=3, target=5)]
        sharded_service.rank_batch(requests)
        assert sharded_service.lane(0).scorer.batches_run == 1
        assert sharded_service.lane(1).scorer.batches_run == 1

    def test_per_shard_caches_isolated(self, sharded_service):
        sharded_service.rank(RankRequest(source=0, target=2))
        sharded_service.rank(RankRequest(source=0, target=2))
        lane0 = sharded_service.lane(0)
        lane1 = sharded_service.lane(1)
        assert lane0.candidate_cache.stats.hits == 1
        assert lane1.candidate_cache.stats.lookups == 0

    def test_deactivated_shard_degrades_only_its_requests(
            self, sharded_service):
        sharded_service.sharded.deactivate(shards=[1])
        top = sharded_service.rank(RankRequest(source=0, target=2))
        bottom = sharded_service.rank(RankRequest(source=3, target=5))
        assert top.served_by == "model"
        assert bottom.served_by == "fallback"

    def test_unknown_vertex_is_request_error(self, sharded_service):
        response = sharded_service.rank(RankRequest(source=0, target=999))
        assert response.served_by == "error"

    def test_local_mode_retries_unreachable_on_full_network(
            self, tiny_network, tmp_path, make_ranker, candidates_config):
        """Shard {0, 2} only has the one-way 0->2 motorway internally, so
        a local 2->0 query must fall back to full-network enumeration —
        and thereby match the unsharded answer exactly."""
        assignment = {0: 0, 2: 0, 1: 1, 3: 1, 4: 1, 5: 1}
        partition = GraphPartition(tiny_network, assignment)
        sharded = ShardedRegistry(tmp_path / "s", tiny_network, partition)
        sharded.publish(make_ranker(tiny_network, seed=1), version="v0001",
                        activate=True)
        service = RankingService(
            tiny_network, sharded,
            ServingConfig(candidates=candidates_config,
                          local_candidates=True))
        registry = ModelRegistry(tmp_path / "flat", tiny_network)
        registry.publish(make_ranker(tiny_network, seed=1), version="v0001",
                         activate=True)
        flat = RankingService(tiny_network, registry,
                              ServingConfig(candidates=candidates_config))
        mine = service.rank(RankRequest(source=2, target=0))
        theirs = flat.rank(RankRequest(source=2, target=0))
        assert mine.served_by == "model"
        assert [r.path.vertices for r in mine.results] == \
            [r.path.vertices for r in theirs.results]

    def test_traffic_split_quotas_apply_on_shard_lanes(
            self, tiny_network, sharded_registry, candidates_config):
        """score_cache_quotas='auto' must segment per-shard score caches
        even when the ShardedRegistry was built without quotas — the
        split-isolation guarantee cannot silently disappear on the
        shard plane."""
        service = RankingService(
            tiny_network, sharded_registry,
            ServingConfig(candidates=candidates_config,
                          traffic_split={"v0001": 0.9, "v0002": 0.1}))
        for lane in service.lanes():
            assert lane.score_cache.has_quotas
        service.rank(RankRequest(source=0, target=2))
        stats = service.stats()
        assert set(stats["score_cache_splits"]) <= {"shard-00", "shard-01"}

    def test_score_cache_size_zero_disables_memoisation(
            self, tiny_network, sharded_registry, candidates_config):
        """The documented scoring-isolation knob must hold on the shard
        plane even though cache capacities live on the registry."""
        service = RankingService(
            tiny_network, sharded_registry,
            ServingConfig(candidates=candidates_config, score_cache_size=0))
        service.rank(RankRequest(source=0, target=2))
        service.rank(RankRequest(source=0, target=2))
        assert service.lane(0).score_cache is None
        assert service.lane(0).scorer.batches_run == 2  # no memoised skip
        assert sharded_registry.score_cache(0).stats.lookups == 0

    def test_warm_up_fills_per_shard_caches(self, sharded_service):
        warmed = sharded_service.warm_up(
            [RankRequest(source=0, target=2), RankRequest(source=3, target=5)])
        assert warmed == 2
        assert sharded_service.lane(0).candidate_cache.stats.misses == 1
        assert sharded_service.lane(1).candidate_cache.stats.misses == 1
        assert sharded_service.counters.requests == 0  # off the books

    def test_stats_expose_shard_plane(self, sharded_service):
        sharded_service.rank(RankRequest(source=0, target=5))
        stats = sharded_service.stats()
        assert stats["active_version"] == {"shard-00": "v0001",
                                           "shard-01": "v0001"}
        per_shard = stats["sharding"]["per_shard"]
        assert per_shard["shard-00"]["requests"]["requests"] == 1
        assert per_shard["shard-00"]["requests"]["cross_shard"] == 1

    def test_router_requires_sharded_registry(self, tiny_network, registry,
                                              tiny_partition):
        router = ShardRouter(tiny_network, tiny_partition)
        with pytest.raises(ServingError):
            RankingService(tiny_network, registry, router=router)

    def test_router_partition_must_match_registry(self, tiny_network,
                                                  sharded_registry):
        foreign = GraphPartition(
            tiny_network, {vid: (0 if vid < 2 else 1)
                           for vid in tiny_network.vertex_ids()})
        router = ShardRouter(tiny_network, foreign)
        with pytest.raises(ServingError, match="different partitions"):
            RankingService(tiny_network, sharded_registry, router=router)


class _PoisonScorer:
    """Stands in for one shard's BatchingScorer and always fails."""

    def __init__(self):
        self.batches_run = 0
        self.paths_scored = 0

    def score_many(self, model, candidate_lists, version=None):
        raise ServingError("shard scorer poisoned")

    def score_paths(self, model, paths, version=None):
        raise ServingError("shard scorer poisoned")


class TestShardedEngine:
    def test_engine_matches_sync_sharded_service(self, tiny_network,
                                                 sharded_service):
        requests = [RankRequest(source=s, target=t, request_id=i)
                    for i, (s, t) in enumerate(ALL_PAIRS)]
        expected = [sharded_service.rank(request) for request in requests]
        with ServingEngine(sharded_service, concurrency=4,
                           flush_deadline_ms=5.0) as engine:
            actual = engine.rank_batch(requests)
        for mine, theirs in zip(actual, expected):
            assert mine.served_by == theirs.served_by
            assert mine.shard == theirs.shard
            assert [r.path.vertices for r in mine.results] == \
                [r.path.vertices for r in theirs.results]

    def test_occupancy_reports_per_shard_groups(self, sharded_service):
        requests = [RankRequest(source=s, target=t, request_id=i)
                    for i, (s, t) in enumerate(ALL_PAIRS)]
        with ServingEngine(sharded_service, concurrency=4,
                           flush_deadline_ms=5.0) as engine:
            engine.rank_batch(requests)
            occupancy = engine.stats()["engine"]["occupancy"]
        assert set(occupancy["groups"]) == {"shard-00", "shard-01"}
        assert all(entry["mean_requests_per_flush"] > 0
                   for entry in occupancy["groups"].values())

    def test_close_drains_with_one_shard_poisoned_mid_flush(
            self, sharded_service):
        """close() must flush the parked batch even when one shard's
        scoring raises; degradation stays confined to that shard's
        group, and every ticket is answered."""
        sharded_service.lane(1).scorer = _PoisonScorer()
        engine = ServingEngine(sharded_service, concurrency=2,
                               flush_deadline_ms=60_000.0,
                               max_batch_size=10_000)
        requests = [RankRequest(source=0, target=2, request_id=1),
                    RankRequest(source=3, target=5, request_id=2),
                    RankRequest(source=1, target=0, request_id=3),
                    RankRequest(source=4, target=3, request_id=4)]
        tickets = [engine.submit(request) for request in requests]
        # Let the workers park the prepared states; with a one-minute
        # deadline and a huge size trigger nothing flushes until close.
        deadline = threading.Event()
        for _ in range(200):
            if all(ticket.state is not None for ticket in tickets):
                break
            deadline.wait(0.005)
        engine.close()
        responses = [ticket.wait(timeout=5.0) for ticket in tickets]
        by_shard = {0: [], 1: []}
        for response in responses:
            by_shard[response.shard].append(response)
        assert [r.served_by for r in by_shard[0]] == ["model", "model"]
        assert [r.served_by for r in by_shard[1]] == ["fallback", "fallback"]
        assert all("poisoned" in (r.error or "") for r in by_shard[1])


class TestLaneQuotaTracking:
    def test_lane_rebuilds_cache_segmented_for_a_different_split(
            self, tmp_path, tiny_network, tiny_partition, make_ranker,
            candidates_config):
        """A registry cache segmented for an *old* split must not serve
        a service configured with a new one — the lane rebuilds so the
        isolation guarantee tracks this service's split."""
        registry = ShardedRegistry(
            tmp_path / "s", tiny_network, tiny_partition,
            score_cache_quotas={"stale-v": 1.0})
        registry.publish(make_ranker(tiny_network, seed=1), version="v0001",
                         activate=True)
        service = RankingService(
            tiny_network, registry,
            ServingConfig(candidates=candidates_config,
                          traffic_split={"v0001": 0.5, "v0002": 0.5}))
        for lane in service.lanes():
            versions = [version for version, _ in lane.score_cache.quotas]
            assert versions == ["v0001", "v0002"]

    def test_lane_keeps_matching_registry_cache(self, tmp_path, tiny_network,
                                                tiny_partition, make_ranker,
                                                candidates_config):
        split = {"v0001": 0.5, "v0002": 0.5}
        registry = ShardedRegistry(tmp_path / "s", tiny_network,
                                   tiny_partition, score_cache_quotas=split)
        registry.publish(make_ranker(tiny_network, seed=1), version="v0001",
                         activate=True)
        service = RankingService(
            tiny_network, registry,
            ServingConfig(candidates=candidates_config, traffic_split=split))
        for lane in service.lanes():
            assert lane.score_cache is registry.score_cache(lane.shard_id)


class TestAccountingEdges:
    def test_routing_failure_not_charged_to_shard_zero(self, sharded_service):
        sharded_service.rank(RankRequest(source=0, target=999))
        assert sharded_service.shard_metrics.requests_for(0) == 0
        sharded_service.rank(RankRequest(source=0, target=2))
        assert sharded_service.shard_metrics.requests_for(0) == 1

    def test_budget_below_shard_count_rejected(self, tmp_path, tiny_network,
                                               tiny_partition):
        with pytest.raises(ConfigError, match="even one entry"):
            ShardedRegistry(tmp_path / "a", tiny_network, tiny_partition,
                            candidate_cache_size=1)
        with pytest.raises(ConfigError, match="even one entry"):
            ShardedRegistry(tmp_path / "b", tiny_network, tiny_partition,
                            score_cache_size=1)
        ShardedRegistry(tmp_path / "c", tiny_network, tiny_partition,
                        score_cache_size=0)  # disabled stays allowed


class TestCorridorCertification:
    def test_certified_route_keeps_corridor(self, tiny_network,
                                            tiny_partition):
        router = ShardRouter(tiny_network, tiny_partition,
                             certify_corridors=True)
        route = router.route(0, 5)
        # tiny's two shards union to the whole network, so no exterior
        # gateway exists and the certificate proves the corridor exact.
        assert route.cross
        assert router.route_counters == {
            "same_shard": 0, "corridor_routes": 1, "certified": 1,
            "widened": 0, "unreachable": 0}
        router.route(0, 2)
        assert router.route_counters["same_shard"] == 1

    def test_widened_route_falls_back_to_full_network(self):
        """The forced-widening path: a 3-shard grid has cross-shard
        pairs whose optimum may legitimately leave the corridor; those
        must be served from the full network, uncertified pairs from
        the corridor, and the counters must record both verdicts."""
        network = grid_network(12, 12, seed=19)
        partition = partition_network(network, 3, method="bfs", rng=2)
        router = ShardRouter(network, partition, certify_corridors=True)
        widened = certified = None
        for source in sorted(partition.shard(0).nodes):
            for target in sorted(partition.shard(1).nodes):
                before = dict(router.route_counters)
                route = router.route(source, target)
                if router.route_counters["widened"] > before["widened"]:
                    widened = widened or route
                elif router.route_counters["certified"] > \
                        before["certified"]:
                    certified = certified or route
                if widened is not None and certified is not None:
                    break
            else:
                continue
            break
        assert widened is not None, "sweep never widened a route"
        assert certified is not None, "sweep never certified a route"
        # Widened: exactness beats locality — the full graph serves,
        # and ``local`` is False so no-path needs no second retry.
        assert widened.graph is network
        assert not widened.local
        # Certified: the small corridor stays, provably exact.
        assert certified.local
        assert certified.graph is partition.corridor(0, 1)

    def test_service_stats_surface_routing_verdicts(
            self, tiny_network, sharded_registry, candidates_config):
        service = RankingService(
            tiny_network, sharded_registry,
            ServingConfig(candidates=candidates_config,
                          certify_corridors=True))
        service.rank(RankRequest(source=0, target=5))
        service.rank(RankRequest(source=0, target=2))
        routing = service.stats()["sharding"]["routing"]
        assert routing["certify_corridors"] is True
        assert routing["corridor_routes"] == 1
        assert routing["certified"] == 1
        assert routing["same_shard"] == 1

    def test_rankings_identical_across_csr_and_ch_backends(
            self, tiny_network, tmp_path, make_ranker, candidates_config):
        """The acceptance bar for the CH lane in serving: element-wise
        identical rankings — same candidate paths, same scores — as the
        CSR lane, for every pair."""
        responses = {}
        for backend in ("csr", "ch"):
            registry = ModelRegistry(tmp_path / backend, tiny_network)
            registry.publish(make_ranker(tiny_network, seed=1),
                             version="v0001", activate=True)
            service = RankingService(
                tiny_network, registry,
                ServingConfig(candidates=candidates_config))
            with use_routing_backend(backend):
                responses[backend] = service.rank_batch(
                    [RankRequest(source=s, target=t, request_id=i)
                     for i, (s, t) in enumerate(ALL_PAIRS)])
        for a, b in zip(responses["csr"], responses["ch"]):
            assert a.served_by == b.served_by == "model"
            assert [r.path.vertices for r in a.results] == \
                [r.path.vertices for r in b.results]
            assert [r.score for r in a.results] == \
                [r.score for r in b.results]
