"""Model registry: versioning, atomic publish, hot-swap under load."""

import threading

import numpy as np
import pytest

from repro.errors import ServingError
from repro.serving import ModelRegistry, RankingService, RankRequest, ServingConfig


class TestVersioning:
    def test_empty_registry(self, registry):
        assert registry.versions() == []
        assert registry.snapshot() is None
        with pytest.raises(ServingError):
            registry.require_snapshot()

    def test_publish_assigns_sequential_versions(self, tiny_network, registry, make_ranker):
        assert registry.publish(make_ranker(tiny_network, 1)) == "v0001"
        assert registry.publish(make_ranker(tiny_network, 2)) == "v0002"
        assert registry.versions() == ["v0001", "v0002"]

    def test_publish_explicit_version(self, tiny_network, registry, make_ranker):
        registry.publish(make_ranker(tiny_network, 1), version="golden")
        assert registry.has_version("golden")
        loaded = registry.load("golden")
        assert loaded.num_vertices == tiny_network.num_vertices

    def test_duplicate_version_rejected(self, tiny_network, registry, make_ranker):
        registry.publish(make_ranker(tiny_network, 1), version="dup")
        with pytest.raises(ServingError, match="already exists"):
            registry.publish(make_ranker(tiny_network, 2), version="dup")

    def test_invalid_version_names_rejected(self, registry):
        for bad in ("", "../escape", ".hidden"):
            with pytest.raises(ServingError):
                registry.load(bad)

    def test_unknown_version_lists_published(self, tiny_network, registry, make_ranker):
        registry.publish(make_ranker(tiny_network, 1), version="v0001")
        with pytest.raises(ServingError, match="v0001"):
            registry.load("v9999")

    def test_publish_leaves_no_temp_files(self, tiny_network, registry, make_ranker):
        registry.publish(make_ranker(tiny_network, 1))
        leftovers = [p for p in registry.root.iterdir()
                     if p.name.startswith(".publish")]
        assert leftovers == []


class TestActivation:
    def test_activate_returns_increasing_generations(self, tiny_network, registry, make_ranker):
        registry.publish(make_ranker(tiny_network, 1), version="a")
        registry.publish(make_ranker(tiny_network, 2), version="b")
        first = registry.activate("a")
        second = registry.activate("b")
        third = registry.activate("a")
        assert (first.generation, second.generation, third.generation) == (1, 2, 3)
        assert registry.snapshot() is third

    def test_snapshot_is_stable_across_swap(self, tiny_network, registry, make_ranker):
        registry.publish(make_ranker(tiny_network, 1), version="a")
        registry.publish(make_ranker(tiny_network, 2), version="b")
        registry.activate("a")
        held = registry.snapshot()
        registry.activate("b")
        # The old snapshot object is untouched by the swap.
        assert held.version == "a"
        assert registry.snapshot().version == "b"

    def test_metadata_travels_with_activation(self, tiny_network, registry, make_ranker):
        registry.publish(make_ranker(tiny_network, 1), version="a")
        active = registry.activate("a")
        assert active.metadata["num_vertices"] == tiny_network.num_vertices

    def test_deactivate(self, tiny_network, registry, make_ranker):
        registry.publish(make_ranker(tiny_network, 1), version="a")
        registry.activate("a")
        registry.deactivate()
        assert registry.snapshot() is None


class TestHotSwapAtomicity:
    def test_interleaved_requests_never_mix_versions(self, tiny_network, tmp_path,
                                                    make_ranker, candidates_config):
        """Every response must be fully served by exactly one version."""
        registry = ModelRegistry(tmp_path / "models", tiny_network)
        rankers = {"v1": make_ranker(tiny_network, 1),
                   "v2": make_ranker(tiny_network, 2)}
        for version, ranker in rankers.items():
            registry.publish(ranker, version=version)
        registry.activate("v1")
        service = RankingService(tiny_network, registry,
                                 ServingConfig(candidates=candidates_config))

        # Ground truth: each version's scores for the query's candidates.
        request = RankRequest(source=0, target=5)
        paths = service._candidates(service.admit(request))[0]
        expected = {
            version: np.sort(ranker.model.score_paths(paths))[::-1]
            for version, ranker in rankers.items()
        }

        failures: list[str] = []
        stop = threading.Event()

        def swapper():
            for i in range(40):
                service.activate("v2" if i % 2 == 0 else "v1")
            stop.set()

        def requester():
            while not stop.is_set():
                response = service.rank(request)
                if not response.ok or response.served_by != "model":
                    failures.append(f"unexpected outcome: {response}")
                    return
                got = np.array([r.score for r in response.results])
                want = expected[response.model_version]
                if not np.allclose(got, want, atol=1e-12):
                    failures.append(
                        f"scores from a different version than claimed "
                        f"({response.model_version}): {got} vs {want}"
                    )
                    return

        threads = [threading.Thread(target=requester) for _ in range(3)]
        threads.append(threading.Thread(target=swapper))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures, failures[0]
        assert service.counters.failed == 0
        assert registry.snapshot().generation == 41  # fixture activation + 40


class TestFusedKernelAcrossSwaps:
    def test_hot_swap_never_serves_stale_compiled_scores(
            self, tiny_network, registry, make_ranker):
        """After each activation the fused backend must score with the
        *new* weights — a stale ``CompiledPathRank`` snapshot would
        reproduce the previous version's scores exactly."""
        from repro.graph.ksp import yen_k_shortest_paths

        registry.publish(make_ranker(tiny_network, seed=1), version="v1")
        registry.publish(make_ranker(tiny_network, seed=2), version="v2")
        paths = yen_k_shortest_paths(tiny_network, 0, 5, 3)

        scores = {}
        for version in ("v1", "v2"):
            active = registry.activate(version)
            fused = active.model.score_paths(paths, backend="fused")
            module = active.model.score_paths(paths, backend="module")
            np.testing.assert_allclose(fused, module, atol=1e-6, rtol=0)
            scores[version] = fused
        assert not np.allclose(scores["v1"], scores["v2"])

    def test_in_place_reload_rebuilds_kernel(self, tiny_network, registry,
                                             make_ranker):
        """Loading new weights into an existing model object (the
        in-place variant of a swap) must invalidate its kernel."""
        from repro.graph.ksp import yen_k_shortest_paths
        from repro.nn.fused import compiled_for

        model = make_ranker(tiny_network, seed=1).model
        paths = yen_k_shortest_paths(tiny_network, 0, 5, 3)
        model.score_paths(paths)  # populate the compiled cache
        stale = compiled_for(model)
        model.load_state_dict(make_ranker(tiny_network, seed=2)
                              .model.state_dict())
        fused = model.score_paths(paths, backend="fused")
        module = model.score_paths(paths, backend="module")
        assert compiled_for(model) is not stale
        np.testing.assert_allclose(fused, module, atol=1e-6, rtol=0)


class TestPinAccounting:
    """Balanced pin/release residency (the PR-5 accounting fix)."""

    def _two_versions(self, network, registry, make_ranker):
        registry.publish(make_ranker(network, seed=1), version="v1")
        registry.publish(make_ranker(network, seed=2), version="v2")

    def test_pin_of_active_version_reuses_live_snapshot(
            self, tiny_network, registry, make_ranker):
        """Pinning the active version must not load a duplicate model
        (previously two copies of the same weights — and two compiled
        kernels — ended up resident)."""
        self._two_versions(tiny_network, registry, make_ranker)
        active = registry.activate("v1")
        assert registry.pin("v1") is active
        registry.release("v1")

    def test_release_of_last_pin_frees_superseded_model(
            self, tiny_network, registry, make_ranker):
        """activate -> pin -> activate -> release: the superseded
        version's model (and with it its compiled fused kernel, held in
        a weakly-keyed cache) must become garbage at the last release."""
        import gc
        import weakref

        self._two_versions(tiny_network, registry, make_ranker)
        registry.activate("v1")
        pinned = registry.pin("v1")
        model_ref = weakref.ref(pinned.model)
        registry.activate("v2")  # v1 superseded, but still pinned
        assert registry.resolve("v1").model is model_ref()
        registry.release("v1")
        del pinned
        gc.collect()
        assert model_ref() is None, \
            "superseded model survived its last release"

    def test_pins_are_counted(self, tiny_network, registry, make_ranker):
        self._two_versions(tiny_network, registry, make_ranker)
        registry.activate("v1")
        registry.pin("v2")
        registry.pin("v2")
        registry.release("v2")
        assert registry.pinned_versions() == {"v2": 1}  # still resident
        assert registry.resolve("v2").version == "v2"
        registry.release("v2")
        assert registry.pinned_versions() == {}

    def test_unbalanced_release_rejected(self, tiny_network, registry,
                                         make_ranker):
        self._two_versions(tiny_network, registry, make_ranker)
        with pytest.raises(ServingError):
            registry.release("v1")
        registry.activate("v1")
        registry.resolve("v2")  # implicit residency holds no pins
        with pytest.raises(ServingError):
            registry.release("v2")

    def test_resolve_keeps_residency_without_pins(self, tiny_network,
                                                  registry, make_ranker):
        """Split targets stay resident across requests (no reload per
        request) yet never accumulate pin counts."""
        self._two_versions(tiny_network, registry, make_ranker)
        registry.activate("v1")
        first = registry.resolve("v2")
        assert registry.resolve("v2") is first
        assert registry.pinned_versions() == {"v2": 0}
        registry.unpin("v2")  # the operator hammer still evicts
        assert registry.pinned_versions() == {}

    def test_activate_refresh_preserves_pin_count(self, tiny_network,
                                                  registry, make_ranker):
        self._two_versions(tiny_network, registry, make_ranker)
        registry.activate("v1")
        registry.pin("v2")
        registry.activate("v2")  # refreshes the resident snapshot
        assert registry.pinned_versions() == {"v2": 1}
        assert registry.resolve("v2") is registry.snapshot()
        registry.release("v2")
        assert registry.pinned_versions() == {}


class TestLifecycleListeners:
    def test_activate_and_deactivate_notify_in_order(self, tiny_network,
                                                     registry, make_ranker):
        events = []
        registry.subscribe(lambda event, version: events.append(
            (event, version)))
        registry.publish(make_ranker(tiny_network, 1), version="v1")
        registry.activate("v1")
        registry.deactivate()
        registry.deactivate()  # already clear: no second notification
        assert events == [("activate", "v1"), ("deactivate", "v1")]

    def test_unsubscribe_stops_notifications(self, tiny_network, registry,
                                             make_ranker):
        events = []
        listener = lambda event, version: events.append(event)  # noqa: E731
        registry.subscribe(listener)
        registry.unsubscribe(listener)
        registry.unsubscribe(listener)  # idempotent
        registry.publish(make_ranker(tiny_network, 1), activate=True)
        assert events == []

    def test_sick_listener_cannot_break_a_swap(self, tiny_network, registry,
                                               make_ranker):
        def broken(event, version):
            raise RuntimeError("observer crashed")

        seen = []
        registry.subscribe(broken)
        registry.subscribe(lambda event, version: seen.append(version))
        registry.publish(make_ranker(tiny_network, 1), version="v1")
        registry.activate("v1")  # must not raise
        assert seen == ["v1"]
