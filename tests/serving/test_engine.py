"""ServingEngine: coalescing, parity, deadlines, warm-up, A/B routing."""

import threading
import time

import pytest

from repro.core.model import PathRank
from repro.errors import ServingError
from repro.serving import (
    ModelRegistry,
    RankingService,
    RankRequest,
    ServingConfig,
    ServingEngine,
)

ALL_PAIRS = [(s, t) for s in range(6) for t in range(6) if s != t]


@pytest.fixture
def engine(service) -> ServingEngine:
    with ServingEngine(service, concurrency=4, flush_deadline_ms=5.0) as eng:
        yield eng


class TestFrontDoor:
    def test_rank_matches_sync_service(self, tiny_network, registry,
                                       make_ranker, candidates_config,
                                       engine, service):
        # A second, independent service gives the synchronous reference.
        sync = RankingService(service.network, service.registry,
                              service.config)
        request = RankRequest(source=0, target=5)
        mine = engine.rank(request)
        theirs = sync.rank(request)
        assert mine.served_by == theirs.served_by == "model"
        assert [r.path.vertices for r in mine.results] == \
            [r.path.vertices for r in theirs.results]
        assert [r.score for r in mine.results] == \
            pytest.approx([r.score for r in theirs.results], abs=1e-6)

    def test_rank_batch_is_element_wise_identical_to_sync(self, service,
                                                          engine):
        requests = [RankRequest(source=s, target=t, request_id=i)
                    for i, (s, t) in enumerate(ALL_PAIRS)]
        sync = RankingService(service.network, service.registry,
                              service.config)
        expected = [sync.rank(request) for request in requests]
        actual = engine.rank_batch(requests)
        assert len(actual) == len(expected)
        for mine, theirs in zip(actual, expected):
            assert mine.request == theirs.request
            assert mine.served_by == theirs.served_by
            assert mine.model_version == theirs.model_version
            assert [r.path.vertices for r in mine.results] == \
                [r.path.vertices for r in theirs.results]
            assert [r.position for r in mine.results] == \
                [r.position for r in theirs.results]
            assert [r.score for r in mine.results] == \
                pytest.approx([r.score for r in theirs.results], abs=1e-6)

    def test_concurrent_submitters_coalesce(self, service):
        """Requests submitted by many threads share scoring flushes."""
        with ServingEngine(service, concurrency=4,
                           flush_deadline_ms=20.0,
                           max_batch_size=512) as engine:
            barrier = threading.Barrier(8)
            responses = {}

            def client(index: int) -> None:
                source, target = ALL_PAIRS[index % len(ALL_PAIRS)]
                barrier.wait()
                responses[index] = engine.rank(
                    RankRequest(source=source, target=target,
                                request_id=index))

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            occupancy = engine.occupancy.as_dict()
        assert len(responses) == 8
        assert all(r.served_by == "model" for r in responses.values())
        # Eight concurrent requests must not have cost eight flushes.
        assert occupancy["mean_requests_per_flush"] > 1.0

    def test_responses_in_request_order(self, engine):
        requests = [RankRequest(source=s, target=t, request_id=i)
                    for i, (s, t) in enumerate(ALL_PAIRS[:10])]
        responses = engine.rank_batch(requests)
        assert [r.request.request_id for r in responses] == \
            [r.request_id for r in requests]

    def test_error_requests_degrade_individually(self, engine):
        """An unreachable pair fails; its batch neighbours still serve."""
        requests = [RankRequest(source=0, target=5),
                    RankRequest(source=0, target=999),  # no such vertex
                    RankRequest(source=3, target=2)]
        responses = engine.rank_batch(requests)
        assert responses[0].served_by == "model"
        assert responses[1].served_by == "error"
        assert responses[2].served_by == "model"


class TestDeadlineFlush:
    def test_deadline_flushes_partial_batch(self, service):
        """A lone request must be answered within ~the flush deadline,
        not wait for max_batch_size paths to accumulate."""
        with ServingEngine(service, concurrency=2, flush_deadline_ms=10.0,
                           max_batch_size=10_000) as engine:
            started = time.perf_counter()
            response = engine.rank(RankRequest(source=0, target=5))
            elapsed_ms = (time.perf_counter() - started) * 1000.0
        assert response.served_by == "model"
        # Generous ceiling: deadline (10ms) + scheduling + scoring.
        assert elapsed_ms < 2000.0
        assert elapsed_ms >= 5.0, (
            "a lone sub-threshold request should have waited for the "
            f"flush deadline, answered in {elapsed_ms:.2f} ms"
        )

    def test_size_trigger_fires_before_deadline(self, service):
        """Enough pending paths flush immediately, not at the deadline."""
        with ServingEngine(service, concurrency=4,
                           flush_deadline_ms=10_000.0,
                           max_batch_size=2) as engine:
            requests = [RankRequest(source=s, target=t)
                        for s, t in ALL_PAIRS[:6]]
            started = time.perf_counter()
            responses = engine.rank_batch(requests)
            elapsed = time.perf_counter() - started
        assert all(r.served_by == "model" for r in responses)
        assert elapsed < 5.0  # nowhere near the 10s deadline

    def test_zero_deadline_serves_immediately(self, service):
        with ServingEngine(service, concurrency=2,
                           flush_deadline_ms=0.0) as engine:
            response = engine.rank(RankRequest(source=0, target=5))
        assert response.served_by == "model"


class TestLifecycle:
    def test_close_refuses_new_requests(self, service):
        engine = ServingEngine(service, concurrency=2)
        engine.close()
        with pytest.raises(ServingError, match="closed"):
            engine.submit(RankRequest(source=0, target=5))

    def test_close_answers_in_flight_requests(self, service):
        engine = ServingEngine(service, concurrency=2,
                               flush_deadline_ms=50.0,
                               max_batch_size=10_000)
        tickets = [engine.submit(RankRequest(source=s, target=t))
                   for s, t in ALL_PAIRS[:5]]
        engine.close()
        for ticket in tickets:
            assert ticket.wait(timeout=1.0).served_by == "model"

    def test_unstarted_engine_rejects_submit(self, service):
        engine = ServingEngine(service, concurrency=2, start=False)
        with pytest.raises(ServingError, match="not started"):
            engine.submit(RankRequest(source=0, target=5))
        engine.start()
        assert engine.rank(RankRequest(source=0, target=5)).ok
        engine.close()

    def test_context_manager_and_ready(self, service):
        engine = ServingEngine(service, concurrency=2, start=False)
        assert not engine.ready
        with engine:
            assert engine.ready
            assert engine.rank(RankRequest(source=0, target=5)).ok
        assert not engine.ready

    def test_invalid_knobs_rejected(self, service):
        with pytest.raises(ServingError):
            ServingEngine(service, concurrency=0, start=False)
        with pytest.raises(ServingError):
            ServingEngine(service, flush_deadline_ms=-1.0, start=False)
        with pytest.raises(ServingError):
            ServingEngine(service, max_batch_size=0, start=False)


class TestRobustness:
    def test_hostile_request_gets_error_response_not_deadlock(self, service):
        """A request whose parameters blow up admission (k=0 fails config
        validation) must come back as an error response — and must not
        kill the worker that claimed it."""
        with ServingEngine(service, concurrency=2,
                           flush_deadline_ms=2.0) as engine:
            bad = engine.rank(RankRequest(source=0, target=5, k=0),
                              timeout=5.0)
            good = engine.rank(RankRequest(source=0, target=5), timeout=5.0)
        assert bad.served_by == "error"
        assert "k must be" in bad.error
        assert good.served_by == "model"

    def test_non_repro_scoring_error_degrades_not_hangs(self, service,
                                                        monkeypatch):
        """An unexpected exception type from the forward pass must not
        kill the scoring thread; requests degrade to the fallback."""
        def explode(self, paths, **kwargs):
            raise RuntimeError("BLAS exploded")

        monkeypatch.setattr(PathRank, "score_paths", explode)
        with ServingEngine(service, concurrency=2,
                           flush_deadline_ms=2.0) as engine:
            response = engine.rank(RankRequest(source=0, target=5),
                                   timeout=5.0)
        assert response.served_by == "fallback"
        assert "BLAS exploded" in response.error

    def test_latency_excludes_waiter_drain_delay(self, service):
        """A ticket collected long after scoring finished must report
        the pipeline's latency, not the collection delay."""
        with ServingEngine(service, concurrency=2,
                           flush_deadline_ms=0.0) as engine:
            ticket = engine.submit(RankRequest(source=0, target=5))
            deadline = time.perf_counter() + 5.0
            while not ticket.done and time.perf_counter() < deadline:
                time.sleep(0.001)
            assert ticket.done
            time.sleep(0.3)  # the waiter dawdles
            response = ticket.wait(timeout=1.0)
        assert response.served_by == "model"
        assert response.latency_ms < 250.0


class TestWarmup:
    def test_warmup_fills_caches_before_ready(self, service):
        mix = [RankRequest(source=0, target=5), RankRequest(source=3, target=2),
               RankRequest(source=0, target=5)]  # duplicate: warmed once
        with ServingEngine(service, concurrency=2, warmup=mix) as engine:
            assert engine.warmed_up == 2
            # Warm-up must not count as served traffic...
            assert service.counters.requests == 0
            # ...but the replayed queries now hit the candidate cache.
            response = engine.rank(RankRequest(source=0, target=5))
        assert response.candidate_cache_hit

    def test_warmup_stats_reported(self, service):
        with ServingEngine(service, concurrency=2,
                           warmup=[RankRequest(source=0, target=5)]) as engine:
            assert engine.stats()["engine"]["warmed_up"] == 1


class TestFailureIsolation:
    def test_scoring_error_mid_batch_degrades_only_poisoned_request(
            self, service, monkeypatch):
        """A path that breaks the forward pass must not take down the
        other requests coalesced into the same flush."""
        real_score_paths = PathRank.score_paths
        poison = RankRequest(source=0, target=5)
        poison_key = None

        # Identify the poison request's candidate paths up front.
        sync = RankingService(service.network, service.registry,
                              service.config)
        poison_state = sync.admit(poison)
        sync.prepare(poison_state)
        poison_key = {p.vertices for p in poison_state.paths}

        def explode_on_poison(self, paths, **kwargs):
            if any(p.vertices in poison_key for p in paths):
                raise ServingError("poisoned batch")
            return real_score_paths(self, paths, **kwargs)

        monkeypatch.setattr(PathRank, "score_paths", explode_on_poison)
        with ServingEngine(service, concurrency=4, flush_deadline_ms=50.0,
                           max_batch_size=10_000) as engine:
            requests = [poison,
                        RankRequest(source=3, target=2),
                        RankRequest(source=1, target=5)]
            responses = engine.rank_batch(requests)
        assert responses[0].served_by == "fallback"
        assert "poisoned batch" in responses[0].error
        assert responses[1].served_by == "model"
        assert responses[2].served_by == "model"
