"""Pipeline stages, A/B traffic splitting, pinning, and warm-up."""

import pytest

from repro.core.model import PathRank
from repro.errors import ServingError, TrainingError
from repro.serving import (
    RankingService,
    RankRequest,
    ServingConfig,
    assign_split,
    normalise_split,
)


@pytest.fixture
def ab_service(tiny_network, registry, make_ranker,
               candidates_config) -> RankingService:
    """Two published versions behind a 70/30 traffic split."""
    registry.publish(make_ranker(tiny_network, seed=1), version="v0001",
                     activate=True)
    registry.publish(make_ranker(tiny_network, seed=2), version="v0002")
    return RankingService(
        tiny_network, registry,
        ServingConfig(candidates=candidates_config,
                      traffic_split={"v0001": 0.7, "v0002": 0.3}))


class TestSplitAssignment:
    def test_weights_normalised(self):
        split = normalise_split({"a": 3.0, "b": 1.0})
        assert split == (("a", 0.75), ("b", 0.25))

    def test_invalid_splits_rejected(self):
        with pytest.raises(ServingError):
            normalise_split({})
        with pytest.raises(ServingError):
            normalise_split({"a": 0.0})
        with pytest.raises(ServingError):
            normalise_split([("a", 1.0), ("a", 2.0)])
        with pytest.raises(ServingError):
            normalise_split([("", 1.0)])

    def test_assignment_deterministic(self):
        split = normalise_split({"a": 0.5, "b": 0.5})
        request = RankRequest(source=1, target=2, request_id=42)
        assert assign_split(request, split) == assign_split(request, split)

    def test_assignment_proportions(self):
        split = normalise_split({"a": 0.75, "b": 0.25})
        draws = [assign_split(RankRequest(source=0, target=1, request_id=i),
                              split)
                 for i in range(2000)]
        fraction_b = draws.count("b") / len(draws)
        assert 0.2 < fraction_b < 0.3

    def test_single_version_always_wins(self):
        split = normalise_split({"only": 1.0})
        for i in range(50):
            request = RankRequest(source=i, target=i + 1, request_id=i)
            assert assign_split(request, split) == "only"


class TestABServing:
    def test_both_versions_serve(self, ab_service):
        versions = {
            ab_service.rank(RankRequest(source=0, target=5,
                                        request_id=i)).model_version
            for i in range(40)
        }
        assert versions == {"v0001", "v0002"}

    def test_split_is_sticky_per_request_identity(self, ab_service):
        request = RankRequest(source=0, target=5, request_id=7)
        first = ab_service.rank(request)
        second = ab_service.rank(request)
        assert first.model_version == second.model_version

    def test_split_metrics_separate_variants(self, ab_service):
        for i in range(30):
            ab_service.rank(RankRequest(source=0, target=5, request_id=i))
        splits = ab_service.stats()["splits"]
        assert set(splits) == {"v0001", "v0002"}
        total = sum(s["counters"]["requests"] for s in splits.values())
        assert total == 30
        assert all(s["counters"]["model_served"] > 0 for s in splits.values())
        assert all(s["latency"]["count"] == s["counters"]["requests"]
                   for s in splits.values())

    def test_split_survives_hot_swap_of_active(self, ab_service, tiny_network,
                                               registry, make_ranker):
        """Activating a new version must not break the split's pinned
        targets: v0001/v0002 keep serving their share."""
        registry.publish(make_ranker(tiny_network, seed=3), version="v0003")
        ab_service.activate("v0003")
        versions = {
            ab_service.rank(RankRequest(source=0, target=5,
                                        request_id=i)).model_version
            for i in range(40)
        }
        assert versions == {"v0001", "v0002"}


class TestVersionPinning:
    def test_pinned_request_overrides_split_and_active(self, ab_service):
        response = ab_service.rank(
            RankRequest(source=0, target=5, model_version="v0002"))
        assert response.served_by == "model"
        assert response.model_version == "v0002"

    def test_pinned_scores_differ_between_versions(self, ab_service):
        a = ab_service.rank(RankRequest(source=0, target=5,
                                        model_version="v0001"))
        b = ab_service.rank(RankRequest(source=0, target=5,
                                        model_version="v0002"))
        assert [r.score for r in a.results] != [r.score for r in b.results]

    def test_unpublished_pin_is_an_error_response(self, ab_service):
        response = ab_service.rank(
            RankRequest(source=0, target=5, model_version="v9999"))
        assert response.served_by == "error"
        assert "v9999" in response.error

    def test_registry_resolve_matches_active_fast_path(self, ab_service):
        registry = ab_service.registry
        assert registry.resolve("v0001") is registry.snapshot()
        assert registry.resolve(None) is registry.snapshot()
        assert registry.resolve("v0002").version == "v0002"

    def test_unpin_releases_resident_snapshot(self, ab_service):
        registry = ab_service.registry
        first = registry.resolve("v0002")
        registry.unpin("v0002")
        second = registry.resolve("v0002")
        assert first is not second
        assert first.version == second.version == "v0002"

    def test_activate_does_not_grow_pinned_set(self, ab_service,
                                               tiny_network, registry,
                                               make_ranker):
        """Hot-swaps must not pin every superseded model into memory."""
        registry.publish(make_ranker(tiny_network, seed=4), version="v0004")
        registry.publish(make_ranker(tiny_network, seed=5), version="v0005")
        before = set(registry._pinned)
        ab_service.activate("v0004")
        ab_service.activate("v0005")
        # Only versions something actually resolved/pinned stay resident.
        assert set(registry._pinned) == before

    def test_hostile_k_is_error_response_not_exception(self, ab_service):
        response = ab_service.rank(RankRequest(source=0, target=5, k=0))
        assert response.served_by == "error"
        assert "k must be" in response.error


class TestStages:
    def test_admit_prepare_score_assemble_roundtrip(self, service):
        request = RankRequest(source=0, target=5)
        state = service.admit(request)
        assert state.error is None and state.active is not None
        service.prepare(state)
        assert state.paths and not state.cache_hit
        service.score_states([state])
        assert state.scores is not None
        assert len(state.scores) == len(state.paths)
        response = service.assemble(state)
        assert response.served_by == "model"
        assert state.response is response
        assert service.counters.requests == 1

    def test_assemble_without_recording(self, service):
        state = service.admit(RankRequest(source=0, target=5))
        service.prepare(state)
        service.score_states([state])
        service.assemble(state, record=False)
        assert service.counters.requests == 0
        assert service.latency.count == 0

    def test_score_states_groups_by_snapshot(self, ab_service):
        states = [
            ab_service.admit(RankRequest(source=0, target=5,
                                         model_version="v0001")),
            ab_service.admit(RankRequest(source=0, target=5,
                                         model_version="v0002")),
        ]
        for state in states:
            ab_service.prepare(state)
        ab_service.score_states(states)
        assert states[0].scores != states[1].scores


class TestWarmup:
    def test_warm_up_replays_unique_requests(self, service):
        mix = [RankRequest(source=0, target=5),
               RankRequest(source=3, target=2),
               RankRequest(source=0, target=5)]
        assert service.warm_up(mix) == 2
        assert service.counters.requests == 0
        assert service.latency.count == 0
        response = service.rank(RankRequest(source=0, target=5))
        assert response.candidate_cache_hit

    def test_warm_up_primes_score_cache(self, service):
        service.warm_up([RankRequest(source=0, target=5)])
        before = service.scorer.cache_hits
        service.rank(RankRequest(source=0, target=5))
        assert service.scorer.cache_hits > before


class TestPerRequestDegradation:
    def test_poisoned_request_in_sync_batch_degrades_alone(self, service,
                                                           monkeypatch):
        real_score_paths = PathRank.score_paths
        probe = service.admit(RankRequest(source=0, target=5))
        service.prepare(probe)
        poison_keys = {p.vertices for p in probe.paths}
        service.candidate_cache.clear()

        def explode_on_poison(self, paths, **kwargs):
            if any(p.vertices in poison_keys for p in paths):
                raise TrainingError("bad weights for this path")
            return real_score_paths(self, paths, **kwargs)

        monkeypatch.setattr(PathRank, "score_paths", explode_on_poison)
        responses = service.rank_batch([
            RankRequest(source=0, target=5),
            RankRequest(source=3, target=2),
            RankRequest(source=1, target=5),
        ])
        assert responses[0].served_by == "fallback"
        assert "bad weights" in responses[0].error
        assert responses[1].served_by == "model"
        assert responses[2].served_by == "model"

    def test_score_cache_disabled_by_zero_size(self, tiny_network, registry,
                                               make_ranker,
                                               candidates_config):
        registry.publish(make_ranker(tiny_network, seed=1), activate=True)
        service = RankingService(
            tiny_network, registry,
            ServingConfig(candidates=candidates_config, score_cache_size=0))
        assert service.score_cache is None
        service.rank(RankRequest(source=0, target=5))
        service.rank(RankRequest(source=0, target=5))
        assert service.scorer.cache_hits == 0
        assert service.stats()["score_cache"] == {"disabled": True}
