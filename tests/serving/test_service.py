"""RankingService facade: ranking, caching, fallback, instrumentation."""

import pytest

from repro.core.model import PathRank
from repro.errors import ServingError, TrainingError
from repro.graph import RoadCategory, RoadNetwork, shortest_path
from repro.serving import ModelRegistry, RankingService, RankRequest, ServingConfig


@pytest.fixture
def empty_service(tiny_network, registry, candidates_config) -> RankingService:
    """A service whose registry has no active model."""
    return RankingService(tiny_network, registry,
                          ServingConfig(candidates=candidates_config))


class TestModelServing:
    def test_results_sorted_best_first(self, service):
        response = service.rank(RankRequest(source=0, target=5))
        assert response.served_by == "model"
        assert response.model_version == "v0001"
        scores = [r.score for r in response.results]
        assert scores == sorted(scores, reverse=True)
        assert [r.position for r in response.results] == \
            list(range(1, len(scores) + 1))
        assert response.top.path.source == 0
        assert response.top.path.target == 5

    def test_repeat_query_hits_candidate_cache(self, service):
        cold = service.rank(RankRequest(source=0, target=5))
        warm = service.rank(RankRequest(source=0, target=5))
        assert not cold.candidate_cache_hit
        assert warm.candidate_cache_hit
        assert [r.path.vertices for r in warm.results] == \
            [r.path.vertices for r in cold.results]

    def test_per_request_k_override(self, service):
        narrow = service.rank(RankRequest(source=0, target=5, k=1))
        wide = service.rank(RankRequest(source=0, target=5, k=3))
        assert len(narrow.results) == 1
        assert len(wide.results) > 1
        # Different k values must not collide in the candidate cache.
        assert not wide.candidate_cache_hit

    def test_batch_coalesces_forward_passes(self, service):
        requests = [RankRequest(source=0, target=5),
                    RankRequest(source=3, target=2),
                    RankRequest(source=1, target=5)]
        responses = service.rank_batch(requests)
        assert all(r.served_by == "model" for r in responses)
        assert service.scorer.batches_run == 1

    def test_counters_and_latency_recorded(self, service):
        service.rank(RankRequest(source=0, target=5))
        service.rank(RankRequest(source=3, target=2))
        stats = service.stats()
        assert stats["counters"]["requests"] == 2
        assert stats["counters"]["model_served"] == 2
        assert stats["latency"]["count"] == 2
        assert stats["latency"]["p95_ms"] >= 0.0
        assert stats["active_version"] == "v0001"

    def test_empty_batch(self, service):
        assert service.rank_batch([]) == []


class TestFallback:
    def test_no_model_serves_shortest_path(self, tiny_network, empty_service):
        response = empty_service.rank(RankRequest(source=0, target=5))
        assert response.served_by == "fallback"
        assert response.ok
        assert response.model_version is None
        expected = shortest_path(tiny_network, 0, 5)
        assert response.top.path.vertices == expected.vertices
        assert empty_service.counters.fallback_served == 1

    def test_no_model_skips_candidate_generation(self, empty_service):
        empty_service.rank(RankRequest(source=0, target=5))
        assert empty_service.candidate_cache.stats.lookups == 0

    def test_scoring_failure_degrades_to_fallback(self, service, monkeypatch):
        def explode(self, paths):
            raise TrainingError("weights corrupted")

        monkeypatch.setattr(PathRank, "score_paths", explode)
        response = service.rank(RankRequest(source=0, target=5))
        assert response.served_by == "fallback"
        assert response.ok
        assert "weights corrupted" in response.error

    def test_fallback_disabled_fails_the_request(self, tiny_network, registry,
                                                candidates_config):
        service = RankingService(
            tiny_network, registry,
            ServingConfig(candidates=candidates_config, fallback_to_shortest=False))
        response = service.rank(RankRequest(source=0, target=5))
        assert response.served_by == "error"
        assert not response.ok
        assert response.results == ()
        assert service.counters.failed == 1

    def test_unreachable_target_is_an_error_response(self, tmp_path,
                                                    candidates_config):
        network = RoadNetwork(name="disconnected")
        for vid, x in enumerate((0.0, 100.0, 500.0)):
            network.add_vertex(vid, x, 0.0)
        network.add_two_way(0, 1, length=100.0, category=RoadCategory.LOCAL)
        # vertex 2 is isolated: no path can reach it.
        registry = ModelRegistry(tmp_path / "models", network)
        service = RankingService(network, registry,
                                 ServingConfig(candidates=candidates_config))
        response = service.rank(RankRequest(source=0, target=2))
        assert response.served_by == "error"
        assert "no path" in response.error.lower()


class TestLifecycle:
    def test_activate_unknown_version_raises(self, service):
        with pytest.raises(ServingError, match="v9999"):
            service.activate("v9999")

    def test_hot_swap_counted_and_visible(self, tiny_network, registry, service,
                                         make_ranker):
        registry.publish(make_ranker(tiny_network, seed=9), version="v0002")
        service.activate("v0002")
        assert service.counters.hot_swaps == 1
        response = service.rank(RankRequest(source=0, target=5))
        assert response.model_version == "v0002"

    def test_swap_invalidates_scores_not_candidates(self, tiny_network,
                                                    registry, service,
                                                    make_ranker):
        before = service.rank(RankRequest(source=0, target=5))
        registry.publish(make_ranker(tiny_network, seed=9), version="v0002")
        service.activate("v0002")
        after = service.rank(RankRequest(source=0, target=5))
        # Candidates come from the cache, but scores are recomputed.
        assert after.candidate_cache_hit
        assert [r.path.vertices for r in after.results] != [] and \
            {r.path.vertices for r in after.results} == \
            {r.path.vertices for r in before.results}
        assert [r.score for r in after.results] != \
            [r.score for r in before.results]
