"""The resilience plane: deadlines, shedding, breakers, retries.

Unit tests drive :class:`CircuitBreaker` and :func:`retry_backoff`
directly (with a fake clock, so lifecycle transitions are exact);
integration tests push requests through a real :class:`RankingService`
and :class:`ServingEngine` with faults armed and assert the structured
degradation the robustness bench pins at scale.
"""

import threading
import time

import pytest

from repro.errors import DeadlineExceeded, ServingError
from repro.serving import (
    CircuitBreaker,
    RankingService,
    RankRequest,
    ResilienceConfig,
    ServingConfig,
    ServingEngine,
    retry_backoff,
)

from repro.ranking import Strategy, TrainingDataConfig

CANDIDATES = TrainingDataConfig(strategy=Strategy.TKDI, k=3)


class FakeClock:
    """Monotonic clock under test control (seconds)."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance_ms(self, ms: float) -> None:
        self.now += ms / 1000.0


def _breaker(clock, **overrides) -> CircuitBreaker:
    knobs = dict(breaker_window=4, breaker_min_samples=2,
                 breaker_failure_rate=0.5, breaker_cooldown_ms=100.0,
                 breaker_half_open_probes=2)
    knobs.update(overrides)
    return CircuitBreaker(ResilienceConfig(**knobs), clock=clock)


# ----------------------------------------------------------------------
# ResilienceConfig validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kwargs", [
    {"deadline_ms": 0.0},
    {"deadline_ms": -5.0},
    {"max_queue": -1},
    {"shed_policy": "panic"},
    {"retry_after_ms": -1.0},
    {"breaker_window": 0},
    {"breaker_min_samples": 0},
    {"breaker_min_samples": 9, "breaker_window": 8},
    {"breaker_failure_rate": 0.0},
    {"breaker_failure_rate": 1.5},
    {"breaker_latency_ms": 0.0},
    {"breaker_cooldown_ms": -1.0},
    {"breaker_half_open_probes": 0},
    {"retry_attempts": -1},
    {"retry_base_ms": -1.0},
    {"retry_jitter": 1.5},
])
def test_resilience_config_rejects_bad_knobs(kwargs):
    with pytest.raises(ValueError):
        ResilienceConfig(**kwargs)


def test_default_config_is_dormant_but_breaker_armed():
    config = ResilienceConfig()
    assert config.deadline_ms is None
    assert config.max_queue == 0
    assert config.active  # breakers default on (they are free until a failure)
    assert not ResilienceConfig(breaker_enabled=False,
                                retry_attempts=0).active


# ----------------------------------------------------------------------
# Circuit breaker lifecycle
# ----------------------------------------------------------------------
def test_breaker_trips_at_failure_rate():
    clock = FakeClock()
    breaker = _breaker(clock)
    assert breaker.state == "closed"
    breaker.record_failure()
    assert breaker.state == "closed"  # below min_samples
    breaker.record_failure()
    assert breaker.state == "open"
    assert breaker.trips == 1
    assert not breaker.allow()
    assert breaker.rejections == 1


def test_breaker_does_not_trip_below_rate():
    clock = FakeClock()
    breaker = _breaker(clock)
    for _ in range(3):
        breaker.record_success()
    breaker.record_failure()  # 1/4 < 0.5
    assert breaker.state == "closed"
    assert breaker.trips == 0


def test_breaker_half_opens_after_cooldown_and_recovers():
    clock = FakeClock()
    breaker = _breaker(clock)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == "open"
    clock.advance_ms(99.0)
    assert breaker.state == "open"
    clock.advance_ms(2.0)
    assert breaker.state == "half_open"
    # Probe slots are claimed by allow(); extras are refused.
    assert breaker.allow()
    assert breaker.allow()
    assert not breaker.allow()
    breaker.record_success()
    assert breaker.state == "half_open"  # one of two probes landed
    breaker.record_success()
    assert breaker.state == "closed"
    assert breaker.recoveries == 1
    # Recovery cleared the window: old failures cannot double-count.
    assert breaker.as_dict()["window_size"] == 0


def test_breaker_failed_probe_reopens():
    clock = FakeClock()
    breaker = _breaker(clock)
    breaker.record_failure()
    breaker.record_failure()
    clock.advance_ms(101.0)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == "open"
    assert breaker.trips == 2
    assert breaker.recoveries == 0
    # The re-trip restarted the cooldown from the fake clock's now.
    clock.advance_ms(101.0)
    assert breaker.state == "half_open"


def test_breaker_ignores_stragglers_while_open():
    clock = FakeClock()
    breaker = _breaker(clock)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_failure()  # straggler from a pre-trip flush
    snapshot = breaker.as_dict()
    assert snapshot["state"] == "open"
    assert snapshot["window_size"] == 0
    assert breaker.trips == 1


def test_breaker_latency_slo_counts_slow_success_as_failure():
    clock = FakeClock()
    breaker = _breaker(clock, breaker_latency_ms=10.0)
    breaker.record_success(latency_ms=50.0)
    breaker.record_success(latency_ms=50.0)
    assert breaker.state == "open"
    # Without the SLO the same latencies are plain successes.
    plain = _breaker(clock)
    plain.record_success(latency_ms=50.0)
    plain.record_success(latency_ms=50.0)
    assert plain.state == "closed"


# ----------------------------------------------------------------------
# Retry backoff
# ----------------------------------------------------------------------
def test_retry_backoff_is_deterministic_and_bounded():
    config = ResilienceConfig(retry_base_ms=4.0, retry_max_ms=10.0,
                              retry_jitter=0.5)
    first = retry_backoff(1, config, key=("lane", 3))
    assert first == retry_backoff(1, config, key=("lane", 3))
    assert first != retry_backoff(1, config, key=("lane", 4))
    # Jitter only shrinks the delay: [1 - jitter, 1] x base schedule.
    assert 0.002 <= first <= 0.004
    assert retry_backoff(5, config, key="x") <= 0.010  # capped at max_ms


def test_retry_backoff_doubles_without_jitter():
    config = ResilienceConfig(retry_base_ms=2.0, retry_max_ms=100.0,
                              retry_jitter=0.0)
    assert retry_backoff(1, config) == pytest.approx(0.002)
    assert retry_backoff(2, config) == pytest.approx(0.004)
    assert retry_backoff(3, config) == pytest.approx(0.008)
    with pytest.raises(ValueError):
        retry_backoff(0, config)


# ----------------------------------------------------------------------
# Admission validation (satellite b)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("request_", [
    RankRequest(source=99, target=5),
    RankRequest(source=0, target=-3),
    RankRequest(source="0", target=5),
    RankRequest(source=0, target=5, k=0),
    RankRequest(source=0, target=5, deadline_ms=0.0),
])
def test_malformed_requests_get_structured_errors(service, request_):
    response = service.rank(request_)
    assert response.served_by == "error"
    assert response.error_code == "invalid_request"
    assert response.results == ()
    assert service.res_counters.invalid_requests >= 1


def test_valid_request_is_untouched_by_validation(service):
    response = service.rank(RankRequest(source=0, target=5, k=2))
    assert response.ok
    assert response.error_code is None


# ----------------------------------------------------------------------
# Deadlines through the pipeline
# ----------------------------------------------------------------------
def _deadline_service(tiny_network, registry, make_ranker, fault_spec,
                      **res_overrides) -> RankingService:
    registry.publish(make_ranker(tiny_network, seed=1), activate=True)
    knobs = dict(deadline_ms=20.0)
    knobs.update(res_overrides)
    service = RankingService(tiny_network, registry, ServingConfig(
        candidates=CANDIDATES, resilience=ResilienceConfig(**knobs)))
    if fault_spec is not None:
        service.arm_faults(fault_spec)
    return service


@pytest.mark.parametrize("stage_spec", [
    # Each stage boundary checks the budget the *previous* stage burnt:
    # an admit-stage stall expires at prepare, a prepare stall at
    # score_states, a score stall at assemble.
    "admit:delay=40", "prepare:delay=40", "score:delay=40"])
def test_deadline_expires_at_each_stage(tiny_network, registry, make_ranker,
                                        stage_spec):
    service = _deadline_service(tiny_network, registry, make_ranker,
                                stage_spec)
    response = service.rank(RankRequest(source=0, target=5))
    assert response.served_by == "error"
    assert response.error_code == "deadline_exceeded"
    assert response.retry_after_ms is not None
    assert service.res_counters.deadline_exceeded == 1


def test_per_request_deadline_overrides_config(tiny_network, registry,
                                               make_ranker):
    service = _deadline_service(tiny_network, registry, make_ranker,
                                "score:delay=40", deadline_ms=120_000.0)
    relaxed = service.rank(RankRequest(source=0, target=5))
    assert relaxed.ok  # the config-level budget easily absorbs 40 ms
    tight = service.rank(RankRequest(source=0, target=5, deadline_ms=15.0))
    assert tight.error_code == "deadline_exceeded"


def test_no_deadline_means_no_expiry(tiny_network, registry, make_ranker):
    service = _deadline_service(tiny_network, registry, make_ranker,
                                "prepare:delay=30", deadline_ms=None)
    response = service.rank(RankRequest(source=0, target=5))
    assert response.ok
    assert service.res_counters.deadline_exceeded == 0


# ----------------------------------------------------------------------
# Retries rescue transient scoring failures
# ----------------------------------------------------------------------
def test_single_shot_score_fault_is_retried_away(tiny_network, registry,
                                                 make_ranker):
    registry.publish(make_ranker(tiny_network, seed=1), activate=True)
    service = RankingService(tiny_network, registry, ServingConfig(
        candidates=CANDIDATES,
        resilience=ResilienceConfig(retry_attempts=2, retry_base_ms=1.0)))
    service.arm_faults("score:error:count=1")
    response = service.rank(RankRequest(source=0, target=5))
    assert response.served_by == "model"
    counters = service.res_counters
    assert counters.retries == 1
    assert counters.retry_successes == 1
    # The breaker saw the eventual success, not the transient failure.
    assert service.breakers[0].state == "closed"


def test_persistent_score_fault_falls_back_and_feeds_breaker(
        tiny_network, registry, make_ranker):
    registry.publish(make_ranker(tiny_network, seed=1), activate=True)
    service = RankingService(tiny_network, registry, ServingConfig(
        candidates=CANDIDATES,
        resilience=ResilienceConfig(
            retry_attempts=1, retry_base_ms=1.0,
            breaker_window=4, breaker_min_samples=2,
            breaker_cooldown_ms=60_000.0)))
    service.arm_faults("score:error")
    for _ in range(2):
        response = service.rank(RankRequest(source=0, target=5))
        # The group fails terminally, the per-member individual rescue
        # still answers, and the breaker records the group failure.
        assert response.ok
    breaker = service.breakers[0]
    assert breaker.state == "open"
    assert breaker.trips == 1
    # Once open, requests degrade to the fallback without touching the
    # scorer (or the armed fault).
    degraded = service.rank(RankRequest(source=0, target=5))
    assert degraded.served_by == "fallback"
    assert degraded.error_code == "breaker_open"
    assert service.res_counters.breaker_degraded >= 1
    stats = service.stats()["resilience"]
    assert stats["breakers"]["shard-00"]["state"] == "open"


def test_breaker_recovers_through_half_open_probes(tiny_network, registry,
                                                   make_ranker):
    registry.publish(make_ranker(tiny_network, seed=1), activate=True)
    service = RankingService(tiny_network, registry, ServingConfig(
        candidates=CANDIDATES,
        resilience=ResilienceConfig(
            retry_attempts=0, breaker_window=4, breaker_min_samples=2,
            breaker_cooldown_ms=10.0, breaker_half_open_probes=1)))
    service.arm_faults("score:error")
    for _ in range(2):
        service.rank(RankRequest(source=0, target=5))
    assert service.breakers[0].state == "open"
    service.disarm_faults()
    time.sleep(0.02)  # past the cooldown: next group is the probe
    response = service.rank(RankRequest(source=0, target=5))
    assert response.served_by == "model"
    breaker = service.breakers[0]
    assert breaker.state == "closed"
    assert breaker.recoveries == 1


# ----------------------------------------------------------------------
# Engine: shedding, result(timeout), close()
# ----------------------------------------------------------------------
def _engine_service(tiny_network, registry, make_ranker,
                    **res_overrides) -> RankingService:
    registry.publish(make_ranker(tiny_network, seed=1), activate=True)
    return RankingService(tiny_network, registry, ServingConfig(
        candidates=CANDIDATES,
        resilience=ResilienceConfig(**res_overrides)))


def _flood(engine, service, stall_spec, count):
    """Arm a stall so the worker pool saturates, then flood submits."""
    service.arm_faults(stall_spec)
    requests = [RankRequest(source=0, target=5, request_id=i)
                for i in range(count)]
    return [engine.submit(request) for request in requests]


def test_overflowing_queue_sheds_with_reject(tiny_network, registry,
                                             make_ranker):
    service = _engine_service(tiny_network, registry, make_ranker,
                              max_queue=1, shed_policy="reject",
                              retry_after_ms=25.0)
    with ServingEngine(service, concurrency=1,
                       flush_deadline_ms=1.0) as engine:
        tickets = _flood(engine, service, "prepare:delay=50", 16)
        responses = [ticket.wait(timeout=10.0) for ticket in tickets]
        service.disarm_faults()
    shed = [r for r in responses if r.error_code == "shed"]
    assert shed, "a 16-deep flood against max_queue=1 never shed"
    assert all(r.served_by == "error" for r in shed)
    assert all(r.retry_after_ms == 25.0 for r in shed)
    assert service.res_counters.shed_rejected == len(shed)
    answered = [r for r in responses if r.error_code != "shed"]
    assert all(r.ok for r in answered)


def test_overflowing_queue_degrades_to_fallback(tiny_network, registry,
                                                make_ranker):
    service = _engine_service(tiny_network, registry, make_ranker,
                              max_queue=1, shed_policy="degrade")
    with ServingEngine(service, concurrency=1,
                       flush_deadline_ms=1.0) as engine:
        tickets = _flood(engine, service, "prepare:delay=50", 16)
        responses = [ticket.wait(timeout=10.0) for ticket in tickets]
        service.disarm_faults()
    degraded = [r for r in responses if r.error_code == "shed"]
    assert degraded, "a 16-deep flood against max_queue=1 never shed"
    # Degrade answers with the shortest-path fallback, not an error.
    assert all(r.served_by == "fallback" for r in degraded)
    assert all(r.results for r in degraded)
    assert service.res_counters.shed_degraded == len(degraded)


def test_unbounded_queue_never_sheds(tiny_network, registry, make_ranker):
    service = _engine_service(tiny_network, registry, make_ranker,
                              max_queue=0)
    with ServingEngine(service, concurrency=2,
                       flush_deadline_ms=1.0) as engine:
        responses = engine.rank_batch(
            [RankRequest(source=0, target=5, request_id=i)
             for i in range(32)])
    assert all(r.ok for r in responses)
    assert service.res_counters.shed_rejected == 0
    assert service.res_counters.shed_degraded == 0


def test_ticket_result_raises_structured_deadline(tiny_network, registry,
                                                  make_ranker):
    """Satellite (a): ``result()`` derives its wait from the request
    deadline and raises DeadlineExceeded instead of blocking forever."""
    service = _engine_service(tiny_network, registry, make_ranker,
                              retry_after_ms=33.0)
    engine = ServingEngine(service, concurrency=1, flush_deadline_ms=1.0)
    try:
        service.arm_faults("prepare:hang")
        ticket = engine.submit(RankRequest(source=0, target=5,
                                           deadline_ms=30.0))
        began = time.perf_counter()
        with pytest.raises(DeadlineExceeded) as excinfo:
            ticket.result()
        waited = time.perf_counter() - began
        assert excinfo.value.retry_after_ms == 33.0
        assert waited < 5.0  # budget + grace, nowhere near a hang
    finally:
        service.disarm_faults()  # release the hung worker
        engine.close()


def test_ticket_result_with_explicit_timeout(tiny_network, registry,
                                             make_ranker):
    service = _engine_service(tiny_network, registry, make_ranker)
    engine = ServingEngine(service, concurrency=1, flush_deadline_ms=1.0)
    try:
        service.arm_faults("prepare:hang")
        ticket = engine.submit(RankRequest(source=0, target=5))
        with pytest.raises(DeadlineExceeded):
            ticket.result(timeout=0.05)
    finally:
        service.disarm_faults()
        engine.close()


def test_close_fails_outstanding_tickets(tiny_network, registry, make_ranker):
    """Satellite (a): close() answers every in-flight ticket with a
    structured ``engine_closed`` error — no waiter blocks forever."""
    service = _engine_service(tiny_network, registry, make_ranker)
    engine = ServingEngine(service, concurrency=1, flush_deadline_ms=1.0)
    service.arm_faults("prepare:hang")
    tickets = [engine.submit(RankRequest(source=0, target=5, request_id=i))
               for i in range(4)]
    time.sleep(0.05)  # let the lone worker wedge on the hang

    closer = threading.Thread(target=engine.close, kwargs={"timeout": 0.2})
    closer.start()
    try:
        responses = [ticket.wait(timeout=10.0) for ticket in tickets]
    finally:
        service.disarm_faults()
        closer.join(timeout=10.0)
    failed = [r for r in responses if r.error_code == "engine_closed"]
    assert failed, "close() abandoned in-flight tickets"
    assert all(r.served_by == "error" for r in failed)
    with pytest.raises(ServingError):
        engine.submit(RankRequest(source=0, target=5))


# ----------------------------------------------------------------------
# Dormant parity (satellite c): armed-but-idle plane changes nothing
# ----------------------------------------------------------------------
def test_dormant_resilience_keeps_exact_parity(tiny_network, registry,
                                               make_ranker):
    registry.publish(make_ranker(tiny_network, seed=1), activate=True)
    plain = RankingService(tiny_network, registry,
                           ServingConfig(candidates=CANDIDATES))
    armed = RankingService(tiny_network, registry, ServingConfig(
        candidates=CANDIDATES,
        resilience=ResilienceConfig(deadline_ms=120_000.0, max_queue=4096,
                                    retry_attempts=2)))
    requests = [RankRequest(source=s, target=t)
                for s in range(6) for t in range(6) if s != t]
    baseline = plain.rank_batch(requests)
    for front_door in (armed.rank_batch,):
        for mine, theirs in zip(front_door(requests), baseline):
            assert mine.served_by == theirs.served_by
            assert mine.model_version == theirs.model_version
            assert [p.path.vertices for p in mine.results] \
                == [p.path.vertices for p in theirs.results]
            assert [p.score for p in mine.results] \
                == pytest.approx([p.score for p in theirs.results])
    counters = armed.res_counters.as_dict()
    assert all(v == 0 for v in counters.values())
    with ServingEngine(armed, concurrency=4,
                       flush_deadline_ms=2.0) as engine:
        concurrent = engine.rank_batch(requests)
    for mine, theirs in zip(concurrent, baseline):
        assert [p.path.vertices for p in mine.results] \
            == [p.path.vertices for p in theirs.results]
