"""Thread-safety of the serving shared state under parallel traffic."""

import threading

import pytest

from repro.serving import (
    CandidateCache,
    LRUCache,
    ModelRegistry,
    RankingService,
    RankRequest,
    ScoreCache,
    ServingConfig,
)

PAIRS = [(s, t) for s in range(6) for t in range(6) if s != t]


def _hammer(threads: int, work) -> list:
    """Run ``work(index)`` on many threads; re-raise the first failure."""
    errors: list[BaseException] = []
    results: list = []
    lock = threading.Lock()

    def runner(index: int) -> None:
        try:
            result = work(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            with lock:
                errors.append(exc)
        else:
            with lock:
                results.append(result)

    pool = [threading.Thread(target=runner, args=(i,))
            for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    if errors:
        raise errors[0]
    return results


class TestLRUCacheUnderContention:
    def test_parallel_get_put_stays_bounded(self):
        cache = LRUCache(capacity=32)

        def work(index: int) -> None:
            for i in range(200):
                cache.put((index, i % 50), i)
                cache.get((index, (i + 7) % 50))

        _hammer(8, work)
        assert len(cache) <= 32
        stats = cache.stats
        assert stats.hits + stats.misses == 8 * 200

    def test_parallel_get_many_put_many(self):
        cache = LRUCache(capacity=64)

        def work(index: int) -> None:
            keys = [(index % 4, i) for i in range(20)]
            cache.put_many([(key, index) for key in keys])
            found = cache.get_many(keys)
            # Everything this thread just wrote fits in capacity, but a
            # sibling may have evicted some of it; whatever is found
            # must carry a value some thread actually wrote.
            assert all(isinstance(v, int) for v in found.values())

        _hammer(8, work)
        assert len(cache) <= 64


class TestServingCachesUnderParallelRank:
    def test_parallel_rank_calls_consistent(self, tiny_network, registry,
                                            make_ranker, candidates_config):
        registry.publish(make_ranker(tiny_network, seed=1), activate=True)
        service = RankingService(tiny_network, registry,
                                 ServingConfig(candidates=candidates_config))
        reference = {
            pair: service.rank(RankRequest(source=pair[0], target=pair[1]))
            for pair in PAIRS
        }

        def work(index: int):
            pair = PAIRS[index % len(PAIRS)]
            response = service.rank(RankRequest(source=pair[0],
                                                target=pair[1]))
            assert response.served_by == "model"
            assert [r.path.vertices for r in response.results] == \
                [r.path.vertices for r in reference[pair].results]
            assert [r.score for r in response.results] == pytest.approx(
                [r.score for r in reference[pair].results], abs=1e-6)
            return pair

        results = _hammer(16, work)
        assert len(results) == 16
        assert service.counters.requests == len(PAIRS) + 16
        assert service.counters.failed == 0

    def test_candidate_cache_thread_safety(self, tiny_network,
                                           candidates_config):
        cache = CandidateCache(capacity=8, network=tiny_network)
        from repro.core.ranker import generate_candidates

        def work(index: int) -> None:
            source, target = PAIRS[index % 6]
            for _ in range(50):
                cached = cache.lookup(source, target, candidates_config)
                if cached is None:
                    paths = generate_candidates(tiny_network, source, target,
                                                candidates_config)
                    cache.store(source, target, candidates_config, paths)
                else:
                    assert all(p.source == source for p in cached)

        _hammer(8, work)
        assert len(cache) <= 8

    def test_score_cache_thread_safety(self, tiny_network):
        from repro.graph import Path

        cache = ScoreCache(capacity=128)
        paths = [Path(tiny_network, [0, 1, 2]), Path(tiny_network, [0, 1, 4]),
                 Path(tiny_network, [3, 4, 5])]

        def work(index: int) -> None:
            version = f"v{index % 2}"
            for i in range(100):
                path = paths[i % len(paths)]
                cache.store(version, path, float(index))
                value = cache.lookup(version, path)
                assert value is None or isinstance(value, float)
                found = cache.lookup_many(version, paths)
                assert set(found) <= {p.vertices for p in paths}

        _hammer(8, work)


class TestRegistryUnderParallelResolve:
    def test_parallel_pin_loads_one_snapshot_per_version(self, tiny_network,
                                                         tmp_path,
                                                         make_ranker):
        registry = ModelRegistry(tmp_path / "models", tiny_network)
        registry.publish(make_ranker(tiny_network, seed=1), version="v0001")
        registry.publish(make_ranker(tiny_network, seed=2), version="v0002")

        def work(index: int):
            version = "v0001" if index % 2 == 0 else "v0002"
            return registry.resolve(version)

        snapshots = _hammer(16, work)
        by_version: dict[str, set[int]] = {}
        for snapshot in snapshots:
            by_version.setdefault(snapshot.version, set()).add(id(snapshot))
        # Every caller of one version got the same resident snapshot.
        assert all(len(ids) == 1 for ids in by_version.values())

    def test_hot_swap_during_parallel_rank(self, tiny_network, tmp_path,
                                           make_ranker, candidates_config):
        registry = ModelRegistry(tmp_path / "models", tiny_network)
        registry.publish(make_ranker(tiny_network, seed=1), version="v0001",
                         activate=True)
        registry.publish(make_ranker(tiny_network, seed=2), version="v0002")
        service = RankingService(tiny_network, registry,
                                 ServingConfig(candidates=candidates_config))

        def work(index: int):
            if index == 7:
                service.activate("v0002")
                return None
            pair = PAIRS[index % len(PAIRS)]
            return service.rank(RankRequest(source=pair[0], target=pair[1]))

        responses = [r for r in _hammer(16, work) if r is not None]
        # Every request was answered by exactly one complete snapshot.
        assert all(r.served_by == "model" for r in responses)
        assert {r.model_version for r in responses} <= {"v0001", "v0002"}
