"""Workload generation: Zipf OD mixes and open-loop Poisson arrivals."""

import numpy as np
import pytest

from repro.serving import (
    ServingEngine,
    WorkloadConfig,
    generate_timed_workload,
    generate_workload,
    poisson_arrivals,
    replay_open_loop,
    run_engine_workload,
)


class TestPoissonArrivals:
    def test_monotone_and_positive(self):
        arrivals = poisson_arrivals(200, qps=100.0, rng=0)
        assert arrivals.shape == (200,)
        assert np.all(np.diff(arrivals) >= 0.0)
        assert arrivals[0] > 0.0

    def test_rate_converges_to_target(self):
        arrivals = poisson_arrivals(5000, qps=250.0, rng=1)
        observed = len(arrivals) / arrivals[-1]
        assert observed == pytest.approx(250.0, rel=0.1)

    def test_deterministic_per_seed(self):
        a = poisson_arrivals(50, qps=10.0, rng=3)
        b = poisson_arrivals(50, qps=10.0, rng=3)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0, qps=10.0)
        with pytest.raises(ValueError):
            poisson_arrivals(10, qps=0.0)


class TestTimedWorkload:
    def test_same_od_mix_as_untimed(self, tiny_network):
        config = WorkloadConfig(num_requests=40, num_hotspots=5,
                                arrival_rate_qps=100.0)
        plain = generate_workload(tiny_network, config, rng=5)
        timed = generate_timed_workload(tiny_network, config, rng=5)
        assert [(t.request.source, t.request.target) for t in timed] == \
            [(r.source, r.target) for r in plain]

    def test_arrivals_attached_and_increasing(self, tiny_network):
        config = WorkloadConfig(num_requests=30, num_hotspots=5,
                                arrival_rate_qps=1000.0)
        timed = generate_timed_workload(tiny_network, config, rng=2)
        arrivals = [t.arrival_s for t in timed]
        assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))
        assert arrivals[-1] > 0.0

    def test_no_rate_means_back_to_back(self, tiny_network):
        config = WorkloadConfig(num_requests=10, num_hotspots=5)
        timed = generate_timed_workload(tiny_network, config, rng=2)
        assert all(t.arrival_s == 0.0 for t in timed)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(arrival_rate_qps=0.0)


class TestEngineDrivers:
    def test_closed_loop_summary(self, service, tiny_network):
        workload = generate_workload(
            tiny_network, WorkloadConfig(num_requests=30, num_hotspots=5),
            rng=1)
        with ServingEngine(service, concurrency=4,
                           flush_deadline_ms=2.0) as engine:
            summary = run_engine_workload(engine, workload, concurrency=6)
        assert summary["requests"] == 30
        assert summary["served_by"]["error"] == 0
        assert summary["throughput_qps"] > 0.0
        assert summary["occupancy"]["requests_coalesced"] == 30
        assert set(summary["latency_ms"]) == {"mean", "p50", "p95"}

    def test_open_loop_replay(self, service, tiny_network):
        timed = generate_timed_workload(
            tiny_network,
            WorkloadConfig(num_requests=25, num_hotspots=5,
                           arrival_rate_qps=2000.0),
            rng=1)
        with ServingEngine(service, concurrency=4,
                           flush_deadline_ms=2.0) as engine:
            summary = replay_open_loop(engine, timed)
        assert summary["requests"] == 25
        assert summary["served_by"]["error"] == 0
        assert summary["offered_qps"] > 0.0
        assert summary["occupancy"]["flushes"] > 0

    def test_open_loop_time_scale_validation(self, service, tiny_network):
        with pytest.raises(ValueError):
            replay_open_loop(None, [], time_scale=0.0)
