"""Workload generation: Zipf OD mixes and open-loop Poisson arrivals."""

import numpy as np
import pytest

from repro.serving import (
    ServingEngine,
    WorkloadConfig,
    generate_timed_workload,
    generate_workload,
    poisson_arrivals,
    replay_open_loop,
    run_engine_workload,
)


class TestPoissonArrivals:
    def test_monotone_and_positive(self):
        arrivals = poisson_arrivals(200, qps=100.0, rng=0)
        assert arrivals.shape == (200,)
        assert np.all(np.diff(arrivals) >= 0.0)
        assert arrivals[0] > 0.0

    def test_rate_converges_to_target(self):
        arrivals = poisson_arrivals(5000, qps=250.0, rng=1)
        observed = len(arrivals) / arrivals[-1]
        assert observed == pytest.approx(250.0, rel=0.1)

    def test_deterministic_per_seed(self):
        a = poisson_arrivals(50, qps=10.0, rng=3)
        b = poisson_arrivals(50, qps=10.0, rng=3)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0, qps=10.0)
        with pytest.raises(ValueError):
            poisson_arrivals(10, qps=0.0)


class TestTimedWorkload:
    def test_same_od_mix_as_untimed(self, tiny_network):
        config = WorkloadConfig(num_requests=40, num_hotspots=5,
                                arrival_rate_qps=100.0)
        plain = generate_workload(tiny_network, config, rng=5)
        timed = generate_timed_workload(tiny_network, config, rng=5)
        assert [(t.request.source, t.request.target) for t in timed] == \
            [(r.source, r.target) for r in plain]

    def test_arrivals_attached_and_increasing(self, tiny_network):
        config = WorkloadConfig(num_requests=30, num_hotspots=5,
                                arrival_rate_qps=1000.0)
        timed = generate_timed_workload(tiny_network, config, rng=2)
        arrivals = [t.arrival_s for t in timed]
        assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))
        assert arrivals[-1] > 0.0

    def test_no_rate_means_back_to_back(self, tiny_network):
        config = WorkloadConfig(num_requests=10, num_hotspots=5)
        timed = generate_timed_workload(tiny_network, config, rng=2)
        assert all(t.arrival_s == 0.0 for t in timed)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(arrival_rate_qps=0.0)


class TestEngineDrivers:
    def test_closed_loop_summary(self, service, tiny_network):
        workload = generate_workload(
            tiny_network, WorkloadConfig(num_requests=30, num_hotspots=5),
            rng=1)
        with ServingEngine(service, concurrency=4,
                           flush_deadline_ms=2.0) as engine:
            summary = run_engine_workload(engine, workload, concurrency=6)
        assert summary["requests"] == 30
        assert summary["served_by"]["error"] == 0
        assert summary["throughput_qps"] > 0.0
        assert summary["occupancy"]["requests_coalesced"] == 30
        assert set(summary["latency_ms"]) == {"mean", "p50", "p95"}

    def test_open_loop_replay(self, service, tiny_network):
        timed = generate_timed_workload(
            tiny_network,
            WorkloadConfig(num_requests=25, num_hotspots=5,
                           arrival_rate_qps=2000.0),
            rng=1)
        with ServingEngine(service, concurrency=4,
                           flush_deadline_ms=2.0) as engine:
            summary = replay_open_loop(engine, timed)
        assert summary["requests"] == 25
        assert summary["served_by"]["error"] == 0
        assert summary["offered_qps"] > 0.0
        assert summary["occupancy"]["flushes"] > 0

    def test_open_loop_time_scale_validation(self, service, tiny_network):
        with pytest.raises(ValueError):
            replay_open_loop(None, [], time_scale=0.0)


class TestMultiRegionWorkload:
    @pytest.fixture(scope="class")
    def partition(self, region_network):
        from repro.graph import voronoi_partition

        return voronoi_partition(region_network, 3, rng=0)

    def _config(self, **overrides):
        defaults = dict(num_requests=200, num_hotspots=18,
                        min_hop_distance=200.0, cross_shard_fraction=0.3)
        defaults.update(overrides)
        return WorkloadConfig(**defaults)

    def test_cross_shard_fraction_realised(self, region_network, partition):
        workload = generate_workload(region_network, self._config(),
                                     rng=3, partition=partition)
        cross = sum(1 for r in workload
                    if not partition.same_shard(r.source, r.target))
        assert 0.15 <= cross / len(workload) <= 0.45

    def test_zero_cross_fraction_stays_in_shard(self, region_network,
                                                partition):
        workload = generate_workload(
            region_network, self._config(cross_shard_fraction=0.0),
            rng=3, partition=partition)
        assert all(partition.same_shard(r.source, r.target)
                   for r in workload)

    def test_multiple_shards_receive_traffic(self, region_network,
                                             partition):
        workload = generate_workload(region_network, self._config(),
                                     rng=3, partition=partition)
        owners = {partition.shard_of(r.source) for r in workload}
        assert len(owners) >= 2

    def test_region_zipf_skews_toward_first_shards(self, region_network,
                                                   partition):
        flat = generate_workload(
            region_network,
            self._config(cross_shard_fraction=0.0, region_zipf_exponent=1.0),
            rng=3, partition=partition)
        skewed = generate_workload(
            region_network,
            self._config(cross_shard_fraction=0.0, region_zipf_exponent=4.0),
            rng=3, partition=partition)

        def shard0_share(workload):
            return sum(1 for r in workload
                       if partition.shard_of(r.source) == 0) / len(workload)

        assert shard0_share(skewed) > shard0_share(flat)

    def test_deterministic_per_seed(self, region_network, partition):
        first = generate_workload(region_network, self._config(), rng=9,
                                  partition=partition)
        second = generate_workload(region_network, self._config(), rng=9,
                                   partition=partition)
        assert first == second

    def test_timed_workload_shares_the_od_mix(self, region_network,
                                              partition):
        config = self._config(arrival_rate_qps=500.0)
        untimed = generate_workload(region_network, config, rng=4,
                                    partition=partition)
        timed = generate_timed_workload(region_network, config, rng=4,
                                        partition=partition)
        assert [t.request for t in timed] == untimed
        arrivals = [t.arrival_s for t in timed]
        assert arrivals == sorted(arrivals)

    def test_request_ids_are_sequential(self, region_network, partition):
        workload = generate_workload(region_network, self._config(),
                                     rng=3, partition=partition)
        assert [r.request_id for r in workload] == list(range(len(workload)))

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(cross_shard_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadConfig(region_zipf_exponent=0.0)


class TestBackgroundAnalyticsHook:
    """Mixed online + batch: the ``background_analytics=`` hook runs on
    a side thread for the whole replay and its summary rides the
    workload summary."""

    def test_closed_loop_attaches_summary(self, service, tiny_network):
        from repro.analytics import BackgroundAnalytics

        hook = BackgroundAnalytics(tiny_network, [0, 4], tile_size=1)
        workload = generate_workload(
            tiny_network, WorkloadConfig(num_requests=20, num_hotspots=5),
            rng=2)
        with ServingEngine(service, concurrency=4,
                           flush_deadline_ms=2.0) as engine:
            summary = run_engine_workload(engine, workload, concurrency=4,
                                          background_analytics=hook)
        assert summary["requests"] == 20
        background = summary["background_analytics"]
        assert background["product"] == "od"
        assert background["rounds"] >= 1
        assert background["tiles"] >= 1
        assert background["tile_errors"] == 0
        assert background["pooled"] is False

    def test_open_loop_attaches_summary(self, service, tiny_network):
        from repro.analytics import BackgroundAnalytics

        hook = BackgroundAnalytics(tiny_network, [0, 4],
                                   product="service_area",
                                   budgets=[150.0], tile_size=1)
        timed = generate_timed_workload(
            tiny_network,
            WorkloadConfig(num_requests=15, num_hotspots=5,
                           arrival_rate_qps=2000.0),
            rng=2)
        with ServingEngine(service, concurrency=4,
                           flush_deadline_ms=2.0) as engine:
            summary = replay_open_loop(engine, timed,
                                       background_analytics=hook)
        assert summary["requests"] == 15
        assert summary["background_analytics"]["product"] == "service_area"

    def test_no_hook_no_key(self, service, tiny_network):
        workload = generate_workload(
            tiny_network, WorkloadConfig(num_requests=5, num_hotspots=3),
            rng=3)
        with ServingEngine(service, concurrency=2,
                           flush_deadline_ms=2.0) as engine:
            summary = run_engine_workload(engine, workload, concurrency=2)
        assert "background_analytics" not in summary

    def test_hook_crash_is_reported_not_raised(self, service, tiny_network):
        def exploding_hook(stop):
            raise RuntimeError("batch job fell over")

        workload = generate_workload(
            tiny_network, WorkloadConfig(num_requests=5, num_hotspots=3),
            rng=3)
        with ServingEngine(service, concurrency=2,
                           flush_deadline_ms=2.0) as engine:
            summary = run_engine_workload(
                engine, workload, concurrency=2,
                background_analytics=exploding_hook)
        assert summary["requests"] == 5
        background = summary["background_analytics"]
        assert "RuntimeError" in background["error"]
