"""Batch-analytics fixtures: a deterministic grid, a partition of it,
and a session-wide /dev/shm hygiene check.

The grid is session-scoped (products are read-only over it); pooled
tests build their own module-scoped :class:`ExecutionPlane` because
spawned workers cost a Python start-up each.
"""

import pytest

from repro.exec.shm import list_repro_segments
from repro.graph import grid_network
from repro.graph.partition import bfs_partition


@pytest.fixture(scope="session")
def analytics_grid():
    """A 7x7 perturbed grid: big enough for non-trivial sweeps, small
    enough that per-query dict reference loops stay fast."""
    return grid_network(7, 7, seed=13)


@pytest.fixture(scope="session")
def analytics_partition(analytics_grid):
    return bfs_partition(analytics_grid, 3, rng=1)


@pytest.fixture(scope="session", autouse=True)
def _no_shared_memory_leaks():
    """Whatever the analytics suite spawned, every ``repro-exec-*``
    segment must be unlinked by the time the last test finishes."""
    yield
    leaked = list_repro_segments()
    assert leaked == [], (
        f"analytics test suite leaked shared-memory segments: {leaked}")
