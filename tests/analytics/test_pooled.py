"""Pooled tile fan-out: pooled results must equal inline results
exactly — the same ``run_tile_payload`` executes in both contexts
against the identical shared-memory CSR arrays."""

import numpy as np
import pytest

from repro.analytics import (
    BackgroundAnalytics,
    od_cost_matrix,
    route_frequencies,
    service_area,
)
from repro.errors import AnalyticsError
from repro.exec import ExecutionPlane
from repro.obs import MetricsRegistry


@pytest.fixture(scope="module")
def plane(analytics_grid):
    plane = ExecutionPlane(analytics_grid, workers=2)
    yield plane
    plane.close()


class TestPooledParity:
    def test_od_matrix(self, analytics_grid, analytics_partition, plane):
        origins = [0, 9, 17, 9]  # duplicate sweep source on purpose
        destinations = [4, 22, 48, 31, 44]  # origins stay the sweep side
        inline = od_cost_matrix(analytics_grid, origins, destinations,
                                method="sweep")
        pooled = od_cost_matrix(analytics_grid, origins, destinations,
                                method="sweep", plane=plane,
                                partition=analytics_partition, tile_size=2)
        assert np.array_equal(pooled.costs, inline.costs)
        assert pooled.method == inline.method

    def test_service_area(self, analytics_grid, analytics_partition, plane):
        sources = [0, 24, 44, 7]
        budgets = [150.0, 400.0]
        inline = service_area(analytics_grid, sources, budgets)
        pooled = service_area(analytics_grid, sources, budgets,
                              plane=plane, partition=analytics_partition,
                              tile_size=2)
        assert len(pooled) == len(inline)
        for got, want in zip(pooled, inline):
            assert (got.source, got.budget) == (want.source, want.budget)
            assert got.vertices == want.vertices
            assert got.edges == want.edges

    def test_route_frequencies(self, analytics_grid, analytics_partition,
                               plane):
        pairs = [(0, 48), (9, 4), (17, 30), (44, 2), (0, 31)]
        inline = route_frequencies(analytics_grid, pairs)
        pooled = route_frequencies(analytics_grid, pairs, plane=plane,
                                   partition=analytics_partition,
                                   tile_size=2)
        assert np.array_equal(pooled.counts, inline.counts)
        assert pooled.num_pairs == inline.num_pairs
        assert pooled.unreachable_pairs == inline.unreachable_pairs


class TestPooledConstraints:
    def test_custom_cost_cannot_cross_the_pool(self, analytics_grid, plane):
        with pytest.raises(AnalyticsError):
            od_cost_matrix(analytics_grid, [0, 9, 17], [4, 48],
                           method="sweep", plane=plane,
                           cost=lambda edge: edge.length * 2.0)

    def test_pooled_tiles_counted(self, analytics_grid, plane):
        metrics = MetricsRegistry()
        od_cost_matrix(analytics_grid, [0, 9, 17, 30], [4, 48, 22, 31],
                       method="sweep", plane=plane, tile_size=2,
                       metrics=metrics)
        exported = metrics.export()
        assert exported["analytics.tiles.total"] == 2
        assert exported["analytics.tiles.pooled"] == 2
        assert exported["analytics.tile_ms.count"] == 2

    def test_background_hook_through_the_pool(self, analytics_grid, plane):
        import threading

        hook = BackgroundAnalytics(analytics_grid, [0, 9], plane=plane,
                                   max_rounds=1)
        summary = hook(threading.Event())
        assert summary["pooled"] is True
        assert summary["tiles"] == len(hook.tiles)
        assert summary["tile_errors"] == 0
