"""Tiling, the tile wire format, and the BackgroundAnalytics hook."""

import threading

import numpy as np
import pytest

from repro.analytics import tile_sources
from repro.analytics.products import od_sweep_block, service_area_blocks
from repro.analytics.tiling import BackgroundAnalytics, run_tile_payload
from repro.errors import AnalyticsError
from repro.graph import csr_for


class TestTileSources:
    def test_plain_chunking_preserves_order(self):
        assert tile_sources([5, 3, 8, 1, 9], 2) == [[5, 3], [8, 1], [9]]
        assert tile_sources([5], 10) == [[5]]
        assert tile_sources([], 4) == []

    def test_shard_grouping(self, analytics_grid, analytics_partition):
        sources = sorted(analytics_grid.vertex_ids())
        tiles = tile_sources(sources, 4, analytics_partition)
        assert sorted(vid for tile in tiles for vid in tile) == sources
        # Every full tile is shard-pure except at shard boundaries:
        # sources arrive shard-major, so a tile spans at most 2 shards
        # and shards appear in ascending blocks.
        shard_sequence = [analytics_partition.shard_of(tile[0])
                          for tile in tiles]
        assert shard_sequence == sorted(shard_sequence)

    def test_tile_size_validated(self):
        with pytest.raises(AnalyticsError):
            tile_sources([1, 2], 0)


class TestRunTilePayload:
    def test_od_tile_equals_kernel_block(self, analytics_grid):
        kernel = csr_for(analytics_grid)
        result = run_tile_payload(analytics_grid, {
            "product": "od", "sweep": [0, 9], "cols": [4, 48],
            "reverse": False, "cost": "length"})
        want = od_sweep_block(kernel, [0, 9], [4, 48])
        assert np.array_equal(np.array(result["rows"]), want)

    def test_service_area_tile_round_trips_membership(self, analytics_grid):
        kernel = csr_for(analytics_grid)
        result = run_tile_payload(analytics_grid, {
            "product": "service_area", "sources": [0], "budgets": [200.0],
            "reverse": False, "cost": None})
        [entry] = result["areas"]
        [area] = service_area_blocks(kernel, [0], [200.0])
        assert set(entry["vertices"]) == area.vertices
        assert {tuple(edge) for edge in entry["edges"]} == area.edges

    def test_route_freq_tile_is_sparse(self, analytics_grid):
        result = run_tile_payload(analytics_grid, {
            "product": "route_freq",
            "groups": [[0, [[48, 1.0], [0, 1.0]]]], "cost": "length"})
        assert result["num_pairs"] == 2
        assert result["unreachable"] == 0
        assert len(result["positions"]) == len(result["counts"])
        assert all(count > 0.0 for count in result["counts"])

    def test_unknown_product_rejected(self, analytics_grid):
        with pytest.raises(AnalyticsError):
            run_tile_payload(analytics_grid, {"product": "heatmap"})

    def test_unknown_cost_name_rejected(self, analytics_grid):
        with pytest.raises(AnalyticsError):
            run_tile_payload(analytics_grid, {
                "product": "od", "sweep": [0], "cols": [4],
                "cost": "bananas"})


class TestBackgroundAnalytics:
    def test_runs_bounded_rounds_inline(self, analytics_grid):
        hook = BackgroundAnalytics(analytics_grid, [0, 9, 17],
                                   tile_size=2, max_rounds=2)
        summary = hook(threading.Event())
        assert summary["product"] == "od"
        assert summary["rounds"] == 2
        assert summary["tiles"] == 2 * len(hook.tiles)
        assert summary["tile_errors"] == 0
        assert summary["pooled"] is False
        assert summary["elapsed_s"] >= 0.0

    def test_stop_event_pre_set_runs_nothing(self, analytics_grid):
        hook = BackgroundAnalytics(analytics_grid, [0, 9])
        stop = threading.Event()
        stop.set()
        summary = hook(stop)
        assert summary["rounds"] == 0
        assert summary["tiles"] == 0

    def test_service_area_product(self, analytics_grid):
        hook = BackgroundAnalytics(analytics_grid, [0, 9],
                                   product="service_area",
                                   budgets=[150.0], max_rounds=1)
        summary = hook(threading.Event())
        assert summary["product"] == "service_area"
        assert summary["tiles"] == len(hook.tiles)

    def test_validation(self, analytics_grid):
        with pytest.raises(AnalyticsError):
            BackgroundAnalytics(analytics_grid, [0], product="route_freq")
        with pytest.raises(AnalyticsError):
            BackgroundAnalytics(analytics_grid, [])
        with pytest.raises(AnalyticsError):
            BackgroundAnalytics(analytics_grid, [0], product="service_area")
        with pytest.raises(AnalyticsError):
            BackgroundAnalytics(analytics_grid, [0], cost_name="bananas")
