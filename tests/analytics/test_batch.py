"""Orchestration: sweep-side choice, CH lane, disconnected pairs,
custom costs, metrics accounting, and the BatchAnalytics facade."""

import math

import numpy as np
import pytest

from repro.analytics import (
    BatchAnalytics,
    od_cost_matrix,
    od_cost_pairs,
    route_frequencies,
    service_area,
)
from repro.errors import AnalyticsError
from repro.graph import (
    RoadCategory,
    RoadNetwork,
    dijkstra,
    shortest_path_cost,
    travel_time_cost,
)
from repro.obs import MetricsRegistry


@pytest.fixture(scope="module")
def split_network():
    """Two components: a 3-cycle {0,1,2} and a one-way pair 10->11."""
    net = RoadNetwork(name="split")
    for vid, (x, y) in enumerate([(0, 0), (100, 0), (50, 80)]):
        net.add_vertex(vid, float(x), float(y))
    net.add_vertex(10, 500.0, 0.0)
    net.add_vertex(11, 600.0, 0.0)
    net.add_two_way(0, 1, length=100.0, category=RoadCategory.LOCAL)
    net.add_two_way(1, 2, length=90.0, category=RoadCategory.LOCAL)
    net.add_two_way(2, 0, length=95.0, category=RoadCategory.LOCAL)
    net.add_edge(10, 11, length=100.0, speed=50.0,
                 category=RoadCategory.LOCAL)
    return net


def _reference_cell(network, origin, destination, cost=None):
    kwargs = {} if cost is None else {"cost": cost}
    dist, _ = dijkstra(network, origin, target=destination, **kwargs)
    return dist.get(destination, math.inf)


class TestOdCostMatrix:
    def test_parity_and_sweep_side(self, analytics_grid):
        origins, destinations = [0, 9, 17], [4, 22, 31, 48]
        matrix = od_cost_matrix(analytics_grid, origins, destinations)
        assert matrix.method == "forward_sweep"  # origins are the smaller side
        assert matrix.sweeps == len(origins)
        for i, origin in enumerate(origins):
            for j, destination in enumerate(destinations):
                assert matrix.costs[i, j] == pytest.approx(
                    _reference_cell(analytics_grid, origin, destination),
                    abs=1e-9)

    def test_reverse_sweep_when_destinations_smaller(self, analytics_grid):
        matrix = od_cost_matrix(analytics_grid, [0, 9, 17, 30], [4, 48])
        assert matrix.method == "reverse_sweep"
        assert matrix.sweeps == 2
        assert matrix.cost(30, 4) == pytest.approx(
            _reference_cell(analytics_grid, 30, 4), abs=1e-9)

    def test_destinations_default_to_origins(self, analytics_grid):
        matrix = od_cost_matrix(analytics_grid, [0, 9, 17])
        assert matrix.destinations == (0, 9, 17)
        assert np.array_equal(np.diag(matrix.costs), np.zeros(3))

    def test_disconnected_pairs_are_inf(self, split_network):
        matrix = od_cost_matrix(split_network, [0, 10, 11], [2, 11])
        assert matrix.cost(0, 2) < math.inf
        assert matrix.cost(10, 11) == 100.0
        assert matrix.cost(11, 11) == 0.0
        assert matrix.cost(0, 11) == math.inf
        assert matrix.cost(10, 2) == math.inf
        assert matrix.num_disconnected == 3  # 0->11, 10->2, 11->2

    def test_custom_cost_closure_inline(self, analytics_grid):
        doubled = lambda edge: edge.length * 2.0  # noqa: E731
        matrix = od_cost_matrix(analytics_grid, [0, 9], [48], cost=doubled)
        assert matrix.cost(0, 48) == pytest.approx(
            _reference_cell(analytics_grid, 0, 48, cost=doubled), abs=1e-9)

    def test_ch_lane_matches_sweep(self, analytics_grid):
        sweep = od_cost_matrix(analytics_grid, [0, 9], [4, 48],
                               method="sweep")
        ch = od_cost_matrix(analytics_grid, [0, 9], [4, 48], method="ch")
        assert ch.method == "ch"
        assert ch.sweeps == 0
        assert np.allclose(ch.costs, sweep.costs)

    def test_validation(self, analytics_grid):
        with pytest.raises(AnalyticsError):
            od_cost_matrix(analytics_grid, [])
        with pytest.raises(AnalyticsError):
            od_cost_matrix(analytics_grid, [0], [1], method="quantum")


class TestOdCostPairs:
    def test_aligned_with_input_pairs(self, analytics_grid):
        pairs = [(0, 48), (9, 4), (0, 4), (9, 4)]  # duplicate on purpose
        costs = od_cost_pairs(analytics_grid, pairs, method="sweep")
        assert costs.shape == (4,)
        for k, (origin, destination) in enumerate(pairs):
            assert costs[k] == pytest.approx(
                _reference_cell(analytics_grid, origin, destination),
                abs=1e-9)
        assert costs[1] == costs[3]

    def test_ch_lane_matches_sweep(self, analytics_grid):
        pairs = [(0, 48), (9, 4)]
        sweep = od_cost_pairs(analytics_grid, pairs, method="sweep")
        ch = od_cost_pairs(analytics_grid, pairs, method="ch")
        assert np.allclose(ch, sweep)

    def test_disconnected_pair_is_inf(self, split_network):
        costs = od_cost_pairs(split_network, [(11, 10), (10, 11)],
                              method="sweep")
        assert costs[0] == math.inf  # one-way edge
        assert costs[1] == 100.0

    def test_validation(self, analytics_grid):
        with pytest.raises(AnalyticsError):
            od_cost_pairs(analytics_grid, [])


class TestServiceArea:
    def test_output_order_source_major_budget_minor(self, analytics_grid):
        areas = service_area(analytics_grid, [0, 24], [100.0, 300.0])
        assert [(a.source, a.budget) for a in areas] == [
            (0, 100.0), (0, 300.0), (24, 100.0), (24, 300.0)]
        # Budgets nest: a bigger budget can only add members.
        assert areas[0].vertices <= areas[1].vertices
        assert areas[0].edges <= areas[1].edges

    def test_travel_time_budgets(self, analytics_grid):
        [area] = service_area(analytics_grid, [0], [20.0],
                              cost=travel_time_cost)
        dist, _ = dijkstra(analytics_grid, 0, cost=travel_time_cost)
        assert area.vertices == {v for v, d in dist.items() if d <= 20.0}

    def test_reverse_direction(self, split_network):
        [area] = service_area(split_network, [11], [150.0], reverse=True)
        assert area.vertices == {10, 11}  # only the one-way tail reaches it
        assert area.edges == {(10, 11)}
        [forward] = service_area(split_network, [11], [150.0])
        assert forward.vertices == {11}

    def test_validation(self, analytics_grid):
        with pytest.raises(AnalyticsError):
            service_area(analytics_grid, [], [100.0])


class TestRouteFrequencies:
    def test_unreachable_pairs_counted(self, split_network):
        frequencies = route_frequencies(
            split_network, [(10, 11), (11, 10), (0, 11)])
        assert frequencies.num_pairs == 3
        assert frequencies.unreachable_pairs == 2
        assert frequencies.frequency(10, 11) == 1.0

    def test_weights_accumulate(self, split_network):
        frequencies = route_frequencies(
            split_network, [(10, 11), (10, 11)], weights=[2.0, 0.25])
        assert frequencies.frequency(10, 11) == 2.25


class TestMetrics:
    def test_products_publish_analytics_series(self, analytics_grid):
        metrics = MetricsRegistry()
        od_cost_matrix(analytics_grid, [0, 9], [4, 48], metrics=metrics)
        service_area(analytics_grid, [0], [100.0], metrics=metrics)
        route_frequencies(analytics_grid, [(0, 48), (0, 3)],
                          metrics=metrics)
        exported = metrics.export()
        assert exported["analytics.od.requests"] == 1
        assert exported["analytics.od.pairs"] == 4
        assert exported["analytics.service_area.requests"] == 1
        assert exported["analytics.service_area.areas"] == 1
        assert exported["analytics.route_freq.pairs"] == 2
        assert exported["analytics.route_freq.unreachable"] == 0
        assert exported["analytics.tiles.total"] == 3
        assert exported["analytics.od.ms.count"] == 1
        assert exported["analytics.route_freq.ms.count"] == 1


class TestBatchAnalyticsFacade:
    def test_methods_share_the_configured_context(self, analytics_grid):
        metrics = MetricsRegistry()
        plane = BatchAnalytics(analytics_grid, metrics=metrics)
        matrix = plane.od_cost_matrix([0, 9], [4, 48], method="sweep")
        assert matrix.cost(0, 4) == pytest.approx(
            _reference_cell(analytics_grid, 0, 4), abs=1e-9)
        [area] = plane.service_area([0], [100.0])
        assert 0 in area.vertices
        frequencies = plane.route_frequencies([(0, 48)])
        assert frequencies.num_pairs == 1
        costs = plane.od_cost_pairs([(0, 48)], method="sweep")
        assert costs[0] == pytest.approx(
            _reference_cell(analytics_grid, 0, 48), abs=1e-9)
        assert metrics.export()["analytics.od.requests"] == 2

    def test_background_hook_construction(self, analytics_grid):
        plane = BatchAnalytics(analytics_grid)
        hook = plane.background([0, 9], product="service_area",
                                budgets=[100.0], max_rounds=1)
        assert hook.product == "service_area"
        assert hook.max_rounds == 1
