"""Kernel-level products vs the per-query dict-backend reference.

Parity is the contract: every sweep row, membership set, and edge
count must equal what a per-query loop over ``dijkstra`` /
``shortest_path`` produces, element-wise.
"""

import math

import numpy as np
import pytest

from repro.analytics.products import (
    cost_from_name,
    cost_name,
    group_pairs,
    od_sweep_block,
    require_cost_name,
    route_frequency_counts,
    service_area_blocks,
)
from repro.errors import AnalyticsError, EdgeNotFoundError, NoPathError
from repro.graph import (
    csr_for,
    dijkstra,
    length_cost,
    shortest_path,
    shortest_path_cost,
    travel_time_cost,
)


def _dist_rows(network, sources, cost=length_cost):
    """Reference: one dict Dijkstra per source, dense rows."""
    vids = sorted(network.vertex_ids())
    rows = np.full((len(sources), len(vids)), math.inf)
    for i, source in enumerate(sources):
        dist, _ = dijkstra(network, source, cost=cost)
        for j, vid in enumerate(vids):
            rows[i, j] = dist.get(vid, math.inf)
    return vids, rows


class TestCostNames:
    def test_roundtrip(self):
        assert cost_name(None) == "length"
        assert cost_name(length_cost) == "length"
        assert cost_name(travel_time_cost) == "travel_time"
        assert cost_from_name(None) is None
        assert cost_from_name("length") is None
        assert cost_from_name("travel_time") is travel_time_cost

    def test_custom_closure_has_no_wire_name(self):
        assert cost_name(lambda edge: edge.length * 2.0) is None
        with pytest.raises(AnalyticsError):
            require_cost_name(lambda edge: edge.length * 2.0)

    def test_unknown_name_rejected(self):
        with pytest.raises(AnalyticsError):
            cost_from_name("speed_of_sound")


class TestODSweepBlock:
    def test_forward_rows_match_dict_dijkstra(self, analytics_grid):
        kernel = csr_for(analytics_grid)
        vids, reference = _dist_rows(analytics_grid, [0, 5, 17])
        cols = [vids[2], vids[10], vids[-1]]
        block = od_sweep_block(kernel, [0, 5, 17], cols)
        want = reference[:, [vids.index(c) for c in cols]]
        assert np.array_equal(block, want)

    def test_reverse_block_is_forward_transposed(self, analytics_grid):
        kernel = csr_for(analytics_grid)
        sweep, cols = [3, 11], [0, 7, 20]
        forward = np.array([[shortest_path_cost(analytics_grid, c, s,
                                                backend="dict")
                             for s in sweep] for c in cols])
        reverse = od_sweep_block(kernel, sweep, cols, reverse=True)
        assert np.allclose(reverse.T, forward)

    def test_travel_time_cost(self, analytics_grid):
        kernel = csr_for(analytics_grid)
        block = od_sweep_block(kernel, [0], [30], cost=travel_time_cost)
        dist, _ = dijkstra(analytics_grid, 0, cost=travel_time_cost)
        assert block[0, 0] == pytest.approx(dist[30], abs=1e-9)


class TestServiceAreaBlocks:
    def test_forward_membership_matches_budget_test(self, analytics_grid):
        kernel = csr_for(analytics_grid)
        budgets = [150.0, 400.0]
        areas = service_area_blocks(kernel, [0, 24], budgets)
        assert len(areas) == 4  # source-major, budget-minor
        position = 0
        for source in (0, 24):
            dist, _ = dijkstra(analytics_grid, source)
            for budget in budgets:
                area = areas[position]
                position += 1
                assert area.source == source
                assert area.budget == budget
                assert not area.reverse
                assert area.vertices == {
                    v for v, d in dist.items() if d <= budget}
                assert area.edges == {
                    edge.key for edge in analytics_grid.edges()
                    if dist.get(edge.key[0], math.inf) + edge.length
                    <= budget}

    def test_reverse_is_the_catchment(self, analytics_grid):
        kernel = csr_for(analytics_grid)
        source, budget = 24, 300.0
        [area] = service_area_blocks(kernel, [source], [budget],
                                     reverse=True)

        def to_source(v):
            try:
                return shortest_path_cost(analytics_grid, v, source,
                                          backend="dict")
            except NoPathError:
                return math.inf

        assert area.reverse
        assert area.vertices == {
            v for v in analytics_grid.vertex_ids() if to_source(v) <= budget}
        assert area.edges == {
            edge.key for edge in analytics_grid.edges()
            if edge.length + to_source(edge.key[1]) <= budget}

    def test_source_always_inside_its_area(self, analytics_grid):
        kernel = csr_for(analytics_grid)
        [area] = service_area_blocks(kernel, [7], [0.0])
        assert area.vertices == {7}
        assert area.edges == set()


class TestRouteFrequencyCounts:
    def test_counts_match_per_pair_reconstructions(self, analytics_grid):
        kernel = csr_for(analytics_grid)
        pairs = [(0, 48), (0, 44), (10, 48), (10, 3), (27, 5)]
        groups = group_pairs(pairs, None)
        counts, num_pairs, unreachable = route_frequency_counts(
            kernel, groups)
        reference: dict[tuple[int, int], float] = {}
        for origin, destination in pairs:
            path = shortest_path(analytics_grid, origin, destination,
                                 backend="dict")
            for u, v in zip(path.vertices, path.vertices[1:]):
                reference[(u, v)] = reference.get((u, v), 0.0) + 1.0
        batched = {}
        for pos in np.flatnonzero(counts):
            u = int(np.searchsorted(kernel.indptr, pos, side="right")) - 1
            batched[(kernel.ids[u],
                     int(kernel.ids[kernel.indices[pos]]))] = counts[pos]
        assert num_pairs == len(pairs)
        assert unreachable == 0
        assert batched == reference

    def test_weights_scale_contributions(self, analytics_grid):
        kernel = csr_for(analytics_grid)
        groups = group_pairs([(0, 48), (0, 44)], [2.5, 0.5])
        counts, _, _ = route_frequency_counts(kernel, groups)
        base, _, _ = route_frequency_counts(
            kernel, group_pairs([(0, 48)], [1.0]))
        # The 2.5-weighted pair contributes exactly 2.5x the unit path.
        path_positions = np.flatnonzero(base)
        assert np.all(counts[path_positions] >= 2.5)

    def test_self_pair_contributes_nothing(self, analytics_grid):
        kernel = csr_for(analytics_grid)
        counts, num_pairs, unreachable = route_frequency_counts(
            kernel, group_pairs([(5, 5)], None))
        assert num_pairs == 1
        assert unreachable == 0
        assert not counts.any()


class TestGroupPairs:
    def test_groups_by_origin_first_seen_order(self):
        groups = group_pairs([(3, 1), (7, 2), (3, 4)], None)
        assert [source for source, _ in groups] == [3, 7]
        assert dict(groups)[3] == [(1, 1.0), (4, 1.0)]

    def test_weights_length_validated(self):
        with pytest.raises(AnalyticsError):
            group_pairs([(1, 2), (3, 4)], [1.0])


class TestResultTypes:
    def test_od_matrix_accessors(self, analytics_grid):
        from repro.analytics import od_cost_matrix

        matrix = od_cost_matrix(analytics_grid, [0, 5], [48, 30])
        assert matrix.num_pairs == 4
        assert matrix.cost(5, 48) == matrix.costs[1, 0]
        payload = matrix.as_dict()
        assert payload["origins"] == [0, 5]
        assert all(c is None or isinstance(c, float)
                   for row in payload["costs"] for c in row)

    def test_route_frequencies_rejects_absent_edge(self, analytics_grid):
        from repro.analytics import route_frequencies

        frequencies = route_frequencies(analytics_grid, [(0, 48)])
        with pytest.raises(EdgeNotFoundError):
            frequencies.frequency(0, 48)  # not adjacent on a grid
        assert all(load > 0.0 for _, load in frequencies.items())
