"""Shared-memory segments: layout, refcounts, staleness, lifecycle."""

import numpy as np
import pytest

from repro.errors import ExecError, StaleSegmentError
from repro.exec.shm import (
    SEGMENT_PREFIX,
    SharedArena,
    attach_segment,
    attached_refs,
    create_segment,
    list_repro_segments,
)


def _arrays() -> dict[str, np.ndarray]:
    return {
        "indptr": np.arange(7, dtype=np.int64),
        "weights": np.linspace(0.0, 1.0, 12, dtype=np.float64),
        "table": np.arange(6, dtype=np.float32).reshape(2, 3),
    }


# ----------------------------------------------------------------------
# create / attach round trip
# ----------------------------------------------------------------------
def test_create_attach_roundtrip_preserves_arrays_and_meta():
    arrays = _arrays()
    segment = create_segment("csr:test-roundtrip", arrays,
                             meta={"num_vertices": 6})
    try:
        assert segment.name.startswith(SEGMENT_PREFIX)
        attached = attach_segment(segment.name,
                                  expect_key="csr:test-roundtrip")
        try:
            assert attached.key == "csr:test-roundtrip"
            assert attached.meta == {"num_vertices": 6}
            assert set(attached.arrays) == set(arrays)
            for name, original in arrays.items():
                view = attached.arrays[name]
                assert view.dtype == original.dtype
                assert view.shape == original.shape
                np.testing.assert_array_equal(view, original)
        finally:
            attached.detach()
    finally:
        segment.close()


def test_attached_views_are_read_only():
    segment = create_segment("csr:test-readonly", _arrays())
    try:
        attached = attach_segment(segment.name)
        try:
            with pytest.raises(ValueError):
                attached.arrays["weights"][0] = 42.0
        finally:
            attached.detach()
    finally:
        segment.close()


def test_attach_refcounts_per_process():
    segment = create_segment("csr:test-refs", _arrays())
    try:
        assert attached_refs(segment.name) == 0
        first = attach_segment(segment.name)
        second = attach_segment(segment.name)
        assert attached_refs(segment.name) == 2
        # The two handles share one per-process mapping.
        assert first.arrays["indptr"].base is not None
        first.detach()
        first.detach()  # idempotent per handle: still one reference out
        assert attached_refs(segment.name) == 1
        second.detach()
        assert attached_refs(segment.name) == 0
    finally:
        segment.close()


def test_attach_missing_segment_raises():
    with pytest.raises(ExecError, match="does not exist"):
        attach_segment(f"{SEGMENT_PREFIX}ffffffff-0000000000")


# ----------------------------------------------------------------------
# staleness guard
# ----------------------------------------------------------------------
def test_stale_key_rejected_without_leaking_a_reference():
    segment = create_segment("weights:v1:1:float32", _arrays())
    try:
        with pytest.raises(StaleSegmentError, match="stale hot-state"):
            attach_segment(segment.name, expect_key="weights:v2:7:float32")
        # The rejected attach must not pin the mapping.
        assert attached_refs(segment.name) == 0
    finally:
        segment.close()


# ----------------------------------------------------------------------
# owner lifecycle
# ----------------------------------------------------------------------
def test_owner_close_unlinks_from_dev_shm():
    segment = create_segment("csr:test-unlink", _arrays())
    assert segment.name in list_repro_segments()
    segment.close()
    assert segment.name not in list_repro_segments()
    assert segment.closed
    segment.close()  # idempotent
    with pytest.raises(ExecError):
        attach_segment(segment.name)


# ----------------------------------------------------------------------
# arena
# ----------------------------------------------------------------------
def test_arena_publish_is_idempotent_per_key():
    arena = SharedArena()
    try:
        first = arena.publish("csr:a", _arrays())
        again = arena.publish("csr:a", _arrays())
        assert again is first
        assert arena.keys() == ["csr:a"]
        assert arena.get("csr:a") is first
        assert arena.get("csr:missing") is None
    finally:
        arena.close()
    assert arena.keys() == []


def test_arena_drop_unlinks_one_key():
    arena = SharedArena()
    try:
        segment = arena.publish("weights:v1:1:float32", _arrays())
        arena.publish("csr:keep", _arrays())
        assert arena.drop("weights:v1:1:float32") is True
        assert arena.drop("weights:v1:1:float32") is False
        assert segment.name not in list_repro_segments()
        assert arena.keys() == ["csr:keep"]
    finally:
        arena.close()


def test_arena_drop_where_prunes_by_predicate():
    arena = SharedArena()
    try:
        arena.publish("weights:v1:1:float32", _arrays())
        arena.publish("weights:v2:1:float32", _arrays())
        arena.publish("csr:keep", _arrays())
        dropped = arena.drop_where(lambda key: key.startswith("weights:v1"))
        assert dropped == 1
        assert arena.keys() == ["csr:keep", "weights:v2:1:float32"]
        stats = arena.stats()
        assert stats["segments"] == 2
        assert stats["bytes"] > 0
        assert stats["keys"] == arena.keys()
    finally:
        arena.close()
