"""The CH lane across process boundaries: spawn workers attach the
owner's prebuilt hierarchy from shared memory and route on it.

The execution plane builds the hierarchy owner-side *before* exporting
the CSR payload (same owner-side-before-export rule as the ALT tables),
so replicas never re-contract — they attach the exact shortcut graph
the owner built, which is both the perf point (contraction is the
expensive half of CH) and the parity point (an independently contracted
hierarchy could break ties differently).
"""

import pytest

from repro.core.ranker import generate_candidates
from repro.exec.plane import ExecutionPlane
from repro.graph.csr import csr_if_built, use_routing_backend


@pytest.fixture(scope="module")
def ch_plane(exec_network):
    """A plane spawned under the ``ch`` backend: the parent selects it
    process-wide, and the spawned workers inherit it through the
    environment."""
    import os

    os.environ["REPRO_ROUTING_BACKEND"] = "ch"
    try:
        with use_routing_backend("ch"):
            plane = ExecutionPlane(exec_network, workers=1)
            try:
                yield plane
            finally:
                plane.close()
    finally:
        del os.environ["REPRO_ROUTING_BACKEND"]


def _od_pairs(network):
    ids = network.vertex_ids()
    return [(ids[0], ids[-1]), (ids[len(ids) // 3], ids[-2])]


def test_owner_builds_hierarchy_before_export(ch_plane, exec_network):
    kernel = csr_if_built(exec_network)
    assert kernel is not None
    hierarchy = kernel.ch_if_built()
    assert hierarchy is not None
    assert hierarchy.num_shortcuts > 0


def test_spawn_worker_candidates_match_inline(ch_plane, exec_network,
                                              exec_candidates):
    """The worker routes on the attached hierarchy; its candidate sets
    must match the parent's element-wise — same kernel, same shortcut
    graph, same tie-breaks."""
    with use_routing_backend("ch"):
        for source, target in _od_pairs(exec_network):
            inline = generate_candidates(exec_network, source, target,
                                         exec_candidates)
            remote = ch_plane.pool.run(
                "candidates", (source, target, exec_candidates),
                timeout_s=30.0)
            assert [tuple(vertices) for vertices in remote] \
                == [path.vertices for path in inline]


def test_worker_queries_do_not_mutate_owner_counters(ch_plane,
                                                     exec_network):
    """Worker-side hierarchy queries run in the worker process; the
    owner's cumulative counters only move for owner-side traffic."""
    kernel = csr_if_built(exec_network)
    before = kernel.ch_profile_counters()["queries"]
    ch_plane.pool.run("ping", None, timeout_s=30.0)
    assert kernel.ch_profile_counters()["queries"] == before
