"""Service-level execution modes: parity, chaos, lifecycle, stats."""

import time

import pytest

from repro.exec.shm import list_repro_segments
from repro.ranking import Strategy, TrainingDataConfig
from repro.serving import ModelRegistry, RankingService, ServingConfig
from repro.serving.loadgen import WorkloadConfig, generate_workload

CANDIDATES = TrainingDataConfig(strategy=Strategy.TKDI, k=3)


def _service(network, ranker, root, **execution) -> RankingService:
    registry = ModelRegistry(root, network)
    registry.publish(ranker, activate=True)
    return RankingService(network, registry,
                          ServingConfig(candidates=CANDIDATES, **execution))


@pytest.fixture(scope="module")
def workload(exec_network):
    return generate_workload(
        exec_network,
        WorkloadConfig(num_requests=12, num_hotspots=4),
        rng=3)


@pytest.fixture(scope="module")
def proc_service(exec_network, exec_ranker, tmp_path_factory):
    """One processes-mode service (two workers) shared by the
    non-destructive tests in this module."""
    service = _service(exec_network, exec_ranker,
                       tmp_path_factory.mktemp("proc-models"),
                       execution="processes", workers=2)
    yield service
    service.close()


def _signature(responses):
    return [
        (response.served_by, response.model_version, response.error,
         [(result.path.vertices, result.score)
          for result in response.results])
        for response in responses
    ]


# ----------------------------------------------------------------------
# Parity
# ----------------------------------------------------------------------
def test_config_validates_execution_mode():
    with pytest.raises(ValueError, match="execution"):
        ServingConfig(candidates=CANDIDATES, execution="gpu")
    with pytest.raises(ValueError, match="workers"):
        ServingConfig(candidates=CANDIDATES, workers=0)


def test_all_modes_serve_identical_responses(exec_network, exec_ranker,
                                             tmp_path, workload,
                                             proc_service):
    """processes == threads == inline, element-wise: same routing, same
    candidate orderings, identical scores."""
    inline = _service(exec_network, exec_ranker, tmp_path / "inline")
    threads = _service(exec_network, exec_ranker, tmp_path / "threads",
                       execution="threads", workers=2)
    try:
        oracle = _signature(inline.rank_batch(workload))
        assert _signature(threads.rank_batch(workload)) == oracle
        assert _signature(proc_service.rank_batch(workload)) == oracle
        assert all(entry[2] is None for entry in oracle)
    finally:
        threads.close()
        inline.close()


# ----------------------------------------------------------------------
# Stats shape
# ----------------------------------------------------------------------
def test_stats_expose_execution_block_only_when_armed(
        exec_network, exec_ranker, tmp_path, workload, proc_service):
    proc_service.rank_batch(workload[:4])
    stats = proc_service.stats()["execution"]
    assert stats["mode"] == "processes"
    assert stats["workers"] == 2
    assert stats["pool"]["workers"] == 2
    assert stats["pool"]["alive"] == 2
    assert stats["arena"]["segments"] >= 1
    assert any(key.startswith("csr:") for key in stats["arena"]["keys"])

    inline = _service(exec_network, exec_ranker, tmp_path / "inline")
    try:
        # Dormant plane: the stats payload keeps its historical shape.
        assert "execution" not in inline.stats()
    finally:
        inline.close()

    threads = _service(exec_network, exec_ranker, tmp_path / "threads",
                       execution="threads")
    try:
        # Threads mode has no worker pool, only the mode marker.
        assert threads.plane is None
        assert threads.stats()["execution"] == {"mode": "threads"}
    finally:
        threads.close()


def test_exec_metrics_registered(proc_service):
    exported = proc_service.metrics.export()
    assert any(name.startswith("exec.") for name in exported)
    assert exported.get("exec.pool.workers") == 2


# ----------------------------------------------------------------------
# Chaos: the exec.worker injection point
# ----------------------------------------------------------------------
def test_exec_worker_fault_kills_for_real_and_service_degrades(
        proc_service, exec_network):
    """An ``exec.worker`` error firing SIGKILLs a live worker.  Every
    request must still be answered (inline fallback / degradation), and
    the pool must respawn back to full strength."""
    # A workload the shared service has never seen: warm caches would
    # skip the pool entirely and the injection point would never fire.
    fresh = generate_workload(
        exec_network, WorkloadConfig(num_requests=6, num_hotspots=3),
        rng=99)
    before = proc_service.plane.pool.stats()["respawns"]
    proc_service.arm_faults("exec.worker:error", seed=1)
    try:
        responses = proc_service.rank_batch(fresh)
    finally:
        proc_service.disarm_faults()
    assert all(response.ok for response in responses)
    deadline = time.monotonic() + 30.0
    while True:
        stats = proc_service.plane.pool.stats()
        if stats["respawns"] > before and stats["alive"] == 2:
            break
        assert time.monotonic() < deadline, (
            f"pool did not recover: {stats}")
        time.sleep(0.05)
    # And the recovered pool still serves.
    followup = proc_service.rank_batch(fresh[:3])
    assert all(response.ok for response in followup)


# ----------------------------------------------------------------------
# Lifecycle: weight pruning and teardown
# ----------------------------------------------------------------------
def test_deactivate_unlinks_weight_segments(exec_network, exec_ranker,
                                            tmp_path, workload):
    service = _service(exec_network, exec_ranker, tmp_path / "models",
                       execution="processes", workers=1)
    try:
        responses = service.rank_batch(workload[:4])
        assert all(response.ok for response in responses)
        keys = service.plane.arena.keys()
        if service.plane.scoring_enabled:
            assert any(key.startswith("weights:") for key in keys)
        service.registry.deactivate()
        keys = service.plane.arena.keys()
        assert not any(key.startswith("weights:") for key in keys)
        # The CSR segment stays — it belongs to the graph, not a model.
        assert any(key.startswith("csr:") for key in keys)
    finally:
        service.close()


def test_service_close_unlinks_every_segment(exec_network, exec_ranker,
                                             tmp_path, workload):
    before = set(list_repro_segments())
    service = _service(exec_network, exec_ranker, tmp_path / "models",
                       execution="processes", workers=1)
    try:
        service.rank_batch(workload[:2])
        created = set(list_repro_segments()) - before
        assert created, "processes mode should have published segments"
    finally:
        service.close()
    assert set(list_repro_segments()) & created == set()
    # close() is idempotent and re-entrant with __exit__.
    service.close()
