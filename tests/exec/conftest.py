"""Execution-plane fixtures: a small region network, a randomly
initialised model, and a session-wide /dev/shm hygiene check.

Worker processes are spawned (not forked), so every plane construction
costs a Python start-up; the fixtures here are scoped to amortise that
— chaos tests that maim their pool build private ones instead.
"""

import pytest

from repro.core import PathRankRanker, RankerConfig, build_pathrank
from repro.exec.shm import list_repro_segments
from repro.graph import north_jutland_like
from repro.ranking import Strategy, TrainingDataConfig

CANDIDATES = TrainingDataConfig(strategy=Strategy.TKDI, k=3)


@pytest.fixture(scope="session")
def exec_network():
    """A two-town region: big enough for varied candidate sets, small
    enough that workers warm up in well under a second."""
    return north_jutland_like(num_towns=2, seed=7)


@pytest.fixture(scope="session")
def exec_candidates() -> TrainingDataConfig:
    return CANDIDATES


@pytest.fixture(scope="session")
def exec_ranker(exec_network) -> PathRankRanker:
    """A ranker with deterministic random weights — scoring parity
    across processes does not care whether the model is trained."""
    ranker = PathRankRanker(exec_network, RankerConfig(
        embedding_dim=16, hidden_size=16, fc_hidden=8,
        training_data=CANDIDATES))
    ranker.model = build_pathrank(
        "PR-A2", num_vertices=exec_network.num_vertices, embedding_dim=16,
        hidden_size=16, fc_hidden=8, rng=5)
    return ranker


@pytest.fixture(scope="session", autouse=True)
def _no_shared_memory_leaks():
    """Whatever the exec suite spawned, every ``repro-exec-*`` segment
    must be unlinked by the time the last test finishes."""
    yield
    leaked = list_repro_segments()
    assert leaked == [], (
        f"exec test suite leaked shared-memory segments: {leaked}")
