"""The worker pool: dispatch, kernel parity, and chaos recovery."""

import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.ranker import generate_candidates
from repro.errors import ExecError
from repro.exec.plane import ExecutionPlane
from repro.exec.pool import WorkerPool
from repro.exec.shm import SharedArena
from repro.graph.csr import csr_for
from repro.nn.fused import resolve_scoring_backend


@pytest.fixture(scope="module")
def plane(exec_network):
    """One warm two-worker plane shared by the non-destructive tests."""
    plane = ExecutionPlane(exec_network, workers=2)
    yield plane
    plane.close()


def _ping_until_recovered(pool, deadline_s: float = 30.0) -> None:
    """Ping until the respawned incarnation answers.

    A ping dispatched in the short window between a kill and the
    monitor's respawn is legitimately failed along with the dead
    worker's other tickets, so recovery is observed by retrying, not by
    racing the monitor.
    """
    deadline = time.monotonic() + deadline_s
    while True:
        try:
            assert pool.run("ping", None, timeout_s=5.0) == "pong"
            return
        except ExecError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.05)


def _od_pairs(network):
    """A few well-separated OD pairs, deterministic per network."""
    ids = sorted(network.vertex_ids())
    return [(ids[0], ids[-1]), (ids[len(ids) // 3], ids[-2]),
            (ids[1], ids[2 * len(ids) // 3])]


# ----------------------------------------------------------------------
# Dispatch and parity
# ----------------------------------------------------------------------
def test_ping_roundtrip(plane):
    assert plane.pool.run("ping", None, timeout_s=30.0) == "pong"
    stats = plane.pool.stats()
    assert stats["workers"] == 2
    assert stats["alive"] == 2
    assert stats["completed"] >= 1


def test_candidates_parity_with_inline_generation(plane, exec_network,
                                                  exec_candidates):
    """Workers run the identical kernel over the shared CSR arrays, so
    candidate sets must match the parent's element-wise."""
    for source, target in _od_pairs(exec_network):
        inline = generate_candidates(exec_network, source, target,
                                     exec_candidates)
        remote = plane.pool.run(
            "candidates", (source, target, exec_candidates), timeout_s=30.0)
        assert [tuple(vertices) for vertices in remote] \
            == [path.vertices for path in inline]


def test_unknown_vertex_ships_back_as_exec_error(plane, exec_network,
                                                 exec_candidates):
    with pytest.raises(ExecError, match="failed 'candidates'"):
        plane.pool.run("candidates", (10 ** 9, 0, exec_candidates),
                       timeout_s=30.0)


def test_unknown_job_kind_fails_cleanly(plane):
    with pytest.raises(ExecError, match="unknown job kind"):
        plane.pool.run("frobnicate", None, timeout_s=30.0)


@pytest.mark.skipif(resolve_scoring_backend() != "fused",
                    reason="process scoring requires the fused backend")
def test_score_parity_is_bitwise(plane, exec_network, exec_ranker,
                                 exec_candidates):
    """The worker mirrors ``PathRank.score_paths``' fused branch over
    shared weight buffers: same arithmetic, bitwise-equal scores."""
    source, target = _od_pairs(exec_network)[0]
    paths = generate_candidates(exec_network, source, target,
                                exec_candidates)
    active = SimpleNamespace(model=exec_ranker.model, version="v-parity")
    proxy = plane.scoring_proxy(active)
    remote = proxy.score_paths(paths)
    inline = np.asarray(exec_ranker.model.score_paths(paths),
                        dtype=np.float64)
    assert remote.dtype == np.float64
    np.testing.assert_array_equal(remote, inline)
    # The weight segment is tracked for deactivation pruning.
    assert any(key.startswith("weights:v-parity:")
               for key in plane.arena.keys())
    assert plane.on_deactivate("v-parity") == 1
    assert not any(key.startswith("weights:v-parity:")
                   for key in plane.arena.keys())


# ----------------------------------------------------------------------
# Chaos: death, hangs, staleness
# ----------------------------------------------------------------------
def test_worker_death_fails_inflight_and_respawns(exec_network):
    plane = ExecutionPlane(exec_network, workers=1)
    try:
        pool = plane.pool
        ticket = pool.submit("hang", None)
        pool.kill_worker(0)
        with pytest.raises(ExecError, match="died"):
            ticket.wait(30.0)
        # The monitor respawns the slot; the pool must serve again.
        _ping_until_recovered(pool)
        stats = pool.stats()
        assert stats["respawns"] >= 1
        assert stats["failed"] >= 1
        assert stats["alive"] == 1
    finally:
        plane.close()


def test_waiter_deadline_kills_hung_worker_and_recovers(exec_network):
    plane = ExecutionPlane(exec_network, workers=1)
    try:
        pool = plane.pool
        ticket = pool.submit("hang", None)
        with pytest.raises(ExecError, match="timed out"):
            ticket.wait(0.5)
        assert pool.stats()["timeouts"] == 1
        _ping_until_recovered(pool)
    finally:
        plane.close()


def test_stale_csr_key_rejected_at_worker_warmup(exec_network):
    """A worker handed a segment whose key does not match what it was
    told to expect must refuse to install it — warmup fails loudly
    instead of silently routing on stale hot-state."""
    kernel = csr_for(exec_network)
    arrays, meta = kernel.shared_payload()
    arena = SharedArena()
    pool = None
    try:
        segment = arena.publish("csr:stale-test", arrays, meta)
        pool = WorkerPool(exec_network, workers=1, csr_name=segment.name,
                          csr_key="csr:" + "0" * 32)
        with pytest.raises(ExecError, match="StaleSegmentError"):
            pool.wait_ready(3.0)
    finally:
        if pool is not None:
            pool.close()
        arena.close()


def test_submit_after_close_raises(exec_network):
    plane = ExecutionPlane(exec_network, workers=1)
    plane.close()
    with pytest.raises(ExecError, match="closed"):
        plane.pool.submit("ping", None)
