"""The adaptive flush policy: deadline math and engine integration."""

import time

import pytest

from repro.errors import ServingError
from repro.ranking import Strategy, TrainingDataConfig
from repro.serving import (
    ModelRegistry,
    RankingService,
    ServingConfig,
    ServingEngine,
)
from repro.serving.engine import AdaptiveFlushPolicy
from repro.serving.loadgen import WorkloadConfig, generate_workload

CANDIDATES = TrainingDataConfig(strategy=Strategy.TKDI, k=3)


# ----------------------------------------------------------------------
# Policy math
# ----------------------------------------------------------------------
def test_no_signal_rests_at_the_historical_default():
    policy = AdaptiveFlushPolicy(max_batch_size=64)
    assert policy.current_deadline_ms() == AdaptiveFlushPolicy.DEFAULT_MS
    view = policy.as_dict()
    assert view["flushes_measured"] == 0
    assert view["arrival_rate_hz"] == 0.0


def test_batch_cost_bounds_the_deadline():
    # 1 ms per path, 4-path batches: waiting longer than the ~4 ms a
    # full batch costs to score only adds latency.
    policy = AdaptiveFlushPolicy(max_batch_size=4)
    policy.note_flush(requests=2, paths=100, wall_s=0.1)
    assert policy.current_deadline_ms() == pytest.approx(4.0)
    assert policy.as_dict()["cost_per_path_ms"] == pytest.approx(1.0)


def test_deadline_is_clamped_to_the_configured_band():
    slow = AdaptiveFlushPolicy(max_batch_size=64)
    slow.note_flush(requests=1, paths=10, wall_s=10.0)  # 1 s per path
    assert slow.current_deadline_ms() == AdaptiveFlushPolicy.MAX_MS

    fast = AdaptiveFlushPolicy(max_batch_size=1)
    fast.note_flush(requests=1, paths=10 ** 6, wall_s=1e-6)
    assert fast.current_deadline_ms() == AdaptiveFlushPolicy.MIN_MS


def test_arrival_rate_bounds_the_deadline():
    # A burst arriving faster than the batch fills: t_fill, not the
    # (expensive) batch cost, should set the deadline.
    policy = AdaptiveFlushPolicy(max_batch_size=8)
    policy.note_flush(requests=10, paths=40, wall_s=4.0)  # 100 ms/path
    now = time.perf_counter()
    # ~1000 requests/s at 4 paths each -> 8-path batch fills in ~2 ms.
    with policy._lock:
        policy._arrivals.extend(now + i / 1000.0 for i in range(64))
    deadline = policy.current_deadline_ms()
    assert deadline == pytest.approx(2.0, rel=0.05)
    assert policy.as_dict()["arrival_rate_hz"] == pytest.approx(1000.0,
                                                                rel=0.05)


def test_cost_ewma_tracks_recent_flushes():
    policy = AdaptiveFlushPolicy(max_batch_size=10)
    policy.note_flush(requests=1, paths=100, wall_s=0.1)  # 1 ms/path
    first = policy.as_dict()["cost_per_path_ms"]
    policy.note_flush(requests=1, paths=100, wall_s=0.3)  # 3 ms/path
    second = policy.as_dict()["cost_per_path_ms"]
    assert first < second < 3.0
    policy.note_flush(requests=0, paths=0, wall_s=0.0)  # ignored
    assert policy.as_dict()["flushes_measured"] == 2


def test_cost_probe_bootstraps_before_the_first_flush():
    policy = AdaptiveFlushPolicy(
        max_batch_size=4,
        cost_probe=lambda: {"wall_s": 0.2, "paths_scored": 100})
    # 2 ms/path from the kernel profile -> 8 ms batch cost.
    assert policy.current_deadline_ms() == pytest.approx(8.0)


def test_broken_cost_probe_is_ignored():
    def probe():
        raise RuntimeError("kernel view unavailable")

    policy = AdaptiveFlushPolicy(max_batch_size=4, cost_probe=probe)
    assert policy.current_deadline_ms() == AdaptiveFlushPolicy.DEFAULT_MS


# ----------------------------------------------------------------------
# Configuration plumbing
# ----------------------------------------------------------------------
def test_serving_config_accepts_auto_and_rejects_other_strings():
    config = ServingConfig(candidates=CANDIDATES, flush_deadline_ms="auto")
    assert config.flush_deadline_ms == "auto"
    with pytest.raises(ValueError, match="auto"):
        ServingConfig(candidates=CANDIDATES, flush_deadline_ms="fast")


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
@pytest.fixture
def service(exec_network, exec_ranker, tmp_path):
    registry = ModelRegistry(tmp_path / "models", exec_network)
    registry.publish(exec_ranker, activate=True)
    return RankingService(exec_network, registry,
                          ServingConfig(candidates=CANDIDATES))


def test_engine_rejects_non_auto_strings(service):
    with pytest.raises(ServingError, match="auto"):
        ServingEngine(service, flush_deadline_ms="nope")


def test_engine_auto_mode_measures_and_reports(service, exec_network):
    workload = generate_workload(
        exec_network, WorkloadConfig(num_requests=16, num_hotspots=4),
        rng=5)
    with ServingEngine(service, concurrency=4,
                       flush_deadline_ms="auto") as engine:
        responses = engine.rank_batch(workload)
        assert all(response.ok for response in responses)
        stats = engine.stats()["engine"]
    adaptive = stats["adaptive_flush"]
    assert stats["flush_deadline_ms"] == adaptive["current_ms"]
    assert adaptive["flushes_measured"] >= 1
    assert adaptive["paths_per_request"] > 0.0
    assert adaptive["cost_per_path_ms"] > 0.0
    assert AdaptiveFlushPolicy.MIN_MS <= adaptive["current_ms"] \
        <= AdaptiveFlushPolicy.MAX_MS


def test_engine_fixed_deadline_keeps_adaptive_dormant(service):
    with ServingEngine(service, concurrency=2,
                       flush_deadline_ms=2.0) as engine:
        assert engine.adaptive is None
        stats = engine.stats()["engine"]
        assert "adaptive_flush" not in stats
        assert stats["flush_deadline_ms"] == 2.0
