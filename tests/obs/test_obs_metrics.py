"""Unit tests for the metrics primitives and the central registry."""

import json
import math
import threading

import pytest

from repro.obs.metrics import (
    BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    flatten_metrics,
)


# ----------------------------------------------------------------------
# Counter / Gauge
# ----------------------------------------------------------------------
class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("requests")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("requests").inc(-1)

    def test_rejects_malformed_name(self):
        for bad in ("", ".", "a..b", "a b", "a/b", ".leading", "trailing."):
            with pytest.raises(ValueError):
                Counter(bad)

    def test_accepts_dotted_names(self):
        for good in ("requests", "serving.latency", "shard.shard-00.requests",
                     "cache.candidate.hits", "a_b.c-d.e0"):
            assert Counter(good).name == good

    def test_concurrent_increments_do_not_lose_updates(self):
        counter = Counter("spins")
        threads = [threading.Thread(
            target=lambda: [counter.inc() for _ in range(1000)])
            for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("depth")
        gauge.set(4.0)
        assert gauge.value == 4.0
        gauge.add(-1.5)
        assert gauge.value == 2.5


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
class TestHistogram:
    def test_empty_summary_is_all_zero(self):
        summary = Histogram("latency").summary()
        assert summary == {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                           "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_summary_tracks_observations(self):
        histogram = Histogram("latency")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(10.0)
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0

    def test_quantiles_ordered_and_clamped_to_observed_range(self):
        histogram = Histogram("latency")
        for value in (0.5, 1.5, 2.5, 10.0, 100.0, 250.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["min"] <= summary["p50"] <= summary["p95"] \
            <= summary["p99"] <= summary["max"]

    def test_single_observation_quantiles_are_exact(self):
        histogram = Histogram("latency")
        histogram.observe(7.25)
        summary = histogram.summary()
        assert summary["p50"] == 7.25
        assert summary["p99"] == 7.25

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram("latency").quantile(1.5)

    def test_buckets_are_cumulative_and_end_at_count(self):
        histogram = Histogram("latency")
        for value in (0.001, 0.5, 3.0, 1e6):
            histogram.observe(value)
        buckets = histogram.buckets()
        assert [bound for bound, _ in buckets] == list(BUCKET_BOUNDS)
        cumulative = [count for _, count in buckets]
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == 4
        assert math.isinf(buckets[-1][0])

    def test_extreme_values_fall_into_edge_buckets(self):
        histogram = Histogram("latency")
        histogram.observe(0.0)       # below the smallest bound
        histogram.observe(1e12)      # above the largest finite bound
        assert histogram.count == 2
        summary = histogram.summary()
        assert summary["min"] == 0.0
        assert summary["max"] == 1e12


# ----------------------------------------------------------------------
# flatten_metrics
# ----------------------------------------------------------------------
class TestFlattenMetrics:
    def test_nested_dicts_become_dotted_keys(self):
        out: dict[str, object] = {}
        flatten_metrics("shard", {"shard-00": {"requests": 3}}, out)
        assert out == {"shard.shard-00.requests": 3}

    def test_lists_are_indexed(self):
        out: dict[str, object] = {}
        flatten_metrics("sizes", [5, 7], out)
        assert out == {"sizes.0": 5, "sizes.1": 7}

    def test_non_scalars_are_stringified(self):
        out: dict[str, object] = {}
        flatten_metrics("odd", {"value": object()}, out)
        assert isinstance(out["odd.value"], str)


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_get_or_create_returns_the_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("requests") is registry.counter("requests")
        assert registry.histogram("latency") is registry.histogram("latency")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("requests")
        with pytest.raises(ValueError):
            registry.gauge("requests")

    def test_callback_payloads_flatten_under_prefix(self):
        registry = MetricsRegistry()
        registry.register_callback(
            "cache.candidate", lambda: {"hits": 3, "misses": 1})
        exported = registry.export()
        assert exported["cache.candidate.hits"] == 3
        assert exported["cache.candidate.misses"] == 1

    def test_callback_reregistration_replaces(self):
        registry = MetricsRegistry()
        registry.register_callback("x", lambda: {"v": 1})
        registry.register_callback("x", lambda: {"v": 2})
        assert registry.export()["x.v"] == 2

    def test_unregistered_callback_disappears(self):
        registry = MetricsRegistry()
        registry.register_callback("x", lambda: {"v": 1})
        registry.unregister_callback("x")
        assert "x.v" not in registry.export()

    def test_failing_callback_is_isolated(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc()

        def boom():
            raise RuntimeError("tracker exploded")

        registry.register_callback("broken", boom)
        exported = registry.export()
        assert exported["requests"] == 1
        assert "tracker exploded" in exported["broken.error"]

    def test_export_is_flat_sorted_and_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("serving.requests").inc(2)
        registry.gauge("engine.depth").set(1.5)
        registry.histogram("serving.latency").observe(3.0)
        registry.register_callback("split", lambda: {"v0001": {"count": 1}})
        exported = registry.export()
        assert list(exported) == sorted(exported)
        json.dumps(exported)
        assert exported["serving.requests"] == 2
        assert exported["serving.latency.count"] == 1
        assert "serving.latency.p95" in exported
        assert exported["split.v0001.count"] == 1

    def test_histograms_filtered_by_prefix(self):
        registry = MetricsRegistry()
        registry.histogram("serving.stage.admit")
        registry.histogram("serving.latency")
        registry.counter("serving.stage.bogus.count")
        stages = registry.histograms("serving.stage.")
        assert set(stages) == {"serving.stage.admit"}

    def test_names_and_metric_lookup(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        assert registry.names() == ["a", "b"]
        assert registry.metric("a") is registry.counter("a")
        assert registry.metric("missing") is None
