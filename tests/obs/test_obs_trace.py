"""Unit tests for per-request tracing, sampling, and exemplar retention."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SlowRequestBuffer, Trace, Tracer


# ----------------------------------------------------------------------
# Trace / Span
# ----------------------------------------------------------------------
class TestTrace:
    def test_add_records_duration_in_ms(self):
        trace = Trace(started=10.0)
        trace.add("score", 10.0, 10.025)
        span = trace.spans[0]
        assert span.name == "score"
        assert span.duration_ms == pytest.approx(25.0)

    def test_span_context_manager_times_the_block(self):
        trace = Trace()
        with trace.span("candidates", cache_hit=True):
            pass
        span = trace.spans[0]
        assert span.name == "candidates"
        assert span.duration_ms >= 0.0
        assert span.attrs == {"cache_hit": True}

    def test_offsets_rebase_with_started(self):
        trace = Trace(started=100.0)
        trace.add("admit", 100.5, 100.6)
        before = trace.as_dict()["spans"][0]["offset_ms"]
        trace.started = 100.0 - 1.0  # engine rebases to submit time
        after = trace.as_dict()["spans"][0]["offset_ms"]
        assert before == pytest.approx(500.0)
        assert after == pytest.approx(1500.0)

    def test_duration_of_sums_same_named_spans(self):
        trace = Trace(started=0.0)
        trace.add("score", 0.0, 0.010)
        trace.add("score", 0.020, 0.025)
        trace.add("admit", 0.030, 0.031)
        assert trace.duration_of("score") == pytest.approx(15.0)

    def test_as_dict_is_json_serialisable(self):
        trace = Trace(label="3->5", started=0.0)
        trace.add("admit", 0.0, 0.001, shard="shard-00")
        trace.latency_ms = 1.0
        json.dumps(trace.as_dict())


# ----------------------------------------------------------------------
# SlowRequestBuffer
# ----------------------------------------------------------------------
class TestSlowRequestBuffer:
    def test_keeps_top_k_by_latency_slowest_first(self):
        buffer = SlowRequestBuffer(capacity=3)
        for latency in (5.0, 1.0, 9.0, 3.0, 7.0):
            buffer.offer(latency, {"latency_ms": latency})
        kept = [record["latency_ms"] for record in buffer.snapshot()]
        assert kept == [9.0, 7.0, 5.0]

    def test_fast_request_rejected_once_full(self):
        buffer = SlowRequestBuffer(capacity=2)
        assert buffer.offer(5.0, {}) is True
        assert buffer.offer(6.0, {}) is True
        assert buffer.offer(1.0, {}) is False
        assert len(buffer) == 2

    def test_zero_capacity_keeps_nothing(self):
        buffer = SlowRequestBuffer(capacity=0)
        assert buffer.offer(100.0, {}) is False
        assert buffer.snapshot() == []

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            SlowRequestBuffer(capacity=-1)

    def test_clear_empties_the_buffer(self):
        buffer = SlowRequestBuffer(capacity=2)
        buffer.offer(1.0, {})
        buffer.clear()
        assert len(buffer) == 0


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_by_default(self):
        tracer = Tracer()
        assert not tracer.enabled
        assert tracer.maybe_start() is None

    def test_full_sampling_traces_every_request(self):
        tracer = Tracer(sample=1.0)
        assert tracer.enabled
        assert all(tracer.maybe_start() is not None for _ in range(10))

    def test_stride_sampling_rate(self):
        tracer = Tracer(sample=0.25)
        traced = sum(tracer.maybe_start() is not None for _ in range(100))
        assert traced == 25

    def test_rejects_out_of_range_sample(self):
        with pytest.raises(ValueError):
            Tracer(sample=1.5)
        with pytest.raises(ValueError):
            Tracer(sample=-0.1)

    def test_finish_feeds_stage_histograms(self):
        registry = MetricsRegistry()
        tracer = Tracer(sample=1.0, metrics=registry)
        trace = tracer.maybe_start()
        trace.add("score", 0.0, 0.004)
        tracer.finish(trace, latency_ms=4.0)
        assert tracer.finished == 1
        summary = tracer.stage_summary()
        assert summary["score"]["count"] == 1
        assert summary["score"]["max"] == pytest.approx(4.0)
        assert registry.export()["serving.stage.score.count"] == 1

    def test_finish_retains_exemplars_with_info(self):
        tracer = Tracer(sample=1.0, max_exemplars=2)
        for latency in (3.0, 9.0, 1.0):
            trace = tracer.maybe_start()
            trace.add("score", 0.0, latency / 1000.0)
            tracer.finish(trace, latency_ms=latency, request="0->5")
        records = tracer.exemplars.snapshot()
        assert [r["latency_ms"] for r in records] == [9.0, 3.0]
        assert records[0]["request"] == "0->5"
        assert records[0]["spans"][0]["name"] == "score"

    def test_as_dict_is_json_serialisable(self):
        tracer = Tracer(sample=1.0)
        trace = tracer.maybe_start()
        trace.add("admit", 0.0, 0.001)
        tracer.finish(trace, latency_ms=1.0, shard=None)
        payload = tracer.as_dict()
        json.dumps(payload)
        assert payload["sample"] == 1.0
        assert payload["finished"] == 1
