"""Unit tests for the JSONL snapshot exporter and exposition formats."""

import json
import time

import pytest

from repro.obs.export import (
    SnapshotExporter,
    load_timeline,
    prometheus_lines,
    prometheus_snapshot_lines,
    summarise_timeline,
)
from repro.obs.metrics import MetricsRegistry


class _StaticSource:
    def __init__(self):
        self.calls = 0

    def export(self):
        self.calls += 1
        return {"serving.requests": self.calls}


# ----------------------------------------------------------------------
# SnapshotExporter
# ----------------------------------------------------------------------
class TestSnapshotExporter:
    def test_rejects_non_positive_interval(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotExporter(_StaticSource(), tmp_path / "t.jsonl",
                             interval_s=0.0)

    def test_truncates_previous_timeline(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("stale line\n")
        SnapshotExporter(_StaticSource(), path, interval_s=1.0)
        assert path.read_text() == ""

    def test_stop_always_writes_a_final_snapshot(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with SnapshotExporter(_StaticSource(), path, interval_s=60.0):
            pass  # far shorter than one interval
        snapshots = load_timeline(path)
        assert len(snapshots) == 1
        assert snapshots[0]["metrics"]["serving.requests"] == 1

    def test_periodic_snapshots_accumulate(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with SnapshotExporter(_StaticSource(), path, interval_s=0.02) \
                as exporter:
            deadline = time.time() + 2.0
            while exporter.snapshots_written < 3 and time.time() < deadline:
                time.sleep(0.01)
        snapshots = load_timeline(path)
        assert len(snapshots) >= 3
        elapsed = [snap["elapsed_s"] for snap in snapshots]
        assert elapsed == sorted(elapsed)

    def test_write_errors_are_swallowed(self, tmp_path):
        path = tmp_path / "t.jsonl"
        exporter = SnapshotExporter(_StaticSource(), path, interval_s=1.0)
        exporter.path = tmp_path / "missing" / "t.jsonl"  # unwritable
        exporter.snapshot()
        assert exporter.write_errors == 1
        assert exporter.snapshots_written == 0


# ----------------------------------------------------------------------
# load_timeline / summarise_timeline
# ----------------------------------------------------------------------
class TestTimeline:
    def test_load_skips_blank_and_torn_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good = json.dumps({"ts": 1.0, "elapsed_s": 0.0,
                           "metrics": {"requests": 1}})
        path.write_text(good + "\n\n{\"torn\": \n" + good + "\n")
        assert len(load_timeline(path)) == 2

    def test_summary_reports_first_last_delta(self):
        snapshots = [
            {"ts": 1.0, "elapsed_s": 0.0,
             "metrics": {"requests": 10, "label": "a"}},
            {"ts": 2.0, "elapsed_s": 1.5,
             "metrics": {"requests": 30, "label": "b"}},
        ]
        summary = summarise_timeline(snapshots)
        assert summary["snapshots"] == 2
        assert summary["duration_s"] == pytest.approx(1.5)
        assert summary["series"]["requests"] == {
            "first": 10, "last": 30, "delta": 20}
        assert "label" not in summary["series"]  # non-numeric skipped

    def test_empty_timeline_summary(self):
        assert summarise_timeline([]) == {"snapshots": 0, "duration_s": 0.0,
                                          "series": {}}


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
class TestPrometheus:
    def test_typed_samples_for_registry_metrics(self):
        registry = MetricsRegistry()
        registry.counter("serving.requests").inc(3)
        registry.gauge("engine.depth").set(1.5)
        registry.histogram("serving.latency").observe(2.0)
        lines = prometheus_lines(registry)
        text = "\n".join(lines)
        assert "# TYPE serving_requests counter" in text
        assert "serving_requests 3" in text
        assert "# TYPE engine_depth gauge" in text
        assert "# TYPE serving_latency histogram" in text
        assert 'serving_latency_bucket{le="+Inf"} 1' in text
        assert "serving_latency_count 1" in text

    def test_callback_payloads_become_untyped_samples(self):
        registry = MetricsRegistry()
        registry.register_callback(
            "cache.candidate", lambda: {"hits": 4, "note": "warm"})
        text = "\n".join(prometheus_lines(registry))
        assert "cache_candidate_hits 4" in text
        assert "note" not in text  # non-numeric skipped

    def test_snapshot_lines_render_flat_dicts(self):
        lines = prometheus_snapshot_lines(
            {"serving.requests": 7, "shard.shard-00.requests.local": 2,
             "scoring.backend": "fused"})
        assert lines == ["serving_requests 7",
                         "shard_shard_00_requests_local 2"]
