"""Property-based tests: weighted Jaccard distance is a metric.

``1 - WJ`` over weighted edge sets is the Jaccard/Tanimoto distance,
which satisfies the triangle inequality — a strong correctness check for
the ground-truth labelling, exercised over random path triples drawn
from Yen enumerations on random grids.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import grid_network, jaccard, weighted_jaccard, yen_k_shortest_paths


@st.composite
def path_triples(draw):
    seed = draw(st.integers(0, 5_000))
    net = grid_network(4, 5, seed=seed)
    ids = net.vertex_ids()
    rng = np.random.default_rng(seed + 1)
    source = int(ids[int(rng.integers(len(ids)))])
    remaining = [v for v in ids if v != source]
    target = int(remaining[int(rng.integers(len(remaining)))])
    paths = yen_k_shortest_paths(net, source, target, 6)
    indices = rng.integers(0, len(paths), size=3)
    return paths[indices[0]], paths[indices[1]], paths[indices[2]]


@given(path_triples())
@settings(max_examples=30, deadline=None)
def test_weighted_jaccard_triangle_inequality(triple):
    a, b, c = triple

    def distance(x, y):
        return 1.0 - weighted_jaccard(x, y)

    assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-9


@given(path_triples())
@settings(max_examples=30, deadline=None)
def test_unweighted_jaccard_triangle_inequality(triple):
    a, b, c = triple

    def distance(x, y):
        return 1.0 - jaccard(x, y)

    assert distance(a, c) <= distance(a, b) + distance(b, c) + 1e-9


@given(path_triples())
@settings(max_examples=30, deadline=None)
def test_identity_of_indiscernibles(triple):
    a, b, _ = triple
    if weighted_jaccard(a, b) == pytest.approx(1.0):
        # Full similarity must mean identical edge sets.
        assert a.edge_set == b.edge_set


@given(path_triples())
@settings(max_examples=30, deadline=None)
def test_weighted_jaccard_subset_monotonicity(triple):
    """A path is at least as similar to itself as to anything else."""
    a, b, _ = triple
    assert weighted_jaccard(a, a) >= weighted_jaccard(a, b)
