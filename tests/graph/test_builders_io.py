"""Tests for network generators, JSON/CSV persistence, and OSM interop."""

import pytest

from repro.errors import SerializationError
from repro.graph import (
    RoadCategory,
    grid_network,
    load_network_csv,
    load_network_json,
    load_osm_xml,
    network_from_dict,
    network_to_dict,
    north_jutland_like,
    ring_radial_network,
    save_network_csv,
    save_network_json,
    save_osm_xml,
)


class TestGridBuilder:
    def test_strongly_connected(self):
        assert grid_network(6, 6, seed=0).is_strongly_connected()

    def test_dense_ids(self):
        net = grid_network(5, 5, seed=1)
        assert set(net.vertex_ids()) == set(range(net.num_vertices))

    def test_deterministic(self):
        a = grid_network(6, 6, seed=42)
        b = grid_network(6, 6, seed=42)
        assert a.num_vertices == b.num_vertices
        assert {e.key for e in a.edges()} == {e.key for e in b.edges()}

    def test_seeds_differ(self):
        a = grid_network(6, 6, seed=1)
        b = grid_network(6, 6, seed=2)
        assert {e.key for e in a.edges()} != {e.key for e in b.edges()} or (
            [v.x for v in a.vertices()] != [v.x for v in b.vertices()]
        )

    def test_has_arterials_and_locals(self):
        net = grid_network(8, 8, seed=3)
        categories = {e.category for e in net.edges()}
        assert RoadCategory.ARTERIAL in categories
        assert RoadCategory.LOCAL in categories

    def test_no_removal_keeps_full_grid(self):
        net = grid_network(4, 4, seed=0, removal_probability=0.0)
        assert net.num_vertices == 16
        # Full 4x4 grid: 2 * (3*4 + 3*4) = 48 directed edges.
        assert net.num_edges == 48

    def test_lengths_at_least_euclidean(self):
        net = grid_network(5, 5, seed=4)
        for e in net.edges():
            assert e.length >= net.euclidean(e.source, e.target) - 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            grid_network(1, 5)
        with pytest.raises(ValueError):
            grid_network(4, 4, perturbation=0.7)
        with pytest.raises(ValueError):
            grid_network(4, 4, removal_probability=1.0)
        with pytest.raises(ValueError):
            grid_network(4, 4, arterial_every=1)


class TestRingRadialBuilder:
    def test_structure(self):
        net = ring_radial_network(rings=3, spokes=8, seed=0)
        assert net.is_strongly_connected()
        assert net.num_vertices == 1 + 3 * 8

    def test_ring_roads_are_arterial(self):
        net = ring_radial_network(rings=2, spokes=6, seed=0)
        categories = {e.category for e in net.edges()}
        assert RoadCategory.ARTERIAL in categories

    def test_validation(self):
        with pytest.raises(ValueError):
            ring_radial_network(rings=0)
        with pytest.raises(ValueError):
            ring_radial_network(spokes=2)


class TestRegionBuilder:
    def test_strongly_connected(self, region_network):
        assert region_network.is_strongly_connected()

    def test_has_motorways(self, region_network):
        categories = {e.category for e in region_network.edges()}
        assert RoadCategory.MOTORWAY in categories

    def test_reasonable_size(self, region_network):
        assert region_network.num_vertices > 30
        assert region_network.num_edges > 80

    def test_deterministic(self):
        a = north_jutland_like(num_towns=3, seed=5)
        b = north_jutland_like(num_towns=3, seed=5)
        assert {e.key for e in a.edges()} == {e.key for e in b.edges()}

    def test_validation(self):
        with pytest.raises(ValueError):
            north_jutland_like(num_towns=1)
        with pytest.raises(ValueError):
            north_jutland_like(town_size_range=(5, 3))


class TestJsonRoundTrip:
    def test_dict_roundtrip(self, tiny_network):
        doc = network_to_dict(tiny_network)
        restored = network_from_dict(doc)
        assert restored.num_vertices == tiny_network.num_vertices
        assert {e.key for e in restored.edges()} == {e.key for e in tiny_network.edges()}

    def test_preserves_attributes(self, tiny_network):
        restored = network_from_dict(network_to_dict(tiny_network))
        edge = restored.edge(0, 2)
        assert edge.length == 250.0
        assert edge.speed == 110.0
        assert edge.category == RoadCategory.MOTORWAY

    def test_file_roundtrip(self, tiny_network, tmp_path):
        path = tmp_path / "net.json"
        save_network_json(tiny_network, path)
        restored = load_network_json(path)
        assert restored.num_edges == tiny_network.num_edges

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_network_json(tmp_path / "missing.json")

    def test_invalid_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(SerializationError):
            load_network_json(bad)

    def test_wrong_version(self, tiny_network):
        doc = network_to_dict(tiny_network)
        doc["format_version"] = 99
        with pytest.raises(SerializationError):
            network_from_dict(doc)

    def test_malformed_document(self):
        with pytest.raises(SerializationError):
            network_from_dict({"format_version": 1, "vertices": [{"id": 0}], "edges": []})

    def test_non_mapping_rejected(self):
        with pytest.raises(SerializationError):
            network_from_dict([1, 2, 3])


class TestCsvRoundTrip:
    def test_roundtrip(self, small_grid, tmp_path):
        save_network_csv(small_grid, tmp_path)
        restored = load_network_csv(tmp_path)
        assert restored.num_vertices == small_grid.num_vertices
        assert {e.key for e in restored.edges()} == {e.key for e in small_grid.edges()}

    def test_lengths_preserved(self, tiny_network, tmp_path):
        save_network_csv(tiny_network, tmp_path)
        restored = load_network_csv(tmp_path)
        for e in tiny_network.edges():
            assert restored.edge(*e.key).length == pytest.approx(e.length)

    def test_missing_files(self, tmp_path):
        with pytest.raises(SerializationError):
            load_network_csv(tmp_path)


class TestOsmRoundTrip:
    def test_topology_survives(self, tiny_network, tmp_path):
        path = tmp_path / "tiny.osm"
        save_osm_xml(tiny_network, path)
        restored = load_osm_xml(path, keep_largest_scc=False)
        assert restored.num_vertices == tiny_network.num_vertices
        assert restored.num_edges == tiny_network.num_edges

    def test_oneway_preserved(self, tiny_network, tmp_path):
        path = tmp_path / "tiny.osm"
        save_osm_xml(tiny_network, path)
        restored = load_osm_xml(path, keep_largest_scc=False)
        # The 0->2 motorway is one-way; count antiparallel pairs instead of ids
        # because OSM ids are renumbered in document order.
        def oneway_count(net):
            return sum(1 for e in net.edges() if not net.has_edge(e.target, e.source))

        assert oneway_count(restored) == oneway_count(tiny_network) == 1

    def test_categories_survive(self, tiny_network, tmp_path):
        path = tmp_path / "tiny.osm"
        save_osm_xml(tiny_network, path)
        restored = load_osm_xml(path, keep_largest_scc=False)
        assert {e.category for e in restored.edges()} == {
            e.category for e in tiny_network.edges()
        }

    def test_lengths_close_to_euclidean(self, tiny_network, tmp_path):
        # OSM stores geometry, not lengths: restored lengths are haversine
        # distances, close to the original euclidean separations.
        path = tmp_path / "tiny.osm"
        save_osm_xml(tiny_network, path)
        restored = load_osm_xml(path, keep_largest_scc=False)
        for e in restored.edges():
            euclid = restored.euclidean(e.source, e.target)
            assert e.length == pytest.approx(euclid, rel=0.02)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_osm_xml(tmp_path / "none.osm")

    def test_invalid_xml(self, tmp_path):
        bad = tmp_path / "bad.osm"
        bad.write_text("<osm><node id='1'", encoding="utf-8")
        with pytest.raises(SerializationError):
            load_osm_xml(bad)

    def test_empty_osm_rejected(self, tmp_path):
        empty = tmp_path / "empty.osm"
        empty.write_text("<osm version='0.6'></osm>", encoding="utf-8")
        with pytest.raises(SerializationError):
            load_osm_xml(empty)

    def test_unknown_highway_ignored(self, tmp_path):
        doc = """<?xml version='1.0'?>
        <osm version='0.6'>
          <node id='1' lat='57.0' lon='9.9'/>
          <node id='2' lat='57.01' lon='9.9'/>
          <way id='1' version='1'>
            <nd ref='1'/><nd ref='2'/>
            <tag k='highway' v='footway'/>
          </way>
        </osm>"""
        path = tmp_path / "foot.osm"
        path.write_text(doc, encoding="utf-8")
        net = load_osm_xml(path, keep_largest_scc=False)
        assert net.num_edges == 0

    def test_maxspeed_parsing(self, tmp_path):
        doc = """<?xml version='1.0'?>
        <osm version='0.6'>
          <node id='1' lat='57.0' lon='9.9'/>
          <node id='2' lat='57.01' lon='9.9'/>
          <way id='1' version='1'>
            <nd ref='1'/><nd ref='2'/>
            <tag k='highway' v='primary'/>
            <tag k='maxspeed' v='60'/>
          </way>
        </osm>"""
        path = tmp_path / "speed.osm"
        path.write_text(doc, encoding="utf-8")
        net = load_osm_xml(path, keep_largest_scc=False)
        assert next(net.edges()).speed == 60.0
