"""Tests for the ALT landmark index."""

import pytest

from repro.errors import VertexNotFoundError
from repro.graph import shortest_path, travel_time_cost
from repro.graph.landmarks import LandmarkIndex
from repro.graph.shortest_path import dijkstra, length_cost


@pytest.fixture(scope="module")
def index(small_grid):
    return LandmarkIndex(small_grid, num_landmarks=4, rng=0)


class TestConstruction:
    def test_landmark_count(self, index):
        assert len(index.landmarks) == 4

    def test_landmarks_distinct(self, index):
        assert len(set(index.landmarks)) == len(index.landmarks)

    def test_capped_at_network_size(self, tiny_network):
        index = LandmarkIndex(tiny_network, num_landmarks=100, rng=0)
        assert len(index.landmarks) <= tiny_network.num_vertices

    def test_validation(self, small_grid):
        with pytest.raises(ValueError):
            LandmarkIndex(small_grid, num_landmarks=0)


class TestBounds:
    def test_bound_is_admissible_everywhere(self, small_grid, index):
        """The landmark bound must never exceed the true distance."""
        ids = small_grid.vertex_ids()
        target = ids[-1]
        dist, _ = dijkstra(small_grid, target)  # d(target, v); need reverse
        for source in ids[::5]:
            true_distance = shortest_path(small_grid, source, target).length \
                if source != target else 0.0
            assert index.lower_bound(source, target) <= true_distance + 1e-6

    def test_bound_to_self_is_zero_ish(self, small_grid, index):
        vertex = small_grid.vertex_ids()[3]
        assert index.lower_bound(vertex, vertex) == pytest.approx(0.0, abs=1e-9)

    def test_bound_non_negative(self, small_grid, index):
        ids = small_grid.vertex_ids()
        for source in ids[::7]:
            for target in ids[::11]:
                assert index.lower_bound(source, target) >= 0.0

    def test_missing_vertex(self, index):
        with pytest.raises(VertexNotFoundError):
            index.lower_bound(0, 10_000)


class TestAltSearch:
    def test_matches_dijkstra(self, small_grid, index):
        ids = small_grid.vertex_ids()
        for source, target in [(ids[0], ids[-1]), (ids[5], ids[20])]:
            alt = index.shortest_path(source, target)
            oracle = shortest_path(small_grid, source, target)
            assert alt.length == pytest.approx(oracle.length)

    def test_travel_time_index(self, small_grid):
        index = LandmarkIndex(small_grid, num_landmarks=3,
                              cost=travel_time_cost, rng=1)
        ids = small_grid.vertex_ids()
        alt = index.shortest_path(ids[2], ids[-2])
        oracle = shortest_path(small_grid, ids[2], ids[-2], travel_time_cost)
        assert alt.travel_time == pytest.approx(oracle.travel_time)

    def test_region_network(self, region_network):
        index = LandmarkIndex(region_network, num_landmarks=6, rng=2)
        ids = region_network.vertex_ids()
        alt = index.shortest_path(ids[0], ids[-1])
        oracle = shortest_path(region_network, ids[0], ids[-1])
        assert alt.length == pytest.approx(oracle.length)

    def test_bound_often_beats_euclidean_for_time_cost(self, region_network):
        """For travel-time costs the euclidean bound (metres) is useless;
        the landmark bound is in the right unit and much tighter."""
        index = LandmarkIndex(region_network, num_landmarks=6,
                              cost=travel_time_cost, rng=3)
        ids = region_network.vertex_ids()
        source, target = ids[1], ids[-2]
        bound = index.lower_bound(source, target)
        true_time = shortest_path(region_network, source, target,
                                  travel_time_cost).travel_time
        assert 0.0 < bound <= true_time + 1e-6
        assert bound >= 0.3 * true_time  # reasonably tight in practice
