"""Tests for path-similarity measures (the paper's ground-truth scores)."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    Path,
    get_similarity,
    jaccard,
    overlap_ratio,
    time_weighted_jaccard,
    vertex_jaccard,
    weighted_jaccard,
)


@pytest.fixture
def paths(tiny_network):
    return {
        "top": Path(tiny_network, [0, 1, 2]),          # 200m via top row
        "motorway": Path(tiny_network, [0, 2]),        # 250m direct
        "bottom": Path(tiny_network, [0, 3, 4, 5, 2]), # 400m via bottom row
        "mixed": Path(tiny_network, [0, 1, 4, 5, 2]),  # 350m mixed
    }


class TestWeightedJaccard:
    def test_identical_paths_score_one(self, paths):
        assert weighted_jaccard(paths["top"], paths["top"]) == pytest.approx(1.0)

    def test_disjoint_paths_score_zero(self, paths):
        assert weighted_jaccard(paths["top"], paths["bottom"]) == 0.0

    def test_known_value(self, paths):
        # top = {(0,1),(1,2)}; mixed = {(0,1),(1,4),(4,5),(5,2)}
        # shared length = 100; union = 100+100+50+100+100 = 450.
        assert weighted_jaccard(paths["top"], paths["mixed"]) == pytest.approx(100 / 450)

    def test_symmetry(self, paths):
        assert weighted_jaccard(paths["top"], paths["mixed"]) == pytest.approx(
            weighted_jaccard(paths["mixed"], paths["top"])
        )

    def test_bounded(self, paths):
        for a in paths.values():
            for b in paths.values():
                assert 0.0 <= weighted_jaccard(a, b) <= 1.0

    def test_direction_sensitivity(self, tiny_network):
        forward = Path(tiny_network, [0, 1])
        backward = Path(tiny_network, [1, 0])
        # Directed edges (0,1) and (1,0) are different edges.
        assert weighted_jaccard(forward, backward) == 0.0

    def test_cross_network_rejected(self, tiny_network, small_grid):
        a = Path(tiny_network, [0, 1])
        ids = small_grid.vertex_ids()
        from repro.graph import shortest_path

        b = shortest_path(small_grid, ids[0], ids[1])
        with pytest.raises(GraphError):
            weighted_jaccard(a, b)


class TestOtherMeasures:
    def test_unweighted_jaccard_counts_edges(self, paths):
        # top ∩ mixed = 1 edge; union = 5 edges.
        assert jaccard(paths["top"], paths["mixed"]) == pytest.approx(0.2)

    def test_vertex_jaccard(self, paths):
        # top={0,1,2}, bottom={0,3,4,5,2}: shared {0,2} of union {0,1,2,3,4,5}.
        assert vertex_jaccard(paths["top"], paths["bottom"]) == pytest.approx(2 / 6)

    def test_time_weighted_differs_from_length_weighted(self, paths):
        # Motorway edges distort time weights relative to length weights.
        lw = weighted_jaccard(paths["motorway"], paths["mixed"])
        tw = time_weighted_jaccard(paths["motorway"], paths["mixed"])
        assert lw == tw == 0.0  # disjoint, both zero
        lw2 = weighted_jaccard(paths["top"], paths["mixed"])
        tw2 = time_weighted_jaccard(paths["top"], paths["mixed"])
        assert lw2 != pytest.approx(tw2)

    def test_overlap_ratio_asymmetric(self, tiny_network):
        long_path = Path(tiny_network, [0, 1, 4, 5, 2])
        sub = Path(tiny_network, [0, 1, 4])
        assert overlap_ratio(sub, long_path) == pytest.approx(1.0)
        assert overlap_ratio(long_path, sub) < 1.0

    def test_overlap_ratio_cross_network_rejected(self, tiny_network, small_grid):
        from repro.graph import shortest_path

        a = Path(tiny_network, [0, 1])
        ids = small_grid.vertex_ids()
        b = shortest_path(small_grid, ids[0], ids[1])
        with pytest.raises(GraphError):
            overlap_ratio(a, b)


class TestRegistry:
    def test_lookup(self):
        assert get_similarity("weighted_jaccard") is weighted_jaccard
        assert get_similarity("jaccard") is jaccard

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown similarity"):
            get_similarity("cosine")
