"""Tests for Dijkstra / bidirectional / A*, with networkx as the oracle."""

import networkx as nx
import pytest

from repro.errors import NoPathError, VertexNotFoundError
from repro.graph import (
    RoadNetwork,
    astar,
    bidirectional_dijkstra,
    dijkstra,
    length_cost,
    shortest_path,
    shortest_path_cost,
    travel_time_cost,
    travel_time_heuristic,
)


class TestDijkstra:
    def test_known_shortest(self, tiny_network):
        path = shortest_path(tiny_network, 3, 2, cost=length_cost)
        assert path.vertices == (3, 4, 1, 2) or path.length <= 300.0

    def test_distances_complete(self, tiny_network):
        dist, _ = dijkstra(tiny_network, 0)
        assert set(dist) == set(tiny_network.vertex_ids())
        assert dist[0] == 0.0

    def test_against_networkx_lengths(self, small_grid):
        g = small_grid.to_networkx()
        dist, _ = dijkstra(small_grid, 0, cost=length_cost)
        expected = nx.single_source_dijkstra_path_length(g, 0, weight="length")
        assert set(dist) == set(expected)
        for node, d in expected.items():
            assert dist[node] == pytest.approx(d)

    def test_travel_time_against_networkx(self, small_grid):
        g = small_grid.to_networkx()
        dist, _ = dijkstra(small_grid, 5, cost=travel_time_cost)
        expected = nx.single_source_dijkstra_path_length(g, 5, weight="travel_time")
        for node, d in expected.items():
            assert dist[node] == pytest.approx(d)

    def test_early_stop_with_target(self, small_grid):
        ids = small_grid.vertex_ids()
        target = ids[1]
        dist, _ = dijkstra(small_grid, ids[0], target=target)
        assert target in dist

    def test_banned_vertex_excluded(self, tiny_network):
        path = shortest_path(tiny_network, 3, 2, banned_vertices={4})
        assert 4 not in path.vertices

    def test_banned_edge_excluded(self, tiny_network):
        direct = shortest_path(tiny_network, 0, 2)
        banned = shortest_path(tiny_network, 0, 2, banned_edges={(0, 2)})
        assert direct.vertices != banned.vertices or (0, 2) not in banned.edge_set

    def test_banned_source_empty(self, tiny_network):
        dist, prev = dijkstra(tiny_network, 0, banned_vertices={0})
        assert dist == {} and prev == {}

    def test_missing_source(self, tiny_network):
        with pytest.raises(VertexNotFoundError):
            dijkstra(tiny_network, 404)

    def test_negative_cost_rejected(self, tiny_network):
        with pytest.raises(ValueError):
            dijkstra(tiny_network, 0, cost=lambda e: -1.0)

    def test_no_path_raises(self):
        net = RoadNetwork()
        net.add_vertex(0, 0, 0)
        net.add_vertex(1, 1, 0)
        net.add_vertex(2, 2, 0)
        net.add_edge(0, 1, length=1.0)
        with pytest.raises(NoPathError):
            shortest_path(net, 1, 0)

    def test_same_source_target_raises(self, tiny_network):
        with pytest.raises(NoPathError):
            shortest_path(tiny_network, 0, 0)

    def test_shortest_path_cost_matches_path(self, small_grid):
        ids = small_grid.vertex_ids()
        s, d = ids[0], ids[-1]
        assert shortest_path_cost(small_grid, s, d) == pytest.approx(
            shortest_path(small_grid, s, d).length
        )

    def test_shortest_path_cost_zero_for_self(self, tiny_network):
        assert shortest_path_cost(tiny_network, 0, 0) == 0.0


class TestBidirectional:
    def test_matches_dijkstra_costs_grid(self, small_grid):
        ids = small_grid.vertex_ids()
        pairs = [(ids[0], ids[-1]), (ids[3], ids[17]), (ids[10], ids[42])]
        for s, d in pairs:
            uni = shortest_path(small_grid, s, d)
            bi = bidirectional_dijkstra(small_grid, s, d)
            assert bi.length == pytest.approx(uni.length)
            assert bi.source == s and bi.target == d

    def test_matches_on_region(self, region_network):
        ids = region_network.vertex_ids()
        s, d = ids[2], ids[-3]
        assert bidirectional_dijkstra(region_network, s, d).length == pytest.approx(
            shortest_path(region_network, s, d).length
        )

    def test_travel_time_cost(self, small_grid):
        ids = small_grid.vertex_ids()
        s, d = ids[1], ids[-2]
        bi = bidirectional_dijkstra(small_grid, s, d, cost=travel_time_cost)
        uni = shortest_path(small_grid, s, d, cost=travel_time_cost)
        assert bi.travel_time == pytest.approx(uni.travel_time)

    def test_no_path(self):
        net = RoadNetwork()
        net.add_vertex(0, 0, 0)
        net.add_vertex(1, 1, 0)
        net.add_edge(0, 1, length=1.0)
        with pytest.raises(NoPathError):
            bidirectional_dijkstra(net, 1, 0)

    def test_self_raises(self, tiny_network):
        with pytest.raises(NoPathError):
            bidirectional_dijkstra(tiny_network, 2, 2)


class TestAStar:
    def test_matches_dijkstra_length(self, small_grid):
        ids = small_grid.vertex_ids()
        for s, d in [(ids[0], ids[-1]), (ids[7], ids[30])]:
            assert astar(small_grid, s, d).length == pytest.approx(
                shortest_path(small_grid, s, d).length
            )

    def test_travel_time_heuristic_admissible(self, region_network):
        ids = region_network.vertex_ids()
        s, d = ids[0], ids[-1]
        h = travel_time_heuristic(region_network, d)
        found = astar(region_network, s, d, cost=travel_time_cost, heuristic=h)
        oracle = shortest_path(region_network, s, d, cost=travel_time_cost)
        assert found.travel_time == pytest.approx(oracle.travel_time)

    def test_no_path(self):
        net = RoadNetwork()
        net.add_vertex(0, 0.0, 0.0)
        net.add_vertex(1, 10.0, 0.0)
        net.add_edge(1, 0, length=10.0)
        with pytest.raises(NoPathError):
            astar(net, 0, 1)

    def test_missing_vertices(self, tiny_network):
        with pytest.raises(VertexNotFoundError):
            astar(tiny_network, 0, 404)

    def test_paths_are_valid(self, region_network):
        ids = region_network.vertex_ids()
        path = astar(region_network, ids[4], ids[-5])
        # Path construction validates every edge; reaching here means valid.
        assert path.source == ids[4]
        assert path.target == ids[-5]
