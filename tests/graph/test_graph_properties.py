"""Property-based tests for the graph substrate (hypothesis)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    Path,
    dijkstra,
    grid_network,
    jaccard,
    shortest_path,
    vertex_jaccard,
    weighted_jaccard,
    yen_k_shortest_paths,
)


@st.composite
def grids(draw):
    rows = draw(st.integers(3, 6))
    cols = draw(st.integers(3, 6))
    seed = draw(st.integers(0, 10_000))
    return grid_network(rows, cols, seed=seed)


@st.composite
def grid_and_pair(draw):
    net = draw(grids())
    ids = net.vertex_ids()
    source = draw(st.sampled_from(ids))
    target = draw(st.sampled_from([v for v in ids if v != source]))
    return net, source, target


@given(grid_and_pair())
@settings(max_examples=25, deadline=None)
def test_dijkstra_matches_networkx(case):
    net, source, target = case
    ours = shortest_path(net, source, target)
    expected = nx.dijkstra_path_length(net.to_networkx(), source, target, weight="length")
    assert ours.length == pytest.approx(expected)


@given(grid_and_pair())
@settings(max_examples=25, deadline=None)
def test_triangle_inequality_of_sp_distances(case):
    """d(s,t) <= d(s,m) + d(m,t) for any midpoint m."""
    net, source, target = case
    dist, _ = dijkstra(net, source)
    midpoint = net.vertex_ids()[len(net.vertex_ids()) // 2]
    if midpoint in (source, target):
        return
    dist_mid, _ = dijkstra(net, midpoint)
    assert dist[target] <= dist[midpoint] + dist_mid[target] + 1e-9


@given(grid_and_pair())
@settings(max_examples=20, deadline=None)
def test_yen_sorted_unique_loopless(case):
    net, source, target = case
    paths = yen_k_shortest_paths(net, source, target, 5)
    lengths = [p.length for p in paths]
    assert lengths == sorted(lengths)
    assert len({p.vertices for p in paths}) == len(paths)
    assert all(p.is_simple() for p in paths)


@given(grid_and_pair(), st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_similarity_axioms(case, extra_seed):
    """Identity, symmetry, boundedness of all similarity measures."""
    net, source, target = case
    paths = yen_k_shortest_paths(net, source, target, 3)
    rng = np.random.default_rng(extra_seed)
    a = paths[int(rng.integers(0, len(paths)))]
    b = paths[int(rng.integers(0, len(paths)))]
    for sim in (weighted_jaccard, jaccard, vertex_jaccard):
        assert sim(a, a) == pytest.approx(1.0)
        assert sim(a, b) == pytest.approx(sim(b, a))
        assert 0.0 <= sim(a, b) <= 1.0


@given(grid_and_pair())
@settings(max_examples=20, deadline=None)
def test_path_length_consistency(case):
    """Path.length equals the sum of its edge lengths."""
    net, source, target = case
    path = shortest_path(net, source, target)
    total = sum(net.edge(u, v).length for u, v in path.edge_keys)
    assert path.length == pytest.approx(total)


@given(grids())
@settings(max_examples=15, deadline=None)
def test_generated_grids_strongly_connected(net):
    assert net.is_strongly_connected()
    assert set(net.vertex_ids()) == set(range(net.num_vertices))


@given(grid_and_pair())
@settings(max_examples=20, deadline=None)
def test_weighted_jaccard_vs_unweighted_on_uniform_lengths(case):
    """On paths sharing equal-length edges the two Jaccards stay within
    the interval spanned by edge-length variation; sanity-bound check."""
    net, source, target = case
    paths = yen_k_shortest_paths(net, source, target, 2)
    if len(paths) < 2:
        return
    a, b = paths[0], paths[1]
    wj, uj = weighted_jaccard(a, b), jaccard(a, b)
    # Both zero or both nonzero.
    assert (wj == 0) == (uj == 0)
