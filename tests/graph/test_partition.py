"""Region partitioning: invariants, methods, derived subgraphs."""

import pytest

from repro.errors import ConfigError, VertexNotFoundError
from repro.graph import (
    GraphPartition,
    bfs_partition,
    grid_partition,
    partition_network,
    voronoi_partition,
)
from repro.graph.partition import PARTITION_METHODS


ALL_METHODS = sorted(PARTITION_METHODS)


class TestPartitionInvariants:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_every_vertex_in_exactly_one_shard(self, region_network, method):
        partition = partition_network(region_network, 3, method=method)
        assigned = [vid for shard in partition.shards for vid in shard.nodes]
        assert sorted(assigned) == sorted(region_network.vertex_ids())
        for vid in region_network.vertex_ids():
            assert vid in partition.shards[partition.shard_of(vid)]

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_no_empty_shards_and_dense_ids(self, region_network, method):
        partition = partition_network(region_network, 4, method=method)
        assert all(shard.size > 0 for shard in partition.shards)
        assert [shard.shard_id for shard in partition.shards] == \
            list(range(partition.num_shards))

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_boundary_nodes_touch_other_shards(self, region_network, method):
        partition = partition_network(region_network, 3, method=method)
        for shard in partition.shards:
            for vid in shard.boundary:
                neighbours = (region_network.successors(vid)
                              + region_network.predecessors(vid))
                assert any(partition.shard_of(n) != shard.shard_id
                           for n in neighbours)
            # Interior nodes must have purely intra-shard neighbourhoods.
            for vid in shard.interior:
                neighbours = (region_network.successors(vid)
                              + region_network.predecessors(vid))
                assert all(partition.shard_of(n) == shard.shard_id
                           for n in neighbours)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_cut_edges_match_assignment(self, region_network, method):
        partition = partition_network(region_network, 3, method=method)
        cut = sum(1 for edge in region_network.edges()
                  if not partition.same_shard(edge.source, edge.target))
        assert partition.cut_edges == cut

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_deterministic_per_seed(self, region_network, method):
        first = partition_network(region_network, 3, method=method, rng=5)
        second = partition_network(region_network, 3, method=method, rng=5)
        assert all(a.nodes == b.nodes
                   for a, b in zip(first.shards, second.shards))

    def test_single_shard_has_no_boundary(self, region_network):
        partition = bfs_partition(region_network, 1)
        assert partition.num_shards == 1
        assert partition.cut_edges == 0
        assert not partition.shards[0].boundary

    def test_bfs_shards_are_balanced(self, region_network):
        partition = bfs_partition(region_network, 4, rng=0)
        assert partition.balance() < 1.5


class TestDerivedSubgraphs:
    def test_subnetwork_preserves_global_ids_and_edges(self, region_network):
        partition = voronoi_partition(region_network, 3, rng=0)
        shard = partition.shards[0]
        sub = partition.subnetwork(0)
        assert sorted(sub.vertex_ids()) == sorted(shard.nodes)
        for edge in sub.edges():
            original = region_network.edge(edge.source, edge.target)
            assert original.length == edge.length
        # Memoised: the same object comes back.
        assert partition.subnetwork(0) is sub

    def test_corridor_contains_both_shards_and_cut_edges(self, region_network):
        partition = voronoi_partition(region_network, 3, rng=0)
        corridor = partition.corridor(0, 1)
        union = set(partition.shards[0].nodes) | set(partition.shards[1].nodes)
        assert set(corridor.vertex_ids()) == union
        cut_01 = [edge for edge in region_network.edges()
                  if {partition.shard_of(edge.source),
                      partition.shard_of(edge.target)} == {0, 1}]
        for edge in cut_01:
            assert corridor.has_edge(edge.source, edge.target)
        assert partition.corridor(1, 0) is corridor  # unordered memo

    def test_corridor_of_same_shard_is_the_subnetwork(self, region_network):
        partition = voronoi_partition(region_network, 2, rng=0)
        assert partition.corridor(1, 1) is partition.subnetwork(1)


class TestValidationAndErrors:
    def test_unknown_vertex_raises(self, region_network):
        partition = bfs_partition(region_network, 2)
        with pytest.raises(VertexNotFoundError):
            partition.shard_of(10_000_000)

    def test_unknown_method_rejected(self, region_network):
        with pytest.raises(ConfigError):
            partition_network(region_network, 2, method="metis5000")

    def test_bad_shard_counts_rejected(self, region_network):
        with pytest.raises(ConfigError):
            bfs_partition(region_network, 0)
        with pytest.raises(ConfigError):
            bfs_partition(region_network, region_network.num_vertices + 1)

    def test_incomplete_assignment_rejected(self, tiny_network):
        assignment = {vid: 0 for vid in tiny_network.vertex_ids()}
        del assignment[0]
        with pytest.raises(ConfigError):
            GraphPartition(tiny_network, assignment)

    def test_sparse_shard_ids_rejected(self, tiny_network):
        assignment = {vid: (0 if vid < 3 else 2)
                      for vid in tiny_network.vertex_ids()}
        with pytest.raises(ConfigError):
            GraphPartition(tiny_network, assignment)

    def test_grid_partition_reports_realised_shard_count(self, region_network):
        partition = grid_partition(region_network, 4, rng=0)
        # The realised count may differ from the request (empty cells
        # collapse, the ceil factorisation may add one) but must be
        # dense, non-empty, and at least 2 for a multi-town region.
        assert partition.num_shards >= 2
        assert all(shard.size > 0 for shard in partition.shards)
