"""Unit tests for RoadNetwork structure and connectivity."""

import math

import pytest

from repro.errors import EdgeNotFoundError, GraphError, VertexNotFoundError
from repro.graph import RoadCategory, RoadNetwork


@pytest.fixture
def empty() -> RoadNetwork:
    return RoadNetwork(name="empty")


@pytest.fixture
def pair() -> RoadNetwork:
    net = RoadNetwork()
    net.add_vertex(0, 0.0, 0.0)
    net.add_vertex(1, 300.0, 400.0)
    return net


class TestVertices:
    def test_add_and_lookup(self, pair):
        v = pair.vertex(0)
        assert (v.x, v.y) == (0.0, 0.0)

    def test_duplicate_vertex_rejected(self, pair):
        with pytest.raises(GraphError):
            pair.add_vertex(0, 1.0, 1.0)

    def test_missing_vertex_raises(self, pair):
        with pytest.raises(VertexNotFoundError):
            pair.vertex(99)

    def test_contains(self, pair):
        assert 0 in pair
        assert 99 not in pair

    def test_counts(self, pair):
        assert pair.num_vertices == 2
        assert pair.num_edges == 0

    def test_euclidean(self, pair):
        assert pair.euclidean(0, 1) == pytest.approx(500.0)

    def test_vertex_distance_to(self, pair):
        assert pair.vertex(0).distance_to(pair.vertex(1)) == pytest.approx(500.0)

    def test_bounding_box(self, pair):
        assert pair.bounding_box() == (0.0, 0.0, 300.0, 400.0)

    def test_bounding_box_empty_raises(self, empty):
        with pytest.raises(GraphError):
            empty.bounding_box()


class TestEdges:
    def test_add_edge_defaults(self, pair):
        edge = pair.add_edge(0, 1)
        assert edge.length == pytest.approx(500.0)
        assert edge.speed == RoadCategory.LOCAL.default_speed

    def test_travel_time(self, pair):
        edge = pair.add_edge(0, 1, length=1000.0, speed=36.0)
        assert edge.travel_time == pytest.approx(100.0)  # 36 km/h == 10 m/s

    def test_category_speed_defaults(self):
        assert RoadCategory.MOTORWAY.default_speed > RoadCategory.RESIDENTIAL.default_speed

    def test_add_edge_missing_vertex(self, pair):
        with pytest.raises(VertexNotFoundError):
            pair.add_edge(0, 42)

    def test_self_loop_rejected(self, pair):
        with pytest.raises(GraphError):
            pair.add_edge(0, 0)

    def test_duplicate_edge_rejected(self, pair):
        pair.add_edge(0, 1)
        with pytest.raises(GraphError):
            pair.add_edge(0, 1)

    def test_antiparallel_edges_allowed(self, pair):
        pair.add_edge(0, 1)
        pair.add_edge(1, 0)
        assert pair.num_edges == 2

    def test_two_way_helper(self, pair):
        forward, backward = pair.add_two_way(0, 1)
        assert forward.length == backward.length
        assert pair.has_edge(0, 1) and pair.has_edge(1, 0)

    def test_non_positive_length_rejected(self, pair):
        with pytest.raises(GraphError):
            pair.add_edge(0, 1, length=0.0)

    def test_non_positive_speed_rejected(self, pair):
        with pytest.raises(GraphError):
            pair.add_edge(0, 1, length=10.0, speed=-5.0)

    def test_colocated_needs_explicit_length(self):
        net = RoadNetwork()
        net.add_vertex(0, 0.0, 0.0)
        net.add_vertex(1, 0.0, 0.0)
        with pytest.raises(GraphError):
            net.add_edge(0, 1)
        net.add_edge(0, 1, length=5.0)

    def test_remove_edge(self, pair):
        pair.add_edge(0, 1)
        pair.remove_edge(0, 1)
        assert not pair.has_edge(0, 1)
        assert pair.out_edges(0) == []

    def test_remove_missing_edge(self, pair):
        with pytest.raises(EdgeNotFoundError):
            pair.remove_edge(0, 1)

    def test_edge_lookup_missing(self, pair):
        with pytest.raises(EdgeNotFoundError):
            pair.edge(0, 1)


class TestAdjacency:
    def test_out_in_edges(self, tiny_network):
        outs = {e.target for e in tiny_network.out_edges(0)}
        assert outs == {1, 2, 3}
        ins = {e.source for e in tiny_network.in_edges(2)}
        assert ins == {0, 1, 5}

    def test_successors_predecessors(self, tiny_network):
        assert set(tiny_network.successors(4)) == {1, 3, 5}
        assert set(tiny_network.predecessors(0)) == {1, 3}

    def test_degree(self, tiny_network):
        # vertex 4: two-way to 1, 3, 5 -> 3 out + 3 in
        assert tiny_network.degree(4) == 6

    def test_adjacency_missing_vertex(self, tiny_network):
        with pytest.raises(VertexNotFoundError):
            tiny_network.out_edges(404)
        with pytest.raises(VertexNotFoundError):
            tiny_network.successors(404)

    def test_out_edges_returns_copy(self, tiny_network):
        edges = tiny_network.out_edges(0)
        edges.clear()
        assert tiny_network.out_edges(0)

    def test_total_length(self, tiny_network):
        # Sum of all directed edge lengths: 7 two-way pairs + one one-way.
        expected = 2 * (100 + 100 + 100 + 50 + 100 + 100 + 100) + 250
        assert tiny_network.total_length() == pytest.approx(expected)


class TestConnectivity:
    def test_tiny_is_strongly_connected(self, tiny_network):
        assert tiny_network.is_strongly_connected()

    def test_one_way_breaks_connectivity(self):
        net = RoadNetwork()
        net.add_vertex(0, 0, 0)
        net.add_vertex(1, 1, 0)
        net.add_edge(0, 1, length=1.0)
        assert not net.is_strongly_connected()
        components = net.strongly_connected_components()
        assert sorted(len(c) for c in components) == [1, 1]

    def test_scc_matches_networkx(self, small_grid):
        import networkx as nx

        ours = {frozenset(c) for c in small_grid.strongly_connected_components()}
        theirs = {frozenset(c) for c in
                  nx.strongly_connected_components(small_grid.to_networkx())}
        assert ours == theirs

    def test_largest_scc_subgraph(self):
        net = RoadNetwork()
        for i in range(4):
            net.add_vertex(i, float(i), 0.0)
        net.add_two_way(0, 1, length=1.0)
        net.add_two_way(1, 2, length=1.0)
        net.add_edge(2, 3, length=1.0)  # 3 dangles (no way back)
        largest = net.largest_scc_subgraph()
        assert set(largest.vertex_ids()) == {0, 1, 2}
        assert largest.is_strongly_connected()

    def test_empty_network_connected(self, empty):
        assert empty.is_strongly_connected()

    def test_relabelled_dense_ids(self):
        net = RoadNetwork()
        net.add_vertex(10, 0, 0)
        net.add_vertex(20, 1, 0)
        net.add_two_way(10, 20, length=1.0)
        renamed, mapping = net.relabelled()
        assert set(renamed.vertex_ids()) == {0, 1}
        assert mapping == {10: 0, 20: 1}
        assert renamed.has_edge(0, 1) and renamed.has_edge(1, 0)

    def test_relabelled_preserves_attributes(self, tiny_network):
        renamed, mapping = tiny_network.relabelled()
        original = tiny_network.edge(0, 2)
        copy = renamed.edge(mapping[0], mapping[2])
        assert copy.length == original.length
        assert copy.category == original.category

    def test_subgraph_drops_crossing_edges(self, tiny_network):
        sub = tiny_network.subgraph({0, 1, 2})
        assert sub.num_vertices == 3
        assert not sub.has_edge(1, 4)
        assert sub.has_edge(0, 1)


class TestValidationInterop:
    def test_validate_clean(self, tiny_network):
        tiny_network.validate()

    def test_to_networkx_preserves_counts(self, tiny_network):
        g = tiny_network.to_networkx()
        assert g.number_of_nodes() == tiny_network.num_vertices
        assert g.number_of_edges() == tiny_network.num_edges

    def test_to_networkx_edge_attributes(self, tiny_network):
        g = tiny_network.to_networkx()
        data = g.get_edge_data(0, 2)
        assert data["length"] == 250.0
        assert data["category"] == "motorway"

    def test_repr(self, tiny_network):
        assert "tiny" in repr(tiny_network)
        assert "vertices=6" in repr(tiny_network)


class TestFingerprint:
    def _net(self):
        net = RoadNetwork(name="fp")
        net.add_vertex(0, 0.0, 0.0)
        net.add_vertex(1, 100.0, 0.0)
        net.add_vertex(2, 200.0, 0.0)
        net.add_two_way(0, 1)
        net.add_two_way(1, 2)
        return net

    def test_stable_on_a_static_network(self):
        net = self._net()
        first = net.fingerprint
        assert net.fingerprint == first
        assert net.fingerprint is net.fingerprint  # cached, not recomputed

    def test_reflects_counts(self):
        net = self._net()
        vertices, edges, digest = net.fingerprint
        assert vertices == net.num_vertices
        assert edges == net.num_edges
        assert isinstance(digest, str) and digest

    def test_changes_on_edge_addition_and_removal(self):
        net = self._net()
        before = net.fingerprint
        net.add_edge(0, 2, length=250.0)
        added = net.fingerprint
        assert added != before
        net.remove_edge(0, 2)
        assert net.fingerprint != added

    def test_changes_on_vertex_addition(self):
        net = self._net()
        before = net.fingerprint
        net.add_vertex(99, 500.0, 500.0)
        assert net.fingerprint != before

    def test_sensitive_to_edge_weights(self):
        a = self._net()
        b = self._net()
        assert a.fingerprint == b.fingerprint
        a.add_edge(0, 2, length=250.0)
        b.add_edge(0, 2, length=251.0)
        assert a.fingerprint != b.fingerprint

    def test_version_counts_mutations(self):
        net = self._net()
        version = net.version
        net.add_vertex(50, 1.0, 1.0)
        assert net.version == version + 1
