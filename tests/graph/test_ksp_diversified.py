"""Tests for Yen's k-shortest paths and diversified top-k."""

import itertools

import networkx as nx
import pytest

from repro.errors import NoPathError
from repro.graph import (
    Path,
    diversified_top_k,
    jaccard,
    length_cost,
    shortest_path,
    travel_time_cost,
    weighted_jaccard,
    yen_k_shortest_paths,
    yen_path_generator,
)


class TestYen:
    def test_first_is_shortest(self, small_grid):
        ids = small_grid.vertex_ids()
        paths = yen_k_shortest_paths(small_grid, ids[0], ids[-1], 3)
        assert paths[0] == shortest_path(small_grid, ids[0], ids[-1])

    def test_costs_non_decreasing(self, small_grid):
        ids = small_grid.vertex_ids()
        paths = yen_k_shortest_paths(small_grid, ids[0], ids[-1], 8)
        lengths = [p.length for p in paths]
        assert all(a <= b + 1e-9 for a, b in zip(lengths, lengths[1:]))

    def test_paths_distinct(self, small_grid):
        ids = small_grid.vertex_ids()
        paths = yen_k_shortest_paths(small_grid, ids[0], ids[-1], 8)
        assert len({p.vertices for p in paths}) == len(paths)

    def test_paths_loopless(self, small_grid):
        ids = small_grid.vertex_ids()
        for path in yen_k_shortest_paths(small_grid, ids[2], ids[-3], 8):
            assert path.is_simple()

    def test_endpoints_fixed(self, small_grid):
        ids = small_grid.vertex_ids()
        s, d = ids[1], ids[-2]
        for path in yen_k_shortest_paths(small_grid, s, d, 5):
            assert path.source == s and path.target == d

    def test_matches_networkx_shortest_simple_paths(self, tiny_network):
        """Oracle check: same multiset of costs as networkx's generator."""
        ours = yen_k_shortest_paths(tiny_network, 3, 2, 6)
        g = tiny_network.to_networkx()
        theirs = list(itertools.islice(
            nx.shortest_simple_paths(g, 3, 2, weight="length"), 6))
        our_costs = [round(p.length, 6) for p in ours]
        their_costs = [
            round(sum(g[u][v]["length"] for u, v in zip(p, p[1:])), 6) for p in theirs
        ]
        assert our_costs == their_costs

    def test_matches_networkx_on_grid(self, small_grid):
        ids = small_grid.vertex_ids()
        s, d = ids[4], ids[20]
        ours = [p.length for p in yen_k_shortest_paths(small_grid, s, d, 10)]
        g = small_grid.to_networkx()
        theirs = []
        for p in itertools.islice(nx.shortest_simple_paths(g, s, d, weight="length"), 10):
            theirs.append(sum(g[u][v]["length"] for u, v in zip(p, p[1:])))
        assert ours == pytest.approx(theirs)

    def test_travel_time_ordering(self, region_network):
        ids = region_network.vertex_ids()
        paths = yen_k_shortest_paths(region_network, ids[0], ids[-1], 5,
                                     cost=travel_time_cost)
        times = [p.travel_time for p in paths]
        assert all(a <= b + 1e-9 for a, b in zip(times, times[1:]))

    def test_k_validation(self, tiny_network):
        with pytest.raises(ValueError):
            yen_k_shortest_paths(tiny_network, 0, 2, 0)

    def test_no_path_raises(self, tiny_network):
        # vertex 2 has an incoming motorway only from 0; everything is
        # reachable in tiny_network, so build an unreachable query instead.
        from repro.graph import RoadNetwork

        net = RoadNetwork()
        net.add_vertex(0, 0, 0)
        net.add_vertex(1, 1, 0)
        net.add_edge(0, 1, length=1.0)
        with pytest.raises(NoPathError):
            yen_k_shortest_paths(net, 1, 0, 3)

    def test_exhausts_small_path_space(self, tiny_network):
        # Only so many loopless 0->2 paths exist; ask for far more.
        paths = yen_k_shortest_paths(tiny_network, 0, 2, 50)
        assert 0 < len(paths) < 50
        assert len({p.vertices for p in paths}) == len(paths)

    def test_generator_lazy(self, small_grid):
        ids = small_grid.vertex_ids()
        generator = yen_path_generator(small_grid, ids[0], ids[-1])
        first = next(generator)
        second = next(generator)
        assert first.length <= second.length
        assert first.vertices != second.vertices

    def test_generator_max_paths(self, small_grid):
        ids = small_grid.vertex_ids()
        paths = list(yen_path_generator(small_grid, ids[0], ids[-1], max_paths=4))
        assert len(paths) == 4


class TestDiversified:
    def test_threshold_one_equals_plain_topk(self, small_grid):
        ids = small_grid.vertex_ids()
        s, d = ids[0], ids[-1]
        result = diversified_top_k(small_grid, s, d, 5, threshold=1.0)
        plain = yen_k_shortest_paths(small_grid, s, d, 5)
        assert list(result.paths) == plain
        assert result.examined == 5

    def test_pairwise_similarity_bounded(self, region_network):
        ids = region_network.vertex_ids()
        result = diversified_top_k(region_network, ids[0], ids[-1], 4,
                                   threshold=0.8, examine_limit=200)
        for a, b in itertools.combinations(result.paths, 2):
            assert weighted_jaccard(a, b) <= 0.8 + 1e-9

    def test_first_is_shortest(self, region_network):
        ids = region_network.vertex_ids()
        result = diversified_top_k(region_network, ids[0], ids[-1], 3,
                                   threshold=0.7, examine_limit=200)
        assert result.paths[0] == shortest_path(region_network, ids[0], ids[-1])

    def test_costs_non_decreasing(self, region_network):
        ids = region_network.vertex_ids()
        result = diversified_top_k(region_network, ids[3], ids[-4], 4,
                                   threshold=0.8, examine_limit=200)
        lengths = [p.length for p in result.paths]
        assert all(a <= b + 1e-9 for a, b in zip(lengths, lengths[1:]))

    def test_smaller_threshold_needs_more_examination(self, region_network):
        ids = region_network.vertex_ids()
        s, d = ids[0], ids[-1]
        loose = diversified_top_k(region_network, s, d, 3, threshold=0.95,
                                  examine_limit=300)
        strict = diversified_top_k(region_network, s, d, 3, threshold=0.5,
                                   examine_limit=300)
        assert strict.examined >= loose.examined

    def test_exhausted_flag(self, tiny_network):
        # Demanding many diverse paths from a tiny network must exhaust.
        result = diversified_top_k(tiny_network, 0, 2, 10, threshold=0.1,
                                   examine_limit=50)
        assert result.exhausted
        assert len(result) < 10

    def test_alternate_similarity_function(self, region_network):
        ids = region_network.vertex_ids()
        result = diversified_top_k(region_network, ids[0], ids[-1], 3,
                                   threshold=0.8, similarity=jaccard,
                                   examine_limit=200)
        for a, b in itertools.combinations(result.paths, 2):
            assert jaccard(a, b) <= 0.8 + 1e-9

    def test_result_iterable_and_sized(self, small_grid):
        ids = small_grid.vertex_ids()
        result = diversified_top_k(small_grid, ids[0], ids[-1], 3, threshold=0.9)
        assert len(list(result)) == len(result)

    def test_validation(self, tiny_network):
        with pytest.raises(ValueError):
            diversified_top_k(tiny_network, 0, 2, 0)
        with pytest.raises(ValueError):
            diversified_top_k(tiny_network, 0, 2, 3, threshold=1.5)
        with pytest.raises(ValueError):
            diversified_top_k(tiny_network, 0, 2, 10, examine_limit=5)
