"""Backend parity: the CSR kernel must agree with the dict reference.

Property-style tests over random grid networks: for Dijkstra,
bidirectional Dijkstra, A*, and Yen top-k, both backends must return
identical costs — and identical paths wherever the optimum is unique.
Equal-cost ties may legitimately resolve differently between backends,
so path identity is only asserted after re-costing both answers.
Plus: ALT admissibility (the landmark heuristic never overestimates the
true cost) and the staleness machinery (fingerprint-keyed rebuilds).
"""

import numpy as np
import pytest

from repro.errors import NoPathError, VertexNotFoundError
from repro.graph import (
    RoadNetwork,
    astar,
    bidirectional_dijkstra,
    csr_for,
    dijkstra,
    grid_network,
    shortest_path,
    shortest_path_cost,
    travel_time_cost,
    use_routing_backend,
    yen_k_shortest_paths,
)
from repro.graph.csr import CSRGraph, resolve_backend, set_routing_backend
from repro.graph.diversified import diversified_top_k


def _random_pairs(network, count, seed):
    rng = np.random.default_rng(seed)
    ids = network.vertex_ids()
    return [tuple(int(v) for v in rng.choice(ids, 2, replace=False))
            for _ in range(count)]


@pytest.fixture(scope="module", params=[(6, 9, 3), (9, 7, 11), (12, 12, 29)])
def random_grid(request):
    rows, cols, seed = request.param
    return grid_network(rows, cols, seed=seed)


class TestSingleSourceParity:
    def test_distances_match_dict_backend(self, random_grid):
        kernel = csr_for(random_grid)
        for source in random_grid.vertex_ids()[:5]:
            expected, _ = dijkstra(random_grid, source)
            got = kernel.single_source_dict(source)
            assert set(got) == set(expected)
            for vertex, distance in expected.items():
                assert got[vertex] == pytest.approx(distance, rel=1e-12)

    def test_multi_source_matches_single_source(self, random_grid):
        kernel = csr_for(random_grid)
        sources = random_grid.vertex_ids()[:4]
        stacked = kernel.multi_source(sources)
        assert stacked.shape == (4, random_grid.num_vertices)
        for row, source in zip(stacked, sources):
            np.testing.assert_allclose(row, kernel.single_source(source),
                                       atol=0, rtol=0)

    def test_multi_source_reverse_matches_transposed_graph(self, random_grid):
        kernel = csr_for(random_grid)
        sources = random_grid.vertex_ids()[:3]
        reverse_rows = kernel.multi_source(sources, reverse=True)
        # d_rev(s -> v) on the transposed graph equals d(v -> s).
        for row, source in zip(reverse_rows, sources):
            for target in random_grid.vertex_ids()[::7]:
                direct = kernel.shortest_path_cost(target, source)
                assert row[kernel.index_of(target)] == pytest.approx(
                    direct, rel=1e-9)

    def test_multi_source_empty(self, random_grid):
        kernel = csr_for(random_grid)
        assert kernel.multi_source([]).shape == (0, random_grid.num_vertices)

    def test_travel_time_distances_match(self, random_grid):
        kernel = csr_for(random_grid)
        source = random_grid.vertex_ids()[1]
        expected, _ = dijkstra(random_grid, source, cost=travel_time_cost)
        got = kernel.single_source_dict(source, travel_time_cost)
        for vertex, distance in expected.items():
            assert got[vertex] == pytest.approx(distance, rel=1e-12)

    def test_custom_cost_function(self, random_grid):
        def hilly(edge):
            return edge.length * (1.0 + 0.1 * (edge.target % 3))

        kernel = csr_for(random_grid)
        source = random_grid.vertex_ids()[0]
        expected, _ = dijkstra(random_grid, source, cost=hilly)
        got = kernel.single_source_dict(source, hilly)
        for vertex, distance in expected.items():
            assert got[vertex] == pytest.approx(distance, rel=1e-12)


class TestPointToPointParity:
    def test_shortest_path_costs_match(self, random_grid):
        for source, target in _random_pairs(random_grid, 20, seed=1):
            with use_routing_backend("dict"):
                reference = shortest_path(random_grid, source, target)
            result = shortest_path(random_grid, source, target)
            assert result.length == pytest.approx(reference.length, rel=1e-12)
            assert result.source == source and result.target == target
            # Identical paths whenever the optimum is unique; on a tie
            # both answers must still cost the same (checked above).
            if result.vertices != reference.vertices:
                assert result.length == pytest.approx(reference.length)

    def test_bidirectional_costs_match(self, random_grid):
        kernel = csr_for(random_grid)
        for source, target in _random_pairs(random_grid, 15, seed=2):
            reference = bidirectional_dijkstra(random_grid, source, target)
            _, cost = kernel.bidirectional_ids(source, target)
            assert cost == pytest.approx(reference.length, rel=1e-12)

    def test_astar_costs_match(self, random_grid):
        kernel = csr_for(random_grid)
        for source, target in _random_pairs(random_grid, 15, seed=3):
            reference = astar(random_grid, source, target)
            for heuristic in ("euclidean", "alt"):
                vertices, cost = kernel.astar_ids(source, target,
                                                  heuristic=heuristic)
                assert cost == pytest.approx(reference.length, rel=1e-12)
                assert vertices[0] == source and vertices[-1] == target

    def test_shortest_path_cost_matches(self, random_grid):
        for source, target in _random_pairs(random_grid, 10, seed=4):
            with use_routing_backend("dict"):
                reference = shortest_path_cost(random_grid, source, target)
            assert shortest_path_cost(random_grid, source, target) == \
                pytest.approx(reference, rel=1e-12)


class TestYenParity:
    def test_topk_costs_match(self, random_grid):
        for source, target in _random_pairs(random_grid, 6, seed=5):
            with use_routing_backend("dict"):
                reference = yen_k_shortest_paths(random_grid, source, target, 6)
            result = yen_k_shortest_paths(random_grid, source, target, 6)
            assert len(result) == len(reference)
            for got, expected in zip(result, reference):
                assert got.length == pytest.approx(expected.length, rel=1e-9)
                if got.vertices != expected.vertices:  # equal-cost tie
                    assert got.length == pytest.approx(expected.length)

    def test_paths_are_simple_ordered_and_unique(self, random_grid):
        source, target = _random_pairs(random_grid, 1, seed=6)[0]
        paths = yen_k_shortest_paths(random_grid, source, target, 8)
        lengths = [p.length for p in paths]
        assert lengths == sorted(lengths)
        assert len({p.vertices for p in paths}) == len(paths)
        for path in paths:
            assert path.is_simple()

    def test_travel_time_topk(self, random_grid):
        source, target = _random_pairs(random_grid, 1, seed=7)[0]
        with use_routing_backend("dict"):
            reference = yen_k_shortest_paths(random_grid, source, target, 4,
                                             cost=travel_time_cost)
        result = yen_k_shortest_paths(random_grid, source, target, 4,
                                      cost=travel_time_cost)
        assert [p.travel_time for p in result] == pytest.approx(
            [p.travel_time for p in reference], rel=1e-9)

    def test_diversified_matches_reference_selection(self, random_grid):
        source, target = _random_pairs(random_grid, 1, seed=8)[0]
        result = diversified_top_k(random_grid, source, target, k=4,
                                   threshold=0.7, examine_limit=60)
        reference = diversified_top_k(random_grid, source, target, k=4,
                                      threshold=0.7, examine_limit=60,
                                      backend="dict")
        assert len(result) == len(reference)
        for got, expected in zip(result, reference):
            assert got.length == pytest.approx(expected.length, rel=1e-9)


class TestAltAdmissibility:
    def test_lower_bounds_never_overestimate(self, random_grid):
        kernel = csr_for(random_grid)
        rng = np.random.default_rng(13)
        ids = random_grid.vertex_ids()
        for target in (int(v) for v in rng.choice(ids, 3, replace=False)):
            bounds = kernel.alt_bounds(target)
            true_to_target = {
                vertex: dist for vertex, dist
                in _reverse_distances(random_grid, target).items()
            }
            for vertex, true_cost in true_to_target.items():
                assert bounds[kernel.index_of(vertex)] <= true_cost + 1e-9

    def test_travel_time_bounds_admissible(self, random_grid):
        kernel = csr_for(random_grid)
        target = random_grid.vertex_ids()[-1]
        bounds = kernel.alt_bounds(target, travel_time_cost)
        truth = _reverse_distances(random_grid, target, travel_time_cost)
        for vertex, true_cost in truth.items():
            assert bounds[kernel.index_of(vertex)] <= true_cost + 1e-9


def _reverse_distances(network, target, cost=None):
    """d(v, target) for all v, via one dict-backend Dijkstra per vertex
    would be O(n^2); instead run forward Dijkstra per source over a
    small sample."""
    rng = np.random.default_rng(17)
    sample = rng.choice(network.vertex_ids(), 12, replace=False)
    out = {}
    for source in (int(v) for v in sample):
        if source == target:
            continue
        dist, _ = dijkstra(network, source, target=target)
        if target in dist:
            out[source] = dist[target]
    return out


class TestErrorsAndEdgeCases:
    def test_missing_vertex_raises(self, random_grid):
        kernel = csr_for(random_grid)
        with pytest.raises(VertexNotFoundError):
            kernel.single_source(10**9)
        with pytest.raises(VertexNotFoundError):
            kernel.shortest_path_ids(0, 10**9)

    def test_same_endpoints_raise_no_path(self, random_grid):
        kernel = csr_for(random_grid)
        with pytest.raises(NoPathError):
            kernel.shortest_path_ids(0, 0)
        with pytest.raises(NoPathError):
            list(kernel.yen_ids(0, 0))

    def test_unreachable_target_raises(self):
        net = RoadNetwork()
        for vid in range(4):
            net.add_vertex(vid, float(vid) * 100.0, 0.0)
        net.add_edge(0, 1)
        net.add_edge(2, 3)  # two disconnected components
        kernel = csr_for(net)
        with pytest.raises(NoPathError):
            kernel.shortest_path_ids(0, 3)
        with pytest.raises(NoPathError):
            list(kernel.yen_ids(0, 3))

    def test_negative_custom_cost_rejected(self, random_grid):
        kernel = csr_for(random_grid)
        with pytest.raises(ValueError):
            kernel.single_source(0, cost=lambda edge: -edge.length)


class TestBackendSeam:
    def test_csr_for_caches_per_network(self, random_grid):
        assert csr_for(random_grid) is csr_for(random_grid)

    def test_mutation_triggers_rebuild(self):
        net = grid_network(4, 4, seed=1)
        kernel = csr_for(net)
        u = net.vertex_ids()[0]
        v = next(t for t in net.vertex_ids()
                 if t != u and not net.has_edge(u, t))
        net.add_edge(u, v, length=1.0)
        rebuilt = csr_for(net)
        assert rebuilt is not kernel
        assert rebuilt.num_edges == kernel.num_edges + 1

    def test_unknown_backend_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            set_routing_backend("gpu")
        with pytest.raises(ConfigError):
            resolve_backend("fancy")

    def test_context_manager_restores(self):
        from repro.graph import get_routing_backend
        before = get_routing_backend()
        with use_routing_backend("dict"):
            assert get_routing_backend() == "dict"
            assert resolve_backend() == "dict"
        assert get_routing_backend() == before

    def test_kernel_reports_shape(self, random_grid):
        kernel = csr_for(random_grid)
        assert kernel.num_vertices == random_grid.num_vertices
        assert kernel.num_edges == random_grid.num_edges
        assert isinstance(kernel, CSRGraph)
        assert len(kernel.indptr) == kernel.num_vertices + 1
        assert len(kernel.indices) == kernel.num_edges


class TestChunkedMultiSource:
    """Bounded-memory multi-source sweeps: chunking must be invisible
    in the result, and slab sizes must follow the vertex count."""

    def test_chunked_equals_unchunked(self, random_grid):
        kernel = csr_for(random_grid)
        sources = random_grid.vertex_ids()[:5]
        full = kernel.multi_source(sources)
        for chunk_size in (1, 2, len(sources), len(sources) + 7):
            chunked = kernel.multi_source(sources, chunk_size=chunk_size)
            assert np.array_equal(chunked, full)

    def test_chunked_reverse_equals_unchunked(self, random_grid):
        kernel = csr_for(random_grid)
        sources = random_grid.vertex_ids()[:4]
        full = kernel.multi_source(sources, reverse=True)
        chunked = kernel.multi_source(sources, reverse=True, chunk_size=2)
        assert np.array_equal(chunked, full)

    def test_iter_multi_source_slabs(self, random_grid):
        kernel = csr_for(random_grid)
        sources = random_grid.vertex_ids()[:5]
        full = kernel.multi_source(sources)
        starts = []
        for start, rows in kernel.iter_multi_source(sources, None,
                                                    chunk_size=2):
            starts.append(start)
            assert rows.shape[1] == kernel.num_vertices
            assert np.array_equal(rows, full[start:start + rows.shape[0]])
        assert starts == [0, 2, 4]

    def test_default_chunk_size_tracks_vertex_count(self, random_grid):
        from repro.graph.csr import MULTI_SOURCE_SLAB_ELEMENTS

        kernel = csr_for(random_grid)
        expected = max(1, MULTI_SOURCE_SLAB_ELEMENTS // kernel.num_vertices)
        assert kernel.default_chunk_size() == expected

    def test_chunk_size_validated(self, random_grid):
        kernel = csr_for(random_grid)
        with pytest.raises(ValueError):
            kernel.multi_source(random_grid.vertex_ids()[:2], chunk_size=0)


class TestSsspParents:
    """The full-settle parent tree must reproduce the dict reference
    exactly — same distances, same tie-break, same parents — because
    batched route reconstructions ride it."""

    def test_tree_matches_dict_dijkstra(self, random_grid):
        kernel = csr_for(random_grid)
        for source in random_grid.vertex_ids()[:3]:
            ref_dist, ref_prev = dijkstra(random_grid, source)
            dist, parent = kernel.sssp_parents(source)
            for vid in random_grid.vertex_ids():
                idx = kernel.index_of(vid)
                if vid in ref_dist:
                    assert dist[idx] == pytest.approx(ref_dist[vid],
                                                      rel=1e-12)
                else:
                    assert not np.isfinite(dist[idx])
                if vid in ref_prev:
                    assert kernel.ids[parent[idx]] == ref_prev[vid]
                else:
                    assert parent[idx] == -1

    def test_parent_edges_are_tight(self, random_grid):
        kernel = csr_for(random_grid)
        source = random_grid.vertex_ids()[0]
        dist, parent = kernel.sssp_parents(source)
        weights = np.asarray(kernel.edge_weights(None), dtype=np.float64)
        for idx in range(kernel.num_vertices):
            p = parent[idx]
            if p < 0:
                continue
            lo, hi = int(kernel.indptr[p]), int(kernel.indptr[p + 1])
            positions = [pos for pos in range(lo, hi)
                         if kernel.indices[pos] == idx]
            assert positions, "parent edge must exist in the CSR"
            assert dist[p] + weights[positions[0]] == pytest.approx(
                dist[idx], rel=1e-12)

    def test_source_is_its_own_root(self, random_grid):
        kernel = csr_for(random_grid)
        source = random_grid.vertex_ids()[0]
        dist, parent = kernel.sssp_parents(source)
        idx = kernel.index_of(source)
        assert dist[idx] == 0.0
        assert parent[idx] == -1
