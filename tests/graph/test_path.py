"""Unit tests for the Path value object."""

import pytest

from repro.errors import InvalidPathError
from repro.graph import Path


class TestConstruction:
    def test_valid_path(self, tiny_network):
        path = Path(tiny_network, [0, 1, 2])
        assert path.vertices == (0, 1, 2)
        assert path.source == 0
        assert path.target == 2

    def test_single_vertex_rejected(self, tiny_network):
        with pytest.raises(InvalidPathError):
            Path(tiny_network, [0])

    def test_missing_edge_rejected(self, tiny_network):
        with pytest.raises(InvalidPathError):
            Path(tiny_network, [0, 5])

    def test_one_way_direction_enforced(self, tiny_network):
        Path(tiny_network, [0, 2])  # motorway 0->2 exists
        with pytest.raises(InvalidPathError):
            Path(tiny_network, [2, 0])  # but not 2->0 directly

    def test_vertices_coerced_to_int(self, tiny_network):
        path = Path(tiny_network, (0.0, 1.0))
        assert path.vertices == (0, 1)


class TestMeasures:
    def test_length(self, tiny_network):
        assert Path(tiny_network, [0, 1, 2]).length == pytest.approx(200.0)

    def test_travel_time_uses_speeds(self, tiny_network):
        slow = Path(tiny_network, [0, 1, 2])
        fast = Path(tiny_network, [0, 2])
        # Motorway is longer (250m vs 200m) but far faster.
        assert fast.length > slow.length
        assert fast.travel_time < slow.travel_time

    def test_custom_cost(self, tiny_network):
        path = Path(tiny_network, [0, 1, 2])
        assert path.cost(lambda e: 1.0) == 2.0

    def test_counts(self, tiny_network):
        path = Path(tiny_network, [0, 1, 4, 5])
        assert path.num_vertices == 4
        assert path.num_edges == 3
        assert len(path) == 4

    def test_category_fractions_sum_to_one(self, tiny_network):
        fractions = Path(tiny_network, [0, 1, 4, 3]).category_length_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_category_fractions_values(self, tiny_network):
        fractions = Path(tiny_network, [0, 2]).category_length_fractions()
        assert fractions == {"motorway": pytest.approx(1.0)}


class TestSetsAndRelations:
    def test_edge_keys_ordered(self, tiny_network):
        path = Path(tiny_network, [0, 1, 2])
        assert path.edge_keys == ((0, 1), (1, 2))

    def test_edge_set(self, tiny_network):
        assert Path(tiny_network, [0, 1]).edge_set == {(0, 1)}

    def test_contains_edge(self, tiny_network):
        path = Path(tiny_network, [0, 1, 2])
        assert path.contains_edge(0, 1)
        assert not path.contains_edge(1, 0)

    def test_shared_edges(self, tiny_network):
        a = Path(tiny_network, [0, 1, 2])
        b = Path(tiny_network, [3, 0, 1])
        assert a.shared_edges(b) == {(0, 1)}

    def test_same_endpoints(self, tiny_network):
        a = Path(tiny_network, [0, 1, 2])
        b = Path(tiny_network, [0, 2])
        assert a.same_endpoints(b)

    def test_is_simple(self, tiny_network):
        assert Path(tiny_network, [0, 1, 2]).is_simple()
        assert not Path(tiny_network, [0, 1, 0]).is_simple()

    def test_equality_and_hash(self, tiny_network):
        a = Path(tiny_network, [0, 1, 2])
        b = Path(tiny_network, [0, 1, 2])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Path(tiny_network, [0, 2])

    def test_equality_other_type(self, tiny_network):
        assert Path(tiny_network, [0, 1]) != (0, 1)


class TestComposition:
    def test_prefix(self, tiny_network):
        path = Path(tiny_network, [0, 1, 4, 5])
        assert path.prefix(3).vertices == (0, 1, 4)

    def test_prefix_bounds(self, tiny_network):
        path = Path(tiny_network, [0, 1, 2])
        with pytest.raises(InvalidPathError):
            path.prefix(1)
        with pytest.raises(InvalidPathError):
            path.prefix(4)

    def test_suffix_from(self, tiny_network):
        path = Path(tiny_network, [0, 1, 4, 5])
        assert path.suffix_from(1).vertices == (1, 4, 5)

    def test_suffix_bounds(self, tiny_network):
        path = Path(tiny_network, [0, 1, 2])
        with pytest.raises(InvalidPathError):
            path.suffix_from(2)

    def test_concat(self, tiny_network):
        left = Path(tiny_network, [0, 1])
        right = Path(tiny_network, [1, 4, 5])
        assert left.concat(right).vertices == (0, 1, 4, 5)

    def test_concat_mismatch(self, tiny_network):
        with pytest.raises(InvalidPathError):
            Path(tiny_network, [0, 1]).concat(Path(tiny_network, [4, 5]))

    def test_concat_length_additive(self, tiny_network):
        left = Path(tiny_network, [0, 1])
        right = Path(tiny_network, [1, 2])
        assert left.concat(right).length == pytest.approx(left.length + right.length)


class TestProtocols:
    def test_iteration(self, tiny_network):
        assert list(Path(tiny_network, [0, 1, 2])) == [0, 1, 2]

    def test_getitem(self, tiny_network):
        path = Path(tiny_network, [0, 1, 2])
        assert path[1] == 1
        assert path[-1] == 2

    def test_repr_short(self, tiny_network):
        assert "0->1->2" in repr(Path(tiny_network, [0, 1, 2]))

    def test_repr_long_truncates(self, small_grid):
        from repro.graph import shortest_path

        ids = small_grid.vertex_ids()
        path = shortest_path(small_grid, ids[0], ids[-1])
        if path.num_vertices > 6:
            assert "..." in repr(path)
