"""The contraction-hierarchy lane: parity oracle, lifecycle, sharding.

The hierarchy is a *preprocessed* view of the same weighted graph, so
every test here is a parity oracle at heart: whatever the CSR lanes
answer, the CH lane must answer identically — on plain grids, on
Voronoi shard subnetworks, under custom weights, and for disconnected
pairs (where both lanes must refuse identically).  The lifecycle tests
pin the staleness story (a network mutation drops the hierarchy with
the kernel) and the custom-weight eviction story (an evicted weight
key takes its hierarchy down with it, and a re-request rebuilds a
correct one).  The sharding tests cover corridor certificates: the
decision procedure, the forced-widening path, and the exactness
guarantee that makes certification worth having.
"""

import numpy as np
import pytest

from repro.errors import NoPathError
from repro.graph import (
    csr_for,
    grid_network,
    partition_network,
    shortest_path,
    shortest_path_cost,
    travel_time_cost,
    use_routing_backend,
)
from repro.graph.csr import CSRGraph
from repro.graph.partition import CorridorCertificate
from repro.graph import RoadNetwork


def _random_pairs(network, count, seed):
    rng = np.random.default_rng(seed)
    ids = network.vertex_ids()
    return [tuple(int(v) for v in rng.choice(ids, 2, replace=False))
            for _ in range(count)]


@pytest.fixture(scope="module", params=[(6, 9, 3), (9, 7, 11), (12, 12, 29)])
def random_grid(request):
    rows, cols, seed = request.param
    return grid_network(rows, cols, seed=seed)


# ----------------------------------------------------------------------
# Parity oracle
# ----------------------------------------------------------------------
class TestChParity:
    def test_paths_and_costs_match_csr_lane(self, random_grid):
        """Grid oracle: identical vertex sequences and re-summed costs.

        The perturbed grid weights make ties vanishingly unlikely, and
        the hierarchy re-sums original edge weights in path order, so
        parity here is exact, not approximate."""
        kernel = csr_for(random_grid)
        for source, target in _random_pairs(random_grid, 25, seed=5):
            expected_path, expected_cost = kernel.shortest_path_ids(
                source, target)
            got_path, got_cost = kernel.ch_shortest_path_ids(source, target)
            assert got_path == expected_path
            assert got_cost == pytest.approx(expected_cost, abs=1e-9)

    def test_travel_time_parity(self, random_grid):
        kernel = csr_for(random_grid)
        for source, target in _random_pairs(random_grid, 10, seed=7):
            expected = kernel.shortest_path_cost(source, target,
                                                 travel_time_cost)
            got = kernel.ch_shortest_path_cost(source, target,
                                               travel_time_cost)
            assert got == pytest.approx(expected, abs=1e-9)

    def test_custom_random_weight_parity(self, random_grid):
        """A pseudo-random positive weight per edge — the hierarchy must
        contract and answer correctly for weights it has never seen."""
        def noisy(edge):
            mix = (edge.source * 2654435761 + edge.target * 40503) % 997
            return edge.length * (0.5 + mix / 997.0)

        kernel = csr_for(random_grid)
        for source, target in _random_pairs(random_grid, 10, seed=17):
            expected = kernel.shortest_path_cost(source, target, noisy)
            got = kernel.ch_shortest_path_cost(source, target, noisy)
            assert got == pytest.approx(expected, abs=1e-9)

    def test_voronoi_shard_subnetworks_parity(self):
        """Per-shard hierarchies: each Voronoi subnetwork is its own
        little graph with boundary-truncated topology; the CH lane must
        agree with the CSR lane inside every one of them."""
        network = grid_network(10, 10, seed=23)
        partition = partition_network(network, 3, method="voronoi", rng=4)
        for shard_id in range(partition.num_shards):
            sub = partition.subnetwork(shard_id)
            pairs = _random_pairs(sub, 6, seed=shard_id)
            for source, target in pairs:
                try:
                    expected = shortest_path_cost(sub, source, target)
                except NoPathError:
                    with pytest.raises(NoPathError):
                        shortest_path_cost(sub, source, target,
                                           backend="ch")
                    continue
                got = shortest_path_cost(sub, source, target, backend="ch")
                assert got == pytest.approx(expected, abs=1e-9)

    def test_module_level_backend_returns_equal_path_objects(
            self, random_grid):
        source, target = _random_pairs(random_grid, 1, seed=31)[0]
        via_csr = shortest_path(random_grid, source, target)
        via_ch = shortest_path(random_grid, source, target, backend="ch")
        assert via_ch == via_csr
        assert via_ch.length == pytest.approx(via_csr.length, abs=1e-9)

    def test_global_backend_context_routes_through_hierarchy(
            self, random_grid):
        kernel = csr_for(random_grid)
        before = kernel.ch_profile_counters()["queries"]
        source, target = _random_pairs(random_grid, 1, seed=37)[0]
        with use_routing_backend("ch"):
            shortest_path(random_grid, source, target)
        after = kernel.ch_profile_counters()["queries"]
        assert after > before

    def test_disconnected_pair_refused_by_both_lanes(self):
        """Two islands: the hierarchy must raise the same NoPathError
        the CSR lane raises, not invent a path through shortcuts."""
        net = RoadNetwork(name="islands")
        for vid, (x, y) in enumerate([(0, 0), (100, 0), (0, 100),
                                      (5000, 5000), (5100, 5000)]):
            net.add_vertex(vid, float(x), float(y))
        net.add_two_way(0, 1, length=100.0)
        net.add_two_way(1, 2, length=140.0)
        net.add_two_way(3, 4, length=100.0)
        kernel = csr_for(net)
        with pytest.raises(NoPathError):
            kernel.shortest_path_ids(0, 3)
        with pytest.raises(NoPathError):
            kernel.ch_shortest_path_ids(0, 3)
        # The connected component still answers through the hierarchy.
        path, cost = kernel.ch_shortest_path_ids(0, 2)
        assert path == [0, 1, 2]
        assert cost == pytest.approx(240.0)

    def test_same_endpoints_raise_no_path(self, random_grid):
        kernel = csr_for(random_grid)
        with pytest.raises(NoPathError):
            kernel.ch_shortest_path_ids(0, 0)
        assert kernel.ch_shortest_path_cost(0, 0) == 0.0


# ----------------------------------------------------------------------
# Lifecycle: staleness and custom-weight eviction
# ----------------------------------------------------------------------
class TestChLifecycle:
    def test_mutation_drops_hierarchy_with_kernel(self):
        """Fingerprint bump: csr_for builds a fresh kernel, and the new
        kernel starts with no hierarchy — the stale shortcut graph can
        never serve the mutated network."""
        net = grid_network(5, 5, seed=2)
        kernel = csr_for(net)
        kernel.ensure_ch()
        assert kernel.ch_if_built() is not None
        u = net.vertex_ids()[0]
        v = next(t for t in net.vertex_ids()
                 if t != u and not net.has_edge(u, t))
        net.add_edge(u, v, length=1.0)
        rebuilt = csr_for(net)
        assert rebuilt is not kernel
        assert rebuilt.ch_if_built() is None
        # A fresh build on the new kernel sees the new edge.
        path, cost = rebuilt.ch_shortest_path_ids(u, v)
        assert path == [u, v]
        assert cost == pytest.approx(1.0)

    def test_ensure_ch_is_memoised_per_weight_key(self):
        net = grid_network(5, 5, seed=3)
        kernel = csr_for(net)
        first = kernel.ensure_ch()
        assert kernel.ensure_ch() is first
        other = kernel.ensure_ch(travel_time_cost)
        assert other is not first
        assert kernel.ch_if_built(travel_time_cost) is other

    def test_custom_weight_eviction_drops_hierarchy(self, monkeypatch):
        """Regression for the eviction path: when a custom weight key
        falls off the LRU, its hierarchy must go with it (a shortcut
        graph derived from evicted weights is garbage), and a later
        re-request must rebuild a correct one from scratch."""
        from repro.graph import csr as csr_module
        monkeypatch.setattr(csr_module, "_CUSTOM_WEIGHT_CAP", 2)
        net = grid_network(5, 5, seed=4)
        kernel = CSRGraph(net)

        def scale(factor):
            def cost(edge, _factor=factor):
                return edge.length * _factor
            return cost

        costs = [scale(1.0), scale(2.0), scale(3.0)]
        source, target = _random_pairs(net, 1, seed=5)[0]
        expected = [kernel.shortest_path_cost(source, target, c)
                    for c in costs]

        kernel.ensure_ch(costs[0])
        kernel.ensure_ch(costs[1])
        assert kernel.ch_if_built(costs[0]) is not None
        assert kernel.ch_if_built(costs[1]) is not None
        # Third custom key: costs[0] is the LRU victim; its hierarchy
        # must leave the table alongside its weight array.
        kernel.ensure_ch(costs[2])
        assert kernel.ch_if_built(costs[0]) is None
        assert kernel.ch_if_built(costs[2]) is not None
        # Re-requesting the evicted key rebuilds, and the rebuilt
        # hierarchy answers correctly for *its* weights.
        for cost, want in zip(costs, expected):
            got = kernel.ch_shortest_path_cost(source, target, cost)
            assert got == pytest.approx(want, abs=1e-9)

    def test_builtin_keys_survive_custom_churn(self, monkeypatch):
        """Only custom keys churn through the LRU — the built-in length
        hierarchy must survive any amount of custom traffic."""
        from repro.graph import csr as csr_module
        monkeypatch.setattr(csr_module, "_CUSTOM_WEIGHT_CAP", 1)
        net = grid_network(4, 4, seed=6)
        kernel = CSRGraph(net)
        builtin = kernel.ensure_ch()
        for factor in (1.5, 2.5, 3.5):
            def cost(edge, _factor=factor):
                return edge.length * _factor
            kernel.ensure_ch(cost)
        assert kernel.ch_if_built() is builtin


# ----------------------------------------------------------------------
# Shared-memory export: replicas attach, never re-contract
# ----------------------------------------------------------------------
class TestSharedHierarchy:
    def test_from_shared_attaches_owner_hierarchy(self):
        net = grid_network(6, 6, seed=8)
        kernel = csr_for(net)
        kernel.ensure_alt()
        owner = kernel.ensure_ch()
        arrays, meta = kernel.shared_payload()
        assert meta["ch_keys"] == ["length"]

        replica = CSRGraph.from_shared(arrays, meta)
        attached = replica.ch_if_built()
        assert attached is not None
        assert attached.num_shortcuts == owner.num_shortcuts
        assert attached.build_ms == owner.build_ms
        # ensure_ch on the replica finds the attached table: no rebuild.
        assert replica.ensure_ch() is attached
        for source, target in _random_pairs(net, 8, seed=9):
            expected_path, expected_cost = kernel.ch_shortest_path_ids(
                source, target)
            got_path, got_cost = replica.ch_shortest_path_ids(source, target)
            assert got_path == expected_path
            assert got_cost == pytest.approx(expected_cost, abs=1e-12)

    def test_payload_without_hierarchy_ships_none(self):
        net = grid_network(4, 4, seed=10)
        kernel = csr_for(net)
        arrays, meta = kernel.shared_payload()
        assert meta["ch_keys"] == []
        replica = CSRGraph.from_shared(arrays, meta)
        assert replica.ch_if_built() is None


# ----------------------------------------------------------------------
# Corridor certificates
# ----------------------------------------------------------------------
class TestCorridorCertificate:
    @pytest.fixture(scope="class")
    def sharded_grid(self):
        network = grid_network(12, 12, seed=19)
        partition = partition_network(network, 3, method="bfs", rng=2)
        return network, partition

    def test_certificate_is_memoised_and_symmetric(self, sharded_grid):
        _, partition = sharded_grid
        certificate = partition.corridor_certificate(0, 1)
        assert partition.corridor_certificate(1, 0) is certificate
        assert isinstance(certificate, CorridorCertificate)

    def test_sweep_produces_both_verdicts(self, sharded_grid):
        """The forced-widening requirement: on a 3-shard grid some
        cross-shard pairs provably stay inside their corridor and some
        provably might not — the sweep must produce both verdicts, or
        the certificate is a constant function in disguise."""
        network, partition = sharded_grid
        certificate = partition.corridor_certificate(0, 1)
        verdicts = {"certified": 0, "widened": 0, "unreachable": 0}
        shard0 = sorted(partition.shard(0).nodes)
        shard1 = sorted(partition.shard(1).nodes)
        for source in shard0[::4]:
            for target in shard1[::4]:
                verdicts[certificate.decide(source, target)] += 1
        assert verdicts["certified"] > 0
        assert verdicts["widened"] > 0

    def test_certified_routes_are_exactly_optimal(self, sharded_grid):
        """The point of the certificate: every *certified* pair's
        corridor-restricted cost equals the full-network optimum."""
        network, partition = sharded_grid
        certificate = partition.corridor_certificate(0, 1)
        shard0 = sorted(partition.shard(0).nodes)
        shard1 = sorted(partition.shard(1).nodes)
        checked = 0
        for source in shard0[::6]:
            for target in shard1[::6]:
                if certificate.decide(source, target) != "certified":
                    continue
                corridor_cost = shortest_path_cost(
                    certificate.corridor, source, target)
                full_cost = shortest_path_cost(network, source, target)
                assert corridor_cost == pytest.approx(full_cost, abs=1e-9)
                checked += 1
        assert checked > 0

    def test_custom_cost_always_widens(self, sharded_grid):
        """No admissible geometric bound exists for an arbitrary cost
        function, so the certificate must conservatively widen."""
        _, partition = sharded_grid
        certificate = partition.corridor_certificate(0, 1)
        shard0 = sorted(partition.shard(0).nodes)
        shard1 = sorted(partition.shard(1).nodes)

        def custom(edge):
            return edge.length * 2.0

        assert certificate.decide(shard0[0], shard1[0],
                                  cost=custom) == "widened"

    def test_ensure_hierarchies_builds_per_shard(self, sharded_grid):
        network, partition = sharded_grid
        build_ms = partition.ensure_hierarchies()
        assert set(build_ms) == {
            partition.subnetwork(i).name
            for i in range(partition.num_shards)}
        assert all(ms >= 0.0 for ms in build_ms.values())
        for shard_id in range(partition.num_shards):
            sub = partition.subnetwork(shard_id)
            assert csr_for(sub).ch_if_built() is not None
