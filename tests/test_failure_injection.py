"""Failure-injection tests: every layer must fail loudly and precisely.

These tests damage inputs the way real deployments do — corrupted
checkpoints, disconnected networks, degenerate trajectories, hostile
configs — and assert the library raises its own exception types with
actionable messages instead of crashing arbitrarily or mis-learning
silently.
"""

import json

import numpy as np
import pytest

from repro.core import PathRankRanker, RankerConfig, TrainerConfig
from repro.errors import (
    ConfigError,
    DataError,
    GraphError,
    NoPathError,
    ReproError,
    SerializationError,
    TrainingError,
)
from repro.graph import Path, RoadNetwork, grid_network, shortest_path
from repro.ranking import TrainingDataConfig, generate_queries
from repro.trajectories import (
    FleetConfig,
    GPSPoint,
    MapMatcher,
    Trajectory,
    TrajectoryDataset,
    Trip,
    generate_fleet,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigError, DataError, GraphError, NoPathError.__mro__[0],
        SerializationError, TrainingError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        if exc is NoPathError.__mro__[0]:
            exc = NoPathError
        assert issubclass(exc, ReproError)

    def test_no_path_error_carries_endpoints(self):
        error = NoPathError(3, 9)
        assert error.source == 3
        assert error.target == 9
        assert "3" in str(error) and "9" in str(error)


class TestCorruptedCheckpoints:
    @pytest.fixture
    def trained(self, tmp_path):
        network = grid_network(4, 4, seed=0)
        config = FleetConfig(num_drivers=4, trips_per_driver=4,
                             min_trip_distance=300.0, num_od_hotspots=8)
        _, trips = generate_fleet(network, rng=0, config=config)
        ranker_config = RankerConfig(
            embedding_dim=8, hidden_size=8, fc_hidden=4,
            training_data=TrainingDataConfig(k=3, examine_limit=40),
            trainer=TrainerConfig(epochs=2, patience=2),
        )
        ranker = PathRankRanker(network, ranker_config).fit(trips, rng=0)
        path = tmp_path / "model.npz"
        ranker.save(path)
        return network, ranker, path

    def test_truncated_file(self, trained, tmp_path):
        network, _, path = trained
        corrupted = tmp_path / "truncated.npz"
        corrupted.write_bytes(path.read_bytes()[:100])
        with pytest.raises(Exception):
            PathRankRanker(network).load(corrupted)

    def test_random_bytes(self, trained, tmp_path):
        network, _, _ = trained
        garbage = tmp_path / "garbage.npz"
        garbage.write_bytes(b"\x00" * 512)
        with pytest.raises(Exception):
            PathRankRanker(network).load(garbage)

    def test_plain_npz_without_metadata(self, trained, tmp_path):
        network, _, _ = trained
        plain = tmp_path / "plain.npz"
        np.savez(plain, weights=np.zeros(4))
        with pytest.raises(SerializationError):
            PathRankRanker(network).load(plain)

    def test_wrong_network_size(self, trained):
        _, _, path = trained
        other = grid_network(5, 5, seed=1)
        with pytest.raises(ConfigError):
            PathRankRanker(other).load(path)


class TestCorruptedDatasets:
    def test_truncated_json(self, tmp_path):
        broken = tmp_path / "broken.json"
        broken.write_text('{"format_version": 1, "network"', encoding="utf-8")
        with pytest.raises(SerializationError):
            TrajectoryDataset.load(broken)

    def test_trip_referencing_missing_edge(self, tmp_path):
        network = grid_network(4, 4, seed=0)
        config = FleetConfig(num_drivers=2, trips_per_driver=2,
                             min_trip_distance=300.0, num_od_hotspots=4)
        _, trips = generate_fleet(network, rng=0, config=config)
        dataset = TrajectoryDataset(network, trips)
        document = dataset.to_dict()
        document["trips"][0]["vertices"] = [0, 99]  # no such edge
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(ReproError):
            TrajectoryDataset.load(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "versioned.json"
        path.write_text('{"format_version": 42, "network": {}, "trips": []}',
                        encoding="utf-8")
        with pytest.raises(SerializationError):
            TrajectoryDataset.load(path)


class TestDegenerateNetworks:
    def test_disconnected_network_candidate_generation(self):
        network = RoadNetwork()
        for i in range(4):
            network.add_vertex(i, float(i), 0.0)
        network.add_two_way(0, 1, length=1.0)
        network.add_two_way(2, 3, length=1.0)
        with pytest.raises(NoPathError):
            shortest_path(network, 0, 3)

    def test_gps_far_outside_network(self, tiny_network):
        matcher = MapMatcher(tiny_network, sigma=5.0)
        faraway = Trajectory(1, 1, [
            GPSPoint(1e6, 1e6, 0.0),
            GPSPoint(1e6 + 10, 1e6, 10.0),
        ])
        # Either matches with terrible likelihood or raises DataError —
        # but must not crash with an arbitrary exception.
        try:
            result = matcher.match(faraway)
            assert result.log_likelihood < -1e6
        except DataError:
            pass

    def test_training_on_single_query_runs(self, tiny_network):
        trip = Trip(0, 0, Path(tiny_network, [3, 4, 1, 2]))
        queries = generate_queries(
            [trip], TrainingDataConfig(k=3, examine_limit=30), min_candidates=2)
        from repro.core import Trainer, build_pathrank

        model = build_pathrank("PR-A2", num_vertices=6, embedding_dim=4,
                               hidden_size=4, fc_hidden=4, rng=0)
        history = Trainer(model, TrainerConfig(epochs=2, patience=2)).fit(queries)
        assert history.epochs_run == 2


class TestHostileConfigs:
    def test_negative_dropout_rejected(self):
        from repro.nn import Dropout

        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_zero_vertex_model_rejected(self):
        from repro.core import PathRank

        with pytest.raises(ConfigError):
            PathRank(num_vertices=0)

    def test_fleet_min_distance_larger_than_network(self):
        network = grid_network(3, 3, seed=0)
        config = FleetConfig(num_drivers=1, trips_per_driver=1,
                             min_trip_distance=1e9, max_od_attempts=3,
                             num_od_hotspots=2)
        with pytest.raises(DataError):
            generate_fleet(network, rng=0, config=config)

    def test_candidate_k_larger_than_examine_limit(self):
        with pytest.raises(ValueError):
            TrainingDataConfig(k=50, examine_limit=10)
