"""Tests for the seeding helpers and the exception taxonomy."""

import numpy as np
import pytest

from repro import DEFAULT_SEED, ReproError, make_rng
from repro.errors import (
    ConfigError,
    DataError,
    EdgeNotFoundError,
    GradientError,
    GraphError,
    InvalidPathError,
    NNError,
    NoPathError,
    SerializationError,
    ShapeError,
    TrainingError,
    VertexNotFoundError,
)
from repro.rng import spawn


class TestMakeRng:
    def test_none_uses_default_seed(self):
        a = make_rng(None)
        b = np.random.default_rng(DEFAULT_SEED)
        assert a.random() == b.random()

    def test_int_seed(self):
        assert make_rng(5).random() == np.random.default_rng(5).random()

    def test_numpy_integer_seed(self):
        assert make_rng(np.int64(5)).random() == np.random.default_rng(5).random()

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert make_rng(generator) is generator

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            make_rng("not-a-seed")


class TestSpawn:
    def test_children_count(self):
        children = spawn(make_rng(0), 3)
        assert len(children) == 3

    def test_children_independent(self):
        a, b = spawn(make_rng(0), 2)
        assert a.random() != b.random()

    def test_deterministic(self):
        first = [g.random() for g in spawn(make_rng(7), 3)]
        second = [g.random() for g in spawn(make_rng(7), 3)]
        assert first == second

    def test_zero_children(self):
        assert spawn(make_rng(0), 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(make_rng(0), -1)


class TestErrorTaxonomy:
    @pytest.mark.parametrize("exc", [
        GraphError, VertexNotFoundError, EdgeNotFoundError, NoPathError,
        InvalidPathError, NNError, ShapeError, GradientError,
        SerializationError, ConfigError, DataError, TrainingError,
    ])
    def test_catchable_as_repro_error(self, exc):
        if exc is VertexNotFoundError:
            instance = exc(1)
        elif exc in (EdgeNotFoundError, NoPathError):
            instance = exc(1, 2)
        else:
            instance = exc("boom")
        assert isinstance(instance, ReproError)

    def test_vertex_error_payload(self):
        error = VertexNotFoundError(42)
        assert error.vertex_id == 42
        assert "42" in str(error)

    def test_edge_error_payload(self):
        error = EdgeNotFoundError(1, 2)
        assert (error.source, error.target) == (1, 2)

    def test_nn_errors_are_nn_scoped(self):
        assert issubclass(ShapeError, NNError)
        assert issubclass(GradientError, NNError)

    def test_graph_errors_are_graph_scoped(self):
        for exc in (VertexNotFoundError, EdgeNotFoundError, NoPathError,
                    InvalidPathError):
            assert issubclass(exc, GraphError)
