"""Tests for SGNS training and the node2vec orchestration."""

import numpy as np
import pytest

from repro.embedding import (
    Node2Vec,
    Node2VecConfig,
    SkipGramConfig,
    SkipGramModel,
    build_training_pairs,
    train_node2vec,
)
from repro.graph import grid_network


class TestTrainingPairs:
    def test_window_one(self):
        centres, contexts = build_training_pairs([[0, 1, 2]], window=1)
        pairs = set(zip(centres.tolist(), contexts.tolist()))
        assert pairs == {(0, 1), (1, 0), (1, 2), (2, 1)}

    def test_window_two_covers_skips(self):
        centres, contexts = build_training_pairs([[0, 1, 2]], window=2)
        pairs = set(zip(centres.tolist(), contexts.tolist()))
        assert (0, 2) in pairs and (2, 0) in pairs

    def test_no_self_pairs(self):
        centres, contexts = build_training_pairs([[0, 1, 2, 3]], window=3)
        assert not np.any(centres == contexts) or len(set([0, 1, 2, 3])) == 4

    def test_multiple_walks_concatenate(self):
        c1, _ = build_training_pairs([[0, 1]], window=1)
        c2, _ = build_training_pairs([[0, 1], [2, 3]], window=1)
        assert c2.size == 2 * c1.size

    def test_short_walk_no_pairs(self):
        centres, contexts = build_training_pairs([[5]], window=2)
        assert centres.size == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            build_training_pairs([[0, 1]], window=0)


class TestSkipGramConfig:
    def test_defaults_valid(self):
        SkipGramConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dim": 0},
            {"window": 0},
            {"negatives": 0},
            {"epochs": 0},
            {"learning_rate": 0.0},
            {"batch_size": 0},
            {"learning_rate": 0.001, "min_learning_rate": 0.01},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            SkipGramConfig(**kwargs)


class TestSkipGramModel:
    def test_vocab_validation(self):
        with pytest.raises(ValueError):
            SkipGramModel(1, SkipGramConfig())

    def test_shapes(self):
        model = SkipGramModel(10, SkipGramConfig(dim=8))
        assert model.vectors.shape == (10, 8)
        assert model.context_vectors.shape == (10, 8)

    def test_empty_walks_rejected(self):
        model = SkipGramModel(5, SkipGramConfig())
        with pytest.raises(ValueError):
            model.train([[0], [1]])

    def test_loss_decreases(self):
        # Two disjoint "communities" visited by separate walks.
        walks = [[0, 1, 2, 0, 1, 2] for _ in range(20)]
        walks += [[3, 4, 5, 3, 4, 5] for _ in range(20)]
        model = SkipGramModel(6, SkipGramConfig(dim=16, epochs=5, window=2), rng=0)
        losses = model.train(walks, rng=0)
        assert losses[-1] < losses[0]

    def test_learns_community_structure(self):
        walks = [[0, 1, 2, 1, 0, 2] for _ in range(30)]
        walks += [[3, 4, 5, 4, 3, 5] for _ in range(30)]
        model = SkipGramModel(6, SkipGramConfig(dim=16, epochs=8, window=2), rng=1)
        model.train(walks, rng=1)
        intra = model.similarity(0, 1)
        inter = model.similarity(0, 4)
        assert intra > inter

    def test_callback_invoked(self):
        walks = [[0, 1, 2]] * 5
        model = SkipGramModel(3, SkipGramConfig(epochs=2), rng=0)
        seen = []
        model.train(walks, rng=0, callback=lambda e, l: seen.append((e, l)))
        assert [e for e, _ in seen] == [0, 1]

    def test_most_similar_excludes_self(self):
        model = SkipGramModel(5, SkipGramConfig(dim=4), rng=0)
        result = model.most_similar(2, top=3)
        assert len(result) == 3
        assert all(vertex != 2 for vertex, _ in result)

    def test_similarity_bounds(self):
        model = SkipGramModel(5, SkipGramConfig(dim=4), rng=0)
        for a in range(5):
            for b in range(5):
                assert -1.0 - 1e-9 <= model.similarity(a, b) <= 1.0 + 1e-9


class TestNode2Vec:
    @pytest.fixture(scope="class")
    def fitted(self):
        net = grid_network(5, 5, seed=3)
        n2v = Node2Vec(net, Node2VecConfig(dim=16, num_walks=6, walk_length=20, epochs=3))
        matrix = n2v.fit(rng=0)
        return net, n2v, matrix

    def test_matrix_shape(self, fitted):
        net, _, matrix = fitted
        assert matrix.shape == (net.num_vertices, 16)

    def test_losses_recorded(self, fitted):
        _, n2v, _ = fitted
        assert len(n2v.losses) == 3
        assert n2v.losses[-1] <= n2v.losses[0]

    def test_neighbours_embed_closer_than_distant(self, fitted):
        net, n2v, _ = fitted
        model = n2v.model
        neighbour = net.successors(0)[0]
        far = net.num_vertices - 1
        assert model.similarity(0, neighbour) > model.similarity(0, far)

    def test_requires_dense_ids(self):
        from repro.graph import RoadNetwork

        net = RoadNetwork()
        net.add_vertex(5, 0, 0)
        net.add_vertex(9, 1, 0)
        net.add_two_way(5, 9, length=1.0)
        with pytest.raises(ValueError):
            Node2Vec(net)

    def test_matrix_before_fit_rejected(self):
        net = grid_network(4, 4, seed=0)
        with pytest.raises(RuntimeError):
            Node2Vec(net).embedding_matrix

    def test_deterministic(self):
        net = grid_network(4, 4, seed=0)
        config = Node2VecConfig(dim=8, num_walks=2, walk_length=10, epochs=1)
        a = Node2Vec(net, config).fit(rng=7)
        b = Node2Vec(net, config).fit(rng=7)
        np.testing.assert_allclose(a, b)

    def test_convenience_wrapper(self):
        net = grid_network(4, 4, seed=0)
        matrix = train_node2vec(net, dim=8, rng=0, num_walks=2, walk_length=10, epochs=1)
        assert matrix.shape == (net.num_vertices, 8)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            Node2VecConfig(num_walks=0)
        with pytest.raises(ValueError):
            Node2VecConfig(p=0.0)
