"""Tests for the biased second-order walk generator."""

import numpy as np
import pytest

from repro.embedding import BiasedWalkGenerator
from repro.graph import RoadNetwork, grid_network


@pytest.fixture(scope="module")
def grid():
    return grid_network(6, 6, seed=5)


class TestWalkValidity:
    def test_walks_follow_edges(self, grid):
        walker = BiasedWalkGenerator(grid)
        walk = walker.walk(0, 20, rng=0)
        for u, v in zip(walk, walk[1:]):
            assert grid.has_edge(u, v)

    def test_walk_starts_at_start(self, grid):
        walker = BiasedWalkGenerator(grid)
        assert walker.walk(3, 10, rng=0)[0] == 3

    def test_walk_length_respected(self, grid):
        walker = BiasedWalkGenerator(grid)
        assert len(walker.walk(0, 15, rng=0)) == 15

    def test_length_one(self, grid):
        walker = BiasedWalkGenerator(grid)
        assert walker.walk(4, 1, rng=0) == [4]

    def test_dead_end_truncates(self):
        net = RoadNetwork()
        net.add_vertex(0, 0, 0)
        net.add_vertex(1, 1, 0)
        net.add_vertex(2, 2, 0)
        net.add_edge(0, 1, length=1.0)
        net.add_edge(1, 2, length=1.0)
        walker = BiasedWalkGenerator(net)
        walk = walker.walk(0, 10, rng=0)
        assert walk == [0, 1, 2]

    def test_isolated_sink_returns_single(self):
        net = RoadNetwork()
        net.add_vertex(0, 0, 0)
        net.add_vertex(1, 1, 0)
        net.add_edge(0, 1, length=1.0)
        walker = BiasedWalkGenerator(net)
        assert walker.walk(1, 10, rng=0) == [1]

    def test_invalid_length(self, grid):
        with pytest.raises(ValueError):
            BiasedWalkGenerator(grid).walk(0, 0)

    def test_invalid_pq(self, grid):
        with pytest.raises(ValueError):
            BiasedWalkGenerator(grid, p=0.0)
        with pytest.raises(ValueError):
            BiasedWalkGenerator(grid, q=-1.0)

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            BiasedWalkGenerator(RoadNetwork())


class TestGenerate:
    def test_count(self, grid):
        walker = BiasedWalkGenerator(grid)
        walks = walker.generate(3, 10, rng=0)
        assert len(walks) == 3 * grid.num_vertices

    def test_every_vertex_covered(self, grid):
        walker = BiasedWalkGenerator(grid)
        walks = walker.generate(1, 5, rng=0)
        starts = {walk[0] for walk in walks}
        assert starts == set(grid.vertex_ids())

    def test_deterministic_given_seed(self, grid):
        walker = BiasedWalkGenerator(grid)
        assert walker.generate(2, 8, rng=42) == walker.generate(2, 8, rng=42)

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            BiasedWalkGenerator(grid).generate(0, 10)


class TestBias:
    def build_line_with_branch(self):
        """0 <-> 1 <-> 2 and 1 <-> 3: from edge (0,1), returning to 0 is
        controlled by p; moving to 2/3 (distance 2 from 0) by q."""
        net = RoadNetwork()
        for i, (x, y) in enumerate([(0, 0), (1, 0), (2, 0), (1, 1)]):
            net.add_vertex(i, float(x), float(y))
        net.add_two_way(0, 1, length=1.0)
        net.add_two_way(1, 2, length=1.0)
        net.add_two_way(1, 3, length=1.0)
        return net

    def count_returns(self, p, q, trials=4000):
        net = self.build_line_with_branch()
        walker = BiasedWalkGenerator(net, p=p, q=q)
        rng = np.random.default_rng(0)
        returns = 0
        for _ in range(trials):
            walk = walker.walk(0, 3, rng=rng)
            if len(walk) == 3 and walk[2] == 0:
                returns += 1
        return returns / trials

    def test_low_p_encourages_returning(self):
        assert self.count_returns(p=0.1, q=1.0) > self.count_returns(p=10.0, q=1.0)

    def test_high_q_discourages_outward(self):
        # With q large, outward moves (to 2/3) are damped, so returns rise.
        assert self.count_returns(p=1.0, q=10.0) > self.count_returns(p=1.0, q=0.1)

    def test_weighted_walks_prefer_heavy_edges(self):
        net = RoadNetwork()
        net.add_vertex(0, 0, 0)
        net.add_vertex(1, 1, 0)
        net.add_vertex(2, 0, 1)
        net.add_two_way(0, 1, length=9.0)
        net.add_two_way(0, 2, length=1.0)
        walker = BiasedWalkGenerator(net, weighted=True)
        rng = np.random.default_rng(1)
        firsts = [walker.walk(0, 2, rng=rng)[1] for _ in range(4000)]
        share_to_1 = firsts.count(1) / len(firsts)
        assert share_to_1 > 0.8
