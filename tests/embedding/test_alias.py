"""Tests for the alias-method sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.embedding import AliasSampler


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AliasSampler([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            AliasSampler([1.0, -0.5])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            AliasSampler([0.0, 0.0])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            AliasSampler([1.0, float("nan")])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            AliasSampler(np.ones((2, 2)))


class TestSampling:
    def test_single_outcome(self):
        sampler = AliasSampler([3.0])
        rng = np.random.default_rng(0)
        assert all(sampler.sample(rng) == 0 for _ in range(10))

    def test_zero_weight_never_sampled(self):
        sampler = AliasSampler([1.0, 0.0, 1.0])
        rng = np.random.default_rng(0)
        draws = sampler.sample_many(rng, 5000)
        assert 1 not in set(draws.tolist())

    def test_uniform_distribution(self):
        sampler = AliasSampler([1.0, 1.0, 1.0, 1.0])
        rng = np.random.default_rng(1)
        draws = sampler.sample_many(rng, 40_000)
        freqs = np.bincount(draws, minlength=4) / draws.size
        np.testing.assert_allclose(freqs, 0.25, atol=0.02)

    def test_skewed_distribution(self):
        weights = [8.0, 1.0, 1.0]
        sampler = AliasSampler(weights)
        rng = np.random.default_rng(2)
        draws = sampler.sample_many(rng, 50_000)
        freqs = np.bincount(draws, minlength=3) / draws.size
        np.testing.assert_allclose(freqs, [0.8, 0.1, 0.1], atol=0.02)

    def test_sample_many_negative_size(self):
        with pytest.raises(ValueError):
            AliasSampler([1.0]).sample_many(np.random.default_rng(0), -1)

    def test_sample_many_zero_size(self):
        out = AliasSampler([1.0]).sample_many(np.random.default_rng(0), 0)
        assert out.size == 0

    def test_scalar_and_vector_agree_statistically(self):
        sampler = AliasSampler([2.0, 1.0])
        rng = np.random.default_rng(3)
        scalar_draws = np.array([sampler.sample(rng) for _ in range(30_000)])
        vector_draws = sampler.sample_many(np.random.default_rng(4), 30_000)
        assert abs(scalar_draws.mean() - vector_draws.mean()) < 0.02


@given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20),
       st.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_property_frequencies_match_weights(weights, seed):
    """Empirical frequencies converge to the normalised weights."""
    sampler = AliasSampler(weights)
    rng = np.random.default_rng(seed)
    draws = sampler.sample_many(rng, 20_000)
    expected = np.asarray(weights) / np.sum(weights)
    freqs = np.bincount(draws, minlength=len(weights)) / draws.size
    np.testing.assert_allclose(freqs, expected, atol=0.05)
