"""Tests for candidate-set analysis."""

import pytest

from repro.experiments.analysis import analyse_queries, compare_strategies
from repro.ranking import Strategy, TrainingDataConfig, generate_queries
from repro.trajectories import generate_fleet


@pytest.fixture(scope="module")
def query_sets(region_network):
    _, trips = generate_fleet(region_network, num_drivers=6, trips_per_driver=4,
                              rng=3)
    tkdi = generate_queries(trips, TrainingDataConfig(
        strategy=Strategy.TKDI, k=4))
    dtkdi = generate_queries(trips, TrainingDataConfig(
        strategy=Strategy.D_TKDI, k=4, diversity_threshold=0.8,
        examine_limit=100))
    return tkdi, dtkdi


class TestAnalyseQueries:
    def test_stats_ranges(self, query_sets):
        tkdi, _ = query_sets
        stats = analyse_queries(tkdi)
        assert stats.num_queries == len(tkdi)
        assert 2 <= stats.mean_candidates <= 4
        assert 0.0 <= stats.mean_pairwise_similarity <= 1.0
        assert 0.0 <= stats.mean_best_score <= 1.0
        assert 0.0 <= stats.coverage_at_80 <= 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            analyse_queries([])

    def test_as_row_length(self, query_sets):
        tkdi, _ = query_sets
        assert len(analyse_queries(tkdi).as_row()) == 7

    def test_stretch_at_least_one(self, query_sets):
        """No candidate can be shorter than the shortest path."""
        tkdi, dtkdi = query_sets
        for stats in (analyse_queries(tkdi), analyse_queries(dtkdi)):
            assert stats.mean_candidate_stretch >= 1.0 - 1e-9
            assert stats.mean_best_stretch >= 1.0 - 1e-9
            # The best candidate cannot be longer on average than the
            # whole set's mean only when sets are singletons; both stay
            # within a sane detour factor on this corpus.
            assert stats.mean_candidate_stretch < 3.0

    def test_batched_sweep_matches_per_query_dijkstra(self, query_sets):
        from repro.experiments.analysis import query_shortest_distances
        from repro.graph import shortest_path_cost

        tkdi, _ = query_sets
        batched = query_shortest_distances(tkdi)
        for query, distance in zip(tkdi, batched):
            expected = shortest_path_cost(
                query.trajectory_path.network, query.source, query.target)
            assert distance == pytest.approx(expected)


class TestStrategyComparison:
    def test_diversified_less_similar(self, query_sets):
        """The paper's data claim on this corpus."""
        tkdi, dtkdi = query_sets
        stats = compare_strategies({"TkDI": tkdi, "D-TkDI": dtkdi})
        assert stats["D-TkDI"].mean_pairwise_similarity < \
            stats["TkDI"].mean_pairwise_similarity

    def test_diversified_spreads_scores(self, query_sets):
        tkdi, dtkdi = query_sets
        stats = compare_strategies({"TkDI": tkdi, "D-TkDI": dtkdi})
        assert stats["D-TkDI"].mean_score_spread >= \
            stats["TkDI"].mean_score_spread

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compare_strategies({})
