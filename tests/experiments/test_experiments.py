"""Integration tests for the experiment harness (smoke preset).

These run the full paper pipeline end to end — network, fleet, node2vec,
candidate generation, training, evaluation — at the tiny ``smoke`` scale
so the suite stays fast.  Headline-scale results live in benchmarks/.
"""

import pytest

from repro.core.variants import Variant
from repro.experiments import (
    ExperimentConfig,
    ExperimentPipeline,
    render_strategy_table,
    render_table,
    strategy_table,
)
from repro.ranking import Strategy


@pytest.fixture(scope="module")
def pipeline():
    return ExperimentPipeline(ExperimentConfig.smoke())


class TestPresets:
    def test_paper_preset_shape(self):
        config = ExperimentConfig.paper()
        assert config.embedding_dim == 64
        assert config.training_data.strategy is Strategy.D_TKDI

    def test_quick_smaller_than_paper(self):
        paper, quick = ExperimentConfig.paper(), ExperimentConfig.quick()
        assert quick.fleet.num_drivers < paper.fleet.num_drivers
        assert quick.embedding_dim <= paper.embedding_dim

    def test_axis_helpers(self):
        config = ExperimentConfig.smoke()
        assert config.with_embedding_dim(8).embedding_dim == 8
        assert config.with_k(7).training_data.k == 7
        assert config.with_strategy(Strategy.TKDI).training_data.strategy \
            is Strategy.TKDI
        assert config.with_variant(Variant.PR_A1).variant is Variant.PR_A1
        assert config.with_diversity_threshold(0.5).training_data \
            .diversity_threshold == 0.5


class TestPipeline:
    def test_network_cached(self, pipeline):
        assert pipeline.network is pipeline.network

    def test_split_deterministic_and_cached(self, pipeline):
        split = pipeline.split
        assert split is pipeline.split
        assert split.sizes[0] > 0 and split.sizes[2] > 0

    def test_embedding_cached_per_dim(self, pipeline):
        a = pipeline.embedding(8)
        assert a is pipeline.embedding(8)
        assert a.shape == (pipeline.network.num_vertices, 8)
        assert pipeline.embedding(4).shape[1] == 4

    def test_queries_cached_per_config(self, pipeline):
        base = pipeline.base.training_data
        first = pipeline.queries(base)
        assert first is pipeline.queries(base)
        train, test = first
        assert train and test

    def test_eval_queries_fixed_across_cells(self, pipeline):
        eval_set = pipeline.eval_queries()
        assert eval_set is pipeline.queries(pipeline.base.training_data)[1]

    def test_run_cell_end_to_end(self, pipeline):
        result = pipeline.run_cell(pipeline.base)
        assert result.history.epochs_run >= 1
        assert 0.0 <= result.metrics.mae <= 1.0
        assert -1.0 <= result.metrics.tau <= 1.0
        assert "PR-A2" in result.label

    def test_strategy_table_rows(self, pipeline):
        rows = strategy_table(pipeline, Variant.PR_A2, embedding_sizes=(8,))
        assert len(rows) == 2  # two strategies x one M
        strategies = {row.strategy for row in rows}
        assert strategies == {"TkDI", "D-TkDI"}


class TestReporting:
    def test_render_table_layout(self):
        text = render_table("T", ["a", "bb"], [[1.0, "x"], [2.5, "yy"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "1.0000" in text and "yy" in text

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table("T", ["a"], [[1.0, 2.0]])

    def test_render_strategy_table(self, pipeline):
        rows = strategy_table(pipeline, Variant.PR_A1, embedding_sizes=(8,))
        text = render_strategy_table("Table X", rows)
        assert "Strategies" in text
        assert "TkDI" in text
