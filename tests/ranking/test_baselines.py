"""Tests for the ranking baselines."""

import numpy as np
import pytest

from repro.errors import TrainingError
from repro.ranking import (
    FEATURE_NAMES,
    FeatureRidgeBaseline,
    GenerationOrderBaseline,
    LengthRatioBaseline,
    TravelTimeRatioBaseline,
    TrainingDataConfig,
    evaluate_scorer,
    generate_queries,
    path_features,
)
from repro.trajectories import generate_fleet


@pytest.fixture(scope="module")
def queries(region_network):
    _, trips = generate_fleet(region_network, num_drivers=8, trips_per_driver=4,
                              rng=6)
    return generate_queries(trips, TrainingDataConfig(k=4, examine_limit=80))


class TestHeuristicBaselines:
    def test_length_ratio_in_unit_interval(self, queries):
        baseline = LengthRatioBaseline()
        for query in queries[:5]:
            scores = baseline.score_query(query)
            assert all(0.0 < s <= 1.0 for s in scores)

    def test_length_ratio_shortest_gets_one(self, queries):
        baseline = LengthRatioBaseline()
        for query in queries[:5]:
            scores = baseline.score_query(query)
            shortest = min(range(len(query)),
                           key=lambda i: query.candidates[i].path.length)
            assert scores[shortest] == pytest.approx(1.0)

    def test_time_ratio_fastest_gets_one(self, queries):
        baseline = TravelTimeRatioBaseline()
        for query in queries[:5]:
            scores = baseline.score_query(query)
            fastest = min(range(len(query)),
                          key=lambda i: query.candidates[i].path.travel_time)
            assert scores[fastest] == pytest.approx(1.0)

    def test_generation_order_monotone(self, queries):
        baseline = GenerationOrderBaseline()
        for query in queries[:5]:
            scores = baseline.score_query(query)
            assert scores == sorted(scores, reverse=True)

    def test_fit_is_noop(self, queries):
        baseline = LengthRatioBaseline()
        assert baseline.fit(queries) is baseline


class TestFeatures:
    def test_feature_vector_shape(self, queries):
        query = queries[0]
        candidate = query.candidates[0]
        features = path_features(candidate.path, query, candidate.generation_rank)
        assert features.shape == (len(FEATURE_NAMES),)

    def test_category_fractions_sum_to_one(self, queries):
        query = queries[0]
        candidate = query.candidates[0]
        features = path_features(candidate.path, query, candidate.generation_rank)
        fractions = features[4:8]
        assert fractions.sum() == pytest.approx(1.0)

    def test_ratios_bounded(self, queries):
        for query in queries[:5]:
            for candidate in query.candidates:
                features = path_features(candidate.path, query,
                                         candidate.generation_rank)
                assert 0.0 < features[0] <= 1.0  # length ratio
                assert 0.0 < features[1] <= 1.0  # time ratio


class TestRidge:
    def test_requires_fit(self, queries):
        with pytest.raises(TrainingError):
            FeatureRidgeBaseline().score_query(queries[0])

    def test_fit_empty_rejected(self):
        with pytest.raises(TrainingError):
            FeatureRidgeBaseline().fit([])

    def test_scores_clipped_to_unit_interval(self, queries):
        baseline = FeatureRidgeBaseline().fit(queries)
        for query in queries[:5]:
            assert all(0.0 <= s <= 1.0 for s in baseline.score_query(query))

    def test_invalid_regularisation(self):
        with pytest.raises(ValueError):
            FeatureRidgeBaseline(regularisation=0.0)

    def test_learns_better_than_random(self, queries):
        rng = np.random.default_rng(0)
        baseline = FeatureRidgeBaseline().fit(queries)
        fitted = evaluate_scorer(baseline, queries)

        class RandomScorer:
            def score_query(self, query):
                return rng.random(len(query)).tolist()

        random_metrics = evaluate_scorer(RandomScorer(), queries)
        assert fitted.mae < random_metrics.mae

    def test_evaluate_scorer_rejects_bad_scorer(self, queries):
        class BrokenScorer:
            def score_query(self, query):
                return [0.5]  # wrong length

        with pytest.raises(ValueError):
            evaluate_scorer(BrokenScorer(), queries)

    def test_evaluate_scorer_empty_queries(self):
        with pytest.raises(ValueError):
            evaluate_scorer(LengthRatioBaseline(), [])
