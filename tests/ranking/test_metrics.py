"""Tests for MAE/MARE/τ/ρ, with scipy as the oracle."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.ranking import (
    evaluate_predictions,
    kendall_tau,
    mean_absolute_error,
    mean_absolute_relative_error,
    spearman_rho,
)


class TestMAE:
    def test_zero_on_match(self):
        assert mean_absolute_error([1.0, 0.5], [1.0, 0.5]) == 0.0

    def test_known_value(self):
        assert mean_absolute_error([1.0, 0.0], [0.0, 1.0]) == 1.0

    def test_symmetric(self):
        assert mean_absolute_error([1.0, 2.0], [2.0, 4.0]) == \
            mean_absolute_error([2.0, 4.0], [1.0, 2.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_absolute_error([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            mean_absolute_error([], [])


class TestMARE:
    def test_known_value(self):
        # sum|err|=0.2, sum|true|=1.0
        assert mean_absolute_relative_error([0.4, 0.6], [0.5, 0.7]) == pytest.approx(0.2)

    def test_zero_truth_rejected(self):
        with pytest.raises(ValueError):
            mean_absolute_relative_error([0.0, 0.0], [1.0, 1.0])

    def test_single_zero_truth_ok(self):
        value = mean_absolute_relative_error([0.0, 1.0], [0.1, 1.0])
        assert value == pytest.approx(0.1)


class TestKendallTau:
    def test_perfect_agreement(self):
        assert kendall_tau([1, 2, 3], [0.1, 0.2, 0.3]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert kendall_tau([1, 2, 3], [0.3, 0.2, 0.1]) == pytest.approx(-1.0)

    def test_matches_scipy_no_ties(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            a = rng.normal(size=8)
            b = rng.normal(size=8)
            expected = stats.kendalltau(a, b).statistic
            assert kendall_tau(a, b) == pytest.approx(expected)

    def test_matches_scipy_with_ties(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            a = rng.integers(0, 3, size=8).astype(float)
            b = rng.integers(0, 3, size=8).astype(float)
            expected = stats.kendalltau(a, b).statistic
            ours = kendall_tau(a, b)
            if math.isnan(expected):
                assert math.isnan(ours)
            else:
                assert ours == pytest.approx(expected)

    def test_constant_input_nan(self):
        assert math.isnan(kendall_tau([1.0, 1.0, 1.0], [1, 2, 3]))

    def test_single_element_nan(self):
        assert math.isnan(kendall_tau([1.0], [1.0]))


class TestSpearmanRho:
    def test_perfect_monotone(self):
        assert spearman_rho([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_matches_scipy_no_ties(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            a = rng.normal(size=9)
            b = rng.normal(size=9)
            expected = stats.spearmanr(a, b).statistic
            assert spearman_rho(a, b) == pytest.approx(expected)

    def test_matches_scipy_with_ties(self):
        rng = np.random.default_rng(3)
        for _ in range(10):
            a = rng.integers(0, 4, size=9).astype(float)
            b = rng.integers(0, 4, size=9).astype(float)
            expected = stats.spearmanr(a, b).statistic
            ours = spearman_rho(a, b)
            if math.isnan(expected):
                assert math.isnan(ours)
            else:
                assert ours == pytest.approx(expected)

    def test_constant_input_nan(self):
        assert math.isnan(spearman_rho([2.0, 2.0], [1.0, 3.0]))


@given(st.lists(st.floats(min_value=0, max_value=1, allow_nan=False), min_size=2,
                max_size=12))
@settings(max_examples=40, deadline=None)
def test_tau_rho_bounds_property(values):
    rng = np.random.default_rng(len(values))
    other = rng.random(len(values))
    tau = kendall_tau(values, other)
    rho = spearman_rho(values, other)
    for value in (tau, rho):
        assert math.isnan(value) or -1.0 - 1e-9 <= value <= 1.0 + 1e-9


@given(st.lists(st.floats(min_value=-5, max_value=5, allow_nan=False), min_size=2,
                max_size=10, unique=True))
@settings(max_examples=40, deadline=None)
def test_tau_self_correlation_is_one(values):
    assert kendall_tau(values, values) == pytest.approx(1.0)
    assert spearman_rho(values, values) == pytest.approx(1.0)


class TestEvaluatePredictions:
    def test_aggregates_groups(self):
        metrics = evaluate_predictions(
            [[0.9, 0.1], [0.8, 0.2]],
            [[0.8, 0.2], [0.7, 0.3]],
        )
        assert metrics.num_queries == 2
        assert metrics.num_candidates == 4
        assert metrics.tau == pytest.approx(1.0)
        assert metrics.mae == pytest.approx(0.1)

    def test_skips_degenerate_groups(self):
        metrics = evaluate_predictions(
            [[0.9, 0.1], [0.5, 0.5]],  # second group constant in truth
            [[0.8, 0.2], [0.6, 0.4]],
        )
        assert metrics.num_skipped_queries == 1
        assert metrics.tau == pytest.approx(1.0)

    def test_all_degenerate_rejected(self):
        with pytest.raises(ValueError):
            evaluate_predictions([[0.5, 0.5]], [[0.5, 0.5]])

    def test_group_count_mismatch(self):
        with pytest.raises(ValueError):
            evaluate_predictions([[1.0]], [[1.0], [2.0]])

    def test_group_length_mismatch(self):
        with pytest.raises(ValueError):
            evaluate_predictions([[1.0, 2.0]], [[1.0]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            evaluate_predictions([], [])

    def test_str_format(self):
        metrics = evaluate_predictions([[0.9, 0.1]], [[0.8, 0.2]])
        assert "MAE=" in str(metrics)
        assert "tau=" in str(metrics)

    def test_as_row(self):
        metrics = evaluate_predictions([[0.9, 0.1]], [[0.8, 0.2]])
        row = metrics.as_row()
        assert set(row) == {"MAE", "MARE", "tau", "rho"}
