"""Tests for listwise ranking measures."""

import math

import numpy as np
import pytest

from repro.ranking.listwise import (
    dcg_at_k,
    evaluate_listwise,
    ndcg_at_k,
    precision_at_1,
    reciprocal_rank,
    top1_regret,
)


class TestDcg:
    def test_first_position_undiscounted(self):
        assert dcg_at_k([1.0], 3) == pytest.approx(1.0)

    def test_second_position_discounted(self):
        assert dcg_at_k([0.0, 1.0], 3) == pytest.approx(1.0 / math.log2(3))

    def test_truncation(self):
        assert dcg_at_k([1.0, 1.0, 1.0], 1) == pytest.approx(1.0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            dcg_at_k([1.0], 0)


class TestNdcg:
    def test_perfect_ordering(self):
        assert ndcg_at_k([0.9, 0.5, 0.1], [0.8, 0.6, 0.2], 3) == pytest.approx(1.0)

    def test_worst_ordering_below_one(self):
        assert ndcg_at_k([0.9, 0.1], [0.1, 0.9], 2) < 1.0

    def test_all_zero_truth_nan(self):
        assert math.isnan(ndcg_at_k([0.0, 0.0], [0.5, 0.4], 2))

    def test_bounded(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            true = rng.random(5)
            pred = rng.random(5)
            value = ndcg_at_k(true, pred, 3)
            assert 0.0 <= value <= 1.0 + 1e-9

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            ndcg_at_k([1.0], [1.0, 2.0], 2)


class TestTopOfList:
    def test_precision_hit(self):
        assert precision_at_1([0.2, 0.9], [0.1, 0.8]) == 1.0

    def test_precision_miss(self):
        assert precision_at_1([0.9, 0.2], [0.1, 0.8]) == 0.0

    def test_precision_tie_on_truth_counts(self):
        assert precision_at_1([0.9, 0.9], [0.2, 0.8]) == 1.0

    def test_reciprocal_rank_first(self):
        assert reciprocal_rank([0.1, 0.9], [0.2, 0.8]) == 1.0

    def test_reciprocal_rank_second(self):
        assert reciprocal_rank([0.9, 0.1], [0.2, 0.8]) == pytest.approx(0.5)

    def test_regret_zero_on_hit(self):
        assert top1_regret([0.2, 0.9], [0.1, 0.8]) == 0.0

    def test_regret_value(self):
        assert top1_regret([0.9, 0.4], [0.1, 0.8]) == pytest.approx(0.5)


class TestEvaluateListwise:
    def test_aggregates(self):
        metrics = evaluate_listwise(
            [[0.9, 0.1], [0.8, 0.3]],
            [[0.7, 0.2], [0.2, 0.6]],
        )
        assert metrics.precision_at_1 == pytest.approx(0.5)
        assert metrics.mrr == pytest.approx((1.0 + 0.5) / 2)
        assert metrics.top1_regret == pytest.approx((0.0 + 0.5) / 2)
        assert metrics.num_queries == 2

    def test_all_zero_group_skipped_for_ndcg(self):
        metrics = evaluate_listwise(
            [[0.9, 0.1], [0.0, 0.0]],
            [[0.7, 0.2], [0.5, 0.4]],
        )
        assert metrics.ndcg3 == pytest.approx(1.0)

    def test_all_groups_zero_rejected(self):
        with pytest.raises(ValueError):
            evaluate_listwise([[0.0, 0.0]], [[0.5, 0.4]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            evaluate_listwise([], [])

    def test_repr(self):
        metrics = evaluate_listwise([[0.9, 0.1]], [[0.7, 0.2]])
        assert "nDCG@3" in repr(metrics)
