"""Tests for TkDI / D-TkDI training-data generation."""

import itertools

import pytest

from repro.errors import DataError
from repro.graph import Path, weighted_jaccard, yen_k_shortest_paths
from repro.ranking import (
    RankedCandidate,
    RankingQuery,
    Strategy,
    TrainingDataConfig,
    generate_queries,
)
from repro.trajectories import Trip, generate_fleet


@pytest.fixture(scope="module")
def fleet(region_network):
    _, trips = generate_fleet(region_network, num_drivers=6, trips_per_driver=4,
                              rng=3)
    return trips


class TestStrategyEnum:
    def test_from_name(self):
        assert Strategy.from_name("TkDI") is Strategy.TKDI
        assert Strategy.from_name("d-tkdi") is Strategy.D_TKDI

    def test_unknown(self):
        with pytest.raises(KeyError):
            Strategy.from_name("best-paths")


class TestConfig:
    def test_defaults(self):
        config = TrainingDataConfig()
        assert config.strategy is Strategy.D_TKDI
        assert config.k == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingDataConfig(k=0)
        with pytest.raises(ValueError):
            TrainingDataConfig(diversity_threshold=2.0)
        with pytest.raises(ValueError):
            TrainingDataConfig(k=10, examine_limit=5)


class TestRankedCandidate:
    def test_score_bounds(self, tiny_network):
        path = Path(tiny_network, [0, 1])
        with pytest.raises(DataError):
            RankedCandidate(path=path, score=1.5, generation_rank=0)


class TestGenerateQueries:
    def test_tkdi_candidates_are_topk(self, region_network, fleet):
        config = TrainingDataConfig(strategy=Strategy.TKDI, k=4)
        queries = generate_queries(fleet[:3], config)
        for query in queries:
            trip = next(t for t in fleet if t.trip_id == query.trip_id)
            expected = yen_k_shortest_paths(region_network, trip.source,
                                            trip.target, 4)
            assert query.paths() == expected

    def test_scores_are_weighted_jaccard(self, region_network, fleet):
        config = TrainingDataConfig(strategy=Strategy.TKDI, k=3)
        queries = generate_queries(fleet[:3], config)
        for query in queries:
            for candidate in query.candidates:
                expected = weighted_jaccard(candidate.path, query.trajectory_path)
                assert candidate.score == pytest.approx(expected)

    def test_dtkdi_respects_threshold(self, fleet):
        config = TrainingDataConfig(strategy=Strategy.D_TKDI, k=4,
                                    diversity_threshold=0.7, examine_limit=100)
        queries = generate_queries(fleet[:4], config)
        for query in queries:
            for a, b in itertools.combinations(query.paths(), 2):
                assert weighted_jaccard(a, b) <= 0.7 + 1e-9

    def test_query_metadata(self, fleet):
        queries = generate_queries(fleet[:2], TrainingDataConfig(k=3))
        for query in queries:
            trip = next(t for t in fleet if t.trip_id == query.trip_id)
            assert query.driver_id == trip.driver_id
            assert query.source == trip.source
            assert query.target == trip.target

    def test_generation_ranks_sequential(self, fleet):
        queries = generate_queries(fleet[:2], TrainingDataConfig(k=4))
        for query in queries:
            assert [c.generation_rank for c in query.candidates] == \
                list(range(len(query)))

    def test_min_candidates_filter(self, tiny_network):
        # tiny network: very few diverse paths exist for adjacent vertices.
        trip = Trip(0, 0, Path(tiny_network, [0, 1]))
        config = TrainingDataConfig(strategy=Strategy.D_TKDI, k=5,
                                    diversity_threshold=0.05, examine_limit=20)
        with pytest.raises(DataError):
            generate_queries([trip], config, min_candidates=5)

    def test_min_candidates_validation(self, fleet):
        with pytest.raises(ValueError):
            generate_queries(fleet[:1], min_candidates=0)

    def test_best_candidate(self, fleet):
        queries = generate_queries(fleet[:2], TrainingDataConfig(k=4))
        for query in queries:
            best = query.best_candidate()
            assert best.score == max(query.scores())

    def test_query_len_and_paths_align(self, fleet):
        queries = generate_queries(fleet[:2], TrainingDataConfig(k=4))
        for query in queries:
            assert len(query) == len(query.paths()) == len(query.scores())

    def test_dtkdi_produces_lower_pairwise_overlap_than_tkdi(self, fleet):
        """The paper's core observation: D-TkDI candidate sets are more
        diverse than plain top-k sets."""
        tkdi = generate_queries(fleet, TrainingDataConfig(
            strategy=Strategy.TKDI, k=4))
        dtkdi = generate_queries(fleet, TrainingDataConfig(
            strategy=Strategy.D_TKDI, k=4, diversity_threshold=0.8,
            examine_limit=100))

        def mean_pairwise(queries):
            values = []
            for query in queries:
                for a, b in itertools.combinations(query.paths(), 2):
                    values.append(weighted_jaccard(a, b))
            return sum(values) / len(values)

        assert mean_pairwise(dtkdi) < mean_pairwise(tkdi)
