"""Additional Module/loss coverage: traversal, counting, loss gradients."""

import numpy as np
import pytest

from repro.nn import (
    BCELoss,
    HuberLoss,
    Linear,
    MAELoss,
    Module,
    Parameter,
    Sequential,
    Tanh,
    Tensor,
    check_gradients,
)


class Nested(Module):
    def __init__(self):
        super().__init__()
        self.inner = Sequential([Linear(2, 3, rng=0), Tanh(), Linear(3, 1, rng=1)])
        self.bias = Parameter(np.zeros(1))

    def forward(self, x):
        return self.inner(x) + self.bias


class TestModuleTraversal:
    def test_modules_walks_depth_first(self):
        model = Nested()
        kinds = [type(m).__name__ for m in model.modules()]
        assert kinds[0] == "Nested"
        assert "Sequential" in kinds
        assert kinds.count("Linear") == 2

    def test_num_parameters_counts_scalars(self):
        model = Nested()
        expected = (2 * 3 + 3) + (3 * 1 + 1) + 1
        assert model.num_parameters() == expected

    def test_num_parameters_trainable_only(self):
        model = Nested()
        model.inner[0].weight.freeze()
        assert model.num_parameters(trainable_only=True) == \
            model.num_parameters() - 2 * 3

    def test_repr_mentions_children(self):
        assert "children" in repr(Nested())

    def test_forward_not_implemented_on_base(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestLossGradients:
    def make_pair(self, seed=0, n=6):
        rng = np.random.default_rng(seed)
        prediction = Tensor(rng.uniform(0.1, 0.9, size=n), requires_grad=True)
        target = Tensor(rng.uniform(0.0, 1.0, size=n))
        return prediction, target

    def test_mae_gradcheck(self):
        prediction, target = self.make_pair(1)
        check_gradients(lambda: MAELoss()(prediction, target), [prediction],
                        atol=1e-4, rtol=1e-3)

    def test_huber_gradcheck(self):
        prediction, target = self.make_pair(2)
        check_gradients(lambda: HuberLoss(delta=0.3)(prediction, target),
                        [prediction], atol=1e-4, rtol=1e-3)

    def test_bce_gradcheck(self):
        prediction, target = self.make_pair(3)
        check_gradients(lambda: BCELoss()(prediction, target), [prediction],
                        atol=1e-4, rtol=1e-3)

    def test_huber_continuous_at_delta(self):
        """Quadratic and linear branches agree at |err| == delta."""
        delta = 1.0
        eps = 1e-7
        inside = HuberLoss(delta)(Tensor([delta - eps], requires_grad=True),
                                  Tensor([0.0])).item()
        outside = HuberLoss(delta)(Tensor([delta + eps], requires_grad=True),
                                   Tensor([0.0])).item()
        assert inside == pytest.approx(outside, abs=1e-5)
