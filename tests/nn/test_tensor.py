"""Unit tests for the autodiff tensor core."""

import numpy as np
import pytest

from repro.errors import GradientError, ShapeError
from repro.nn import Tensor, as_tensor, is_grad_enabled, no_grad
from repro.nn.tensor import unbroadcast


def leaf(data, requires_grad=True):
    return Tensor(np.asarray(data, dtype=float), requires_grad=requires_grad)


class TestConstruction:
    def test_wraps_array(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_integer_input_promoted_to_float(self):
        t = Tensor([1, 2, 3])
        assert t.dtype.kind == "f"

    def test_bool_input_promoted_to_float(self):
        t = Tensor([True, False])
        assert t.dtype.kind == "f"

    def test_default_requires_grad_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(leaf([1.0]))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_item_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_item_rejects_vectors(self):
        with pytest.raises(ShapeError):
            Tensor([1.0, 2.0]).item()

    def test_len(self):
        assert len(Tensor([[1.0], [2.0]])) == 2

    def test_len_of_scalar_raises(self):
        with pytest.raises(TypeError):
            len(Tensor(1.0))

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_wraps_scalars(self):
        assert as_tensor(2.0).item() == 2.0

    def test_detach_shares_data_drops_grad(self):
        t = leaf([1.0, 2.0])
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_copy_is_independent(self):
        t = leaf([1.0, 2.0])
        c = t.copy()
        c.data[0] = 9.0
        assert t.data[0] == 1.0


class TestArithmeticForward:
    def test_add(self):
        np.testing.assert_allclose((leaf([1, 2]) + leaf([3, 4])).data, [4, 6])

    def test_add_scalar(self):
        np.testing.assert_allclose((leaf([1, 2]) + 1.0).data, [2, 3])

    def test_radd(self):
        np.testing.assert_allclose((1.0 + leaf([1, 2])).data, [2, 3])

    def test_sub(self):
        np.testing.assert_allclose((leaf([3, 4]) - leaf([1, 2])).data, [2, 2])

    def test_rsub(self):
        np.testing.assert_allclose((10.0 - leaf([1, 2])).data, [9, 8])

    def test_mul(self):
        np.testing.assert_allclose((leaf([2, 3]) * leaf([4, 5])).data, [8, 15])

    def test_div(self):
        np.testing.assert_allclose((leaf([8, 9]) / leaf([2, 3])).data, [4, 3])

    def test_rdiv(self):
        np.testing.assert_allclose((6.0 / leaf([2, 3])).data, [3, 2])

    def test_neg(self):
        np.testing.assert_allclose((-leaf([1, -2])).data, [-1, 2])

    def test_pow(self):
        np.testing.assert_allclose((leaf([2, 3]) ** 2).data, [4, 9])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            leaf([2.0]) ** leaf([2.0])

    def test_matmul_2d(self):
        a = leaf([[1, 2], [3, 4]])
        b = leaf([[5, 6], [7, 8]])
        np.testing.assert_allclose((a @ b).data, np.array([[19, 22], [43, 50]]))

    def test_matmul_vector(self):
        a = leaf([[1, 2], [3, 4]])
        v = leaf([1, 1])
        np.testing.assert_allclose((a @ v).data, [3, 7])

    def test_matmul_inner(self):
        np.testing.assert_allclose((leaf([1, 2]) @ leaf([3, 4])).data, 11)


class TestBackwardBasics:
    def test_add_grads(self):
        a, b = leaf([1.0, 2.0]), leaf([3.0, 4.0])
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1])
        np.testing.assert_allclose(b.grad, [1, 1])

    def test_mul_grads(self):
        a, b = leaf([1.0, 2.0]), leaf([3.0, 4.0])
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [3, 4])
        np.testing.assert_allclose(b.grad, [1, 2])

    def test_div_grads(self):
        a, b = leaf([4.0]), leaf([2.0])
        (a / b).backward()
        np.testing.assert_allclose(a.grad, [0.5])
        np.testing.assert_allclose(b.grad, [-1.0])

    def test_chain_rule(self):
        x = leaf([2.0])
        y = (x * x + x).sum()  # y = x^2 + x, dy/dx = 2x + 1
        y.backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_grad_accumulates_across_backwards(self):
        x = leaf([1.0])
        (x * 2.0).sum().backward()
        (x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_reused_tensor_accumulates_within_graph(self):
        x = leaf([3.0])
        y = x * x  # uses x twice
        y.backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_diamond_graph(self):
        # z = (x + 1) * (x + 2); dz/dx = 2x + 3
        x = leaf([1.0])
        z = (x + 1.0) * (x + 2.0)
        z.backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_backward_requires_grad(self):
        with pytest.raises(GradientError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_seed(self):
        with pytest.raises(GradientError):
            leaf([1.0, 2.0]).backward()

    def test_backward_with_seed(self):
        x = leaf([1.0, 2.0])
        (x * 2.0).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [2.0, 20.0])

    def test_zero_grad(self):
        x = leaf([1.0])
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_no_grad_through_constant(self):
        a = leaf([1.0])
        const = Tensor([2.0])
        (a * const).sum().backward()
        assert const.grad is None
        np.testing.assert_allclose(a.grad, [2.0])


class TestBroadcasting:
    def test_unbroadcast_identity(self):
        g = np.ones((3, 2))
        assert unbroadcast(g, (3, 2)) is g

    def test_unbroadcast_leading_axis(self):
        g = np.ones((4, 3))
        np.testing.assert_allclose(unbroadcast(g, (3,)), [4, 4, 4])

    def test_unbroadcast_kept_axis(self):
        g = np.ones((4, 3))
        np.testing.assert_allclose(unbroadcast(g, (1, 3)), [[4, 4, 4]])

    def test_broadcast_add_bias(self):
        x = leaf(np.ones((4, 3)))
        b = leaf(np.zeros(3))
        (x + b).sum().backward()
        np.testing.assert_allclose(b.grad, [4, 4, 4])

    def test_broadcast_mul_column(self):
        x = leaf(np.ones((2, 3)))
        c = leaf(np.ones((2, 1)))
        (x * c).sum().backward()
        np.testing.assert_allclose(c.grad, [[3], [3]])

    def test_broadcast_scalar_grad(self):
        x = leaf(np.ones((2, 2)))
        s = leaf(2.0)
        (x * s).sum().backward()
        np.testing.assert_allclose(s.grad, 4.0)


class TestUnaryOps:
    @pytest.mark.parametrize(
        "name",
        ["exp", "log", "sqrt", "tanh", "sigmoid", "relu", "abs"],
    )
    def test_forward_matches_numpy(self, name):
        x = np.array([0.5, 1.5, 2.5])
        t = getattr(leaf(x), name)()
        reference = {
            "exp": np.exp,
            "log": np.log,
            "sqrt": np.sqrt,
            "tanh": np.tanh,
            "sigmoid": lambda v: 1 / (1 + np.exp(-v)),
            "relu": lambda v: np.maximum(v, 0),
            "abs": np.abs,
        }[name]
        np.testing.assert_allclose(t.data, reference(x), rtol=1e-12)

    def test_sigmoid_extreme_values_stable(self):
        t = leaf([-1000.0, 1000.0]).sigmoid()
        np.testing.assert_allclose(t.data, [0.0, 1.0], atol=1e-12)
        assert np.all(np.isfinite(t.data))

    def test_relu_grad_zero_below(self):
        x = leaf([-1.0, 2.0])
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])

    def test_clip_grad_masks_outside(self):
        x = leaf([-2.0, 0.5, 2.0])
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_clip_inverted_bounds(self):
        with pytest.raises(ValueError):
            leaf([1.0]).clip(1.0, -1.0)


class TestReductions:
    def test_sum_all(self):
        assert leaf([[1.0, 2.0], [3.0, 4.0]]).sum().item() == 10.0

    def test_sum_axis(self):
        t = leaf([[1.0, 2.0], [3.0, 4.0]]).sum(axis=0)
        np.testing.assert_allclose(t.data, [4, 6])

    def test_sum_keepdims(self):
        t = leaf([[1.0, 2.0]]).sum(axis=1, keepdims=True)
        assert t.shape == (1, 1)

    def test_sum_axis_backward(self):
        x = leaf([[1.0, 2.0], [3.0, 4.0]])
        x.sum(axis=1).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [[1, 1], [10, 10]])

    def test_mean(self):
        assert leaf([2.0, 4.0]).mean().item() == 3.0

    def test_mean_grad(self):
        x = leaf([2.0, 4.0])
        x.mean().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5])

    def test_max_all(self):
        assert leaf([[1.0, 5.0], [3.0, 2.0]]).max().item() == 5.0

    def test_max_grad_routes_to_argmax(self):
        x = leaf([1.0, 5.0, 3.0])
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0, 1, 0])

    def test_max_grad_splits_ties(self):
        x = leaf([5.0, 5.0])
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5])

    def test_min(self):
        assert leaf([3.0, 1.0, 2.0]).min().item() == 1.0

    def test_mean_axis_tuple(self):
        t = leaf(np.ones((2, 3, 4))).mean(axis=(0, 2))
        np.testing.assert_allclose(t.data, [1, 1, 1])


class TestShapeOps:
    def test_reshape_roundtrip_grad(self):
        x = leaf(np.arange(6.0))
        x.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(6))

    def test_reshape_accepts_tuple(self):
        assert leaf(np.arange(6.0)).reshape((3, 2)).shape == (3, 2)

    def test_transpose_default_reverses(self):
        assert leaf(np.ones((2, 3, 4))).transpose().shape == (4, 3, 2)

    def test_transpose_explicit_axes_grad(self):
        x = leaf(np.arange(6.0).reshape(2, 3))
        y = x.transpose(1, 0)
        y.backward(np.arange(6.0).reshape(3, 2))
        np.testing.assert_allclose(x.grad, np.arange(6.0).reshape(3, 2).T)

    def test_T_alias(self):
        assert leaf(np.ones((2, 3))).T.shape == (3, 2)

    def test_getitem_int(self):
        x = leaf([[1.0, 2.0], [3.0, 4.0]])
        row = x[1]
        np.testing.assert_allclose(row.data, [3, 4])

    def test_getitem_slice_backward(self):
        x = leaf(np.arange(5.0))
        x[1:3].sum().backward()
        np.testing.assert_allclose(x.grad, [0, 1, 1, 0, 0])

    def test_getitem_negative_step(self):
        x = leaf(np.arange(4.0))
        y = x[::-1]
        np.testing.assert_allclose(y.data, [3, 2, 1, 0])
        y.backward(np.array([1.0, 2.0, 3.0, 4.0]))
        np.testing.assert_allclose(x.grad, [4, 3, 2, 1])

    def test_getitem_integer_array_duplicates_accumulate(self):
        x = leaf(np.zeros((3, 2)))
        x[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(x.grad, [[2, 2], [0, 0], [1, 1]])

    def test_take_rows_requires_integers(self):
        with pytest.raises(TypeError):
            leaf(np.zeros((3, 2))).take_rows(np.array([0.5]))

    def test_take_rows_matches_getitem(self):
        x = leaf(np.arange(6.0).reshape(3, 2))
        np.testing.assert_allclose(x.take_rows(np.array([2, 0])).data, [[4, 5], [0, 1]])


class TestNoGrad:
    def test_no_grad_suppresses_graph(self):
        x = leaf([1.0])
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y.is_leaf

    def test_flag_restored_after_exit(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_flag_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_matmul_grads_match_finite_difference(self):
        rng = np.random.default_rng(7)
        a = leaf(rng.normal(size=(3, 4)))
        b = leaf(rng.normal(size=(4, 2)))
        from repro.nn import check_gradients

        check_gradients(lambda: ((a @ b) * (a @ b)).mean(), [a, b])
