"""Fused inference kernel: parity, staleness, and the backend seam."""

import numpy as np
import pytest

from repro.core import PathRank, build_pathrank, encode_paths
from repro.core.scoring_bench import random_walk_paths
from repro.errors import ConfigError, ShapeError
from repro.nn import Module
from repro.nn.fused import (
    CompiledPathRank,
    compiled_for,
    get_scoring_backend,
    resolve_scoring_backend,
    set_scoring_backend,
    use_scoring_backend,
)


@pytest.fixture(scope="module")
def mixed_paths(small_grid):
    """A realistic mixed-length candidate mix (8 to 40 vertices)."""
    rng = np.random.default_rng(0)
    lengths = [int(n) for n in rng.integers(8, 41, size=12)] + [2, 3]
    return random_walk_paths(small_grid, lengths, rng)


def make_model(small_grid, **kwargs):
    defaults = dict(num_vertices=small_grid.num_vertices, embedding_dim=16,
                    hidden_size=16, fc_hidden=8, rng=3)
    defaults.update(kwargs)
    return PathRank(**defaults).eval()


class TestParity:
    @pytest.mark.parametrize("pooling", ["mean", "final", "attention"])
    @pytest.mark.parametrize("bidirectional", [True, False])
    def test_fused_matches_module(self, small_grid, mixed_paths, pooling,
                                  bidirectional):
        model = make_model(small_grid, pooling=pooling,
                           bidirectional=bidirectional)
        reference = model.score_paths(mixed_paths, backend="module")
        fused = model.score_paths(mixed_paths, backend="fused")
        np.testing.assert_allclose(fused, reference, atol=1e-6, rtol=0)

    @pytest.mark.parametrize("pooling", ["mean", "final", "attention"])
    def test_float64_kernel_is_roundoff_exact(self, small_grid, mixed_paths,
                                              pooling):
        model = make_model(small_grid, pooling=pooling)
        reference = model.score_paths(mixed_paths, backend="module")
        kernel = CompiledPathRank(model, dtype=np.float64)
        vertex_ids, mask = encode_paths(mixed_paths)
        np.testing.assert_allclose(kernel.forward(vertex_ids, mask),
                                   reference, atol=1e-12, rtol=0)

    def test_single_path_batches(self, small_grid, mixed_paths):
        """Per-path scores are independent of batch composition."""
        model = make_model(small_grid)
        batched = model.score_paths(mixed_paths)
        for path, score in zip(mixed_paths, batched):
            alone = model.score_paths([path])[0]
            assert alone == pytest.approx(score, abs=1e-6)

    def test_multitask_variant_compiles(self, small_grid, mixed_paths):
        model = build_pathrank("PR-M", num_vertices=small_grid.num_vertices,
                               embedding_dim=16, hidden_size=16, fc_hidden=8,
                               rng=5).eval()
        reference = model.score_paths(mixed_paths, backend="module")
        fused = model.score_paths(mixed_paths, backend="fused")
        np.testing.assert_allclose(fused, reference, atol=1e-6, rtol=0)

    def test_returns_float64(self, small_grid, mixed_paths):
        scores = make_model(small_grid).score_paths(mixed_paths)
        assert scores.dtype == np.float64
        assert np.all((scores > 0) & (scores < 1))

    def test_repeated_calls_reuse_workspace(self, small_grid, mixed_paths):
        """Scores must be stable across calls sharing scratch buffers."""
        model = make_model(small_grid)
        first = model.score_paths(mixed_paths).copy()
        shorter = mixed_paths[:3]
        model.score_paths(shorter)  # different shape reuses the buffers
        np.testing.assert_allclose(model.score_paths(mixed_paths), first,
                                   atol=0, rtol=0)


class TestKernelValidation:
    def test_rejects_bad_shapes(self, small_grid):
        kernel = CompiledPathRank(make_model(small_grid))
        with pytest.raises(ShapeError):
            kernel.forward(np.zeros(3, dtype=np.int32), np.zeros(3))
        with pytest.raises(ShapeError):
            kernel.forward(np.zeros((3, 2), dtype=np.int32), np.zeros((2, 3)))

    def test_rejects_non_float_dtype(self, small_grid):
        with pytest.raises(ConfigError):
            CompiledPathRank(make_model(small_grid), dtype=np.int32)

    def test_rejects_foreign_module(self):
        with pytest.raises(ConfigError):
            CompiledPathRank(Module())


class TestCompiledCache:
    def test_cache_hit_returns_same_object(self, small_grid):
        model = make_model(small_grid)
        assert compiled_for(model) is compiled_for(model)

    def test_load_state_dict_triggers_recompile(self, small_grid, mixed_paths):
        model = make_model(small_grid)
        stale = compiled_for(model)
        other = make_model(small_grid, rng=11)
        model.load_state_dict(other.state_dict())
        fresh = compiled_for(model)
        assert fresh is not stale
        assert fresh.weight_version > stale.weight_version
        reference = model.score_paths(mixed_paths, backend="module")
        np.testing.assert_allclose(model.score_paths(mixed_paths), reference,
                                   atol=1e-6, rtol=0)

    def test_manual_bump_invalidates(self, small_grid):
        model = make_model(small_grid)
        before = compiled_for(model)
        model.bump_weight_version()
        assert compiled_for(model) is not before

    def test_weight_version_counts_up(self, small_grid):
        model = make_model(small_grid)
        start = model.weight_version
        model.load_state_dict(model.state_dict())
        assert model.weight_version == start + 1


class TestBackendSeam:
    def test_default_resolves_to_fused(self):
        assert get_scoring_backend() == "auto"
        assert resolve_scoring_backend() == "fused"
        assert resolve_scoring_backend("module") == "module"

    def test_use_scoring_backend_restores(self):
        with use_scoring_backend("module"):
            assert resolve_scoring_backend() == "module"
        assert resolve_scoring_backend() == "fused"

    def test_global_switch_controls_score_paths(self, small_grid, mixed_paths):
        model = make_model(small_grid)
        fused = model.score_paths(mixed_paths)
        with use_scoring_backend("module"):
            reference = model.score_paths(mixed_paths)
        np.testing.assert_allclose(fused, reference, atol=1e-6, rtol=0)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            set_scoring_backend("cuda")
        with pytest.raises(ConfigError):
            resolve_scoring_backend("banana")

    def test_score_query_returns_plain_floats(self, small_grid, mixed_paths):
        model = make_model(small_grid)

        class FakeQuery:
            def paths(self):
                return mixed_paths

        scores = model.score_query(FakeQuery())
        assert isinstance(scores, list)
        assert all(type(s) is float for s in scores)
