"""Unit tests for composite ops in repro.nn.functional."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import Tensor, check_gradients
from repro.nn import functional as F


def leaf(data):
    return Tensor(np.asarray(data, dtype=float), requires_grad=True)


class TestConcatStack:
    def test_concat_forward(self):
        out = F.concat([leaf([[1.0]]), leaf([[2.0]])], axis=0)
        np.testing.assert_allclose(out.data, [[1], [2]])

    def test_concat_axis1(self):
        out = F.concat([leaf([[1.0], [2.0]]), leaf([[3.0], [4.0]])], axis=1)
        np.testing.assert_allclose(out.data, [[1, 3], [2, 4]])

    def test_concat_backward_splits(self):
        a, b = leaf([1.0, 2.0]), leaf([3.0])
        F.concat([a, b]).backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(a.grad, [1, 2])
        np.testing.assert_allclose(b.grad, [3])

    def test_concat_empty_rejected(self):
        with pytest.raises(ShapeError):
            F.concat([])

    def test_stack_forward(self):
        out = F.stack([leaf([1.0, 2.0]), leaf([3.0, 4.0])])
        assert out.shape == (2, 2)

    def test_stack_new_axis_position(self):
        out = F.stack([leaf([1.0, 2.0]), leaf([3.0, 4.0])], axis=1)
        np.testing.assert_allclose(out.data, [[1, 3], [2, 4]])

    def test_stack_backward(self):
        a, b = leaf([1.0, 2.0]), leaf([3.0, 4.0])
        F.stack([a, b]).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 1])
        np.testing.assert_allclose(b.grad, [1, 1])

    def test_stack_shape_mismatch(self):
        with pytest.raises(ShapeError):
            F.stack([leaf([1.0]), leaf([1.0, 2.0])])

    def test_concat_gradcheck(self):
        rng = np.random.default_rng(0)
        a, b = leaf(rng.normal(size=(2, 3))), leaf(rng.normal(size=(4, 3)))
        check_gradients(lambda: (F.concat([a, b], axis=0) ** 2).mean(), [a, b])


class TestWhereMaxMin:
    def test_where_selects(self):
        out = F.where(np.array([True, False]), leaf([1.0, 1.0]), leaf([2.0, 2.0]))
        np.testing.assert_allclose(out.data, [1, 2])

    def test_where_grad_masks(self):
        a, b = leaf([1.0, 1.0]), leaf([2.0, 2.0])
        F.where(np.array([True, False]), a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 0])
        np.testing.assert_allclose(b.grad, [0, 1])

    def test_maximum(self):
        np.testing.assert_allclose(F.maximum(leaf([1.0, 5.0]), leaf([3.0, 2.0])).data, [3, 5])

    def test_minimum(self):
        np.testing.assert_allclose(F.minimum(leaf([1.0, 5.0]), leaf([3.0, 2.0])).data, [1, 2])

    def test_maximum_tie_prefers_first(self):
        a, b = leaf([2.0]), leaf([2.0])
        F.maximum(a, b).backward()
        np.testing.assert_allclose(a.grad, [1.0])
        assert b.grad is None or np.allclose(b.grad, [0.0])


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = F.softmax(leaf(np.random.default_rng(0).normal(size=(4, 5))))
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4), rtol=1e-12)

    def test_invariant_to_shift(self):
        x = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(
            F.softmax(leaf(x)).data, F.softmax(leaf(x + 100.0)).data, rtol=1e-12
        )

    def test_large_values_stable(self):
        out = F.softmax(leaf([[1000.0, 1000.0]]))
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_log_softmax_matches_log_of_softmax(self):
        x = leaf(np.random.default_rng(1).normal(size=(3, 4)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), rtol=1e-10
        )

    def test_softmax_gradcheck(self):
        x = leaf(np.random.default_rng(2).normal(size=(2, 3)))
        check_gradients(lambda: (F.softmax(x) ** 2).sum(), [x])


class TestDropout:
    def test_eval_mode_identity(self):
        x = leaf(np.ones(100))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_zero_rate_identity(self):
        x = leaf(np.ones(100))
        assert F.dropout(x, 0.0, np.random.default_rng(0), training=True) is x

    def test_train_mode_zeroes_and_scales(self):
        x = leaf(np.ones(10000))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=True)
        values = set(np.unique(np.round(out.data, 6)))
        assert values <= {0.0, 2.0}
        # Expectation preserved within tolerance.
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            F.dropout(leaf([1.0]), 1.0, np.random.default_rng(0))


class TestEmbeddingLookup:
    def test_gathers_rows(self):
        w = leaf(np.arange(6.0).reshape(3, 2))
        out = F.embedding_lookup(w, np.array([2, 0]))
        np.testing.assert_allclose(out.data, [[4, 5], [0, 1]])

    def test_nd_indices(self):
        w = leaf(np.arange(6.0).reshape(3, 2))
        out = F.embedding_lookup(w, np.array([[0, 1], [2, 2]]))
        assert out.shape == (2, 2, 2)

    def test_duplicate_indices_accumulate_grad(self):
        w = leaf(np.zeros((3, 2)))
        F.embedding_lookup(w, np.array([1, 1, 1])).sum().backward()
        np.testing.assert_allclose(w.grad, [[0, 0], [3, 3], [0, 0]])

    def test_rejects_float_indices(self):
        with pytest.raises(TypeError):
            F.embedding_lookup(leaf(np.zeros((3, 2))), np.array([0.5]))

    def test_rejects_out_of_range(self):
        with pytest.raises(IndexError):
            F.embedding_lookup(leaf(np.zeros((3, 2))), np.array([3]))

    def test_rejects_1d_weight(self):
        with pytest.raises(ShapeError):
            F.embedding_lookup(leaf(np.zeros(3)), np.array([0]))


class TestChunk:
    def test_splits_evenly(self):
        pieces = F.chunk(leaf(np.arange(12.0).reshape(2, 6)), 3, axis=-1)
        assert [p.shape for p in pieces] == [(2, 2)] * 3

    def test_uneven_split_rejected(self):
        with pytest.raises(ShapeError):
            F.chunk(leaf(np.zeros((2, 5))), 2, axis=1)

    def test_chunks_cover_input(self):
        x = leaf(np.arange(6.0).reshape(1, 6))
        pieces = F.chunk(x, 2, axis=1)
        np.testing.assert_allclose(
            np.concatenate([p.data for p in pieces], axis=1), x.data
        )

    def test_chunk_backward(self):
        x = leaf(np.arange(4.0))
        a, b = F.chunk(x, 2, axis=0)
        (a * 2.0 + b * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, [2, 2, 3, 3])
