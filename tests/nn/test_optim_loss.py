"""Tests for losses, optimisers, schedules, and serialization."""

import numpy as np
import pytest

from repro.errors import SerializationError, ShapeError
from repro.nn import (
    SGD,
    AdaGrad,
    Adam,
    BCELoss,
    ConstantLR,
    CosineLR,
    ExponentialLR,
    HuberLoss,
    Linear,
    LinearWarmup,
    MAELoss,
    MSELoss,
    Parameter,
    StepLR,
    Tensor,
    clip_grad_norm,
    load_module,
    load_state,
    save_module,
    save_state,
)


def leaf(data):
    return Tensor(np.asarray(data, dtype=float), requires_grad=True)


class TestLosses:
    def test_mse_value(self):
        loss = MSELoss()(leaf([1.0, 3.0]), Tensor([0.0, 0.0]))
        assert loss.item() == pytest.approx(5.0)

    def test_mse_zero_at_match(self):
        assert MSELoss()(leaf([1.0, 2.0]), Tensor([1.0, 2.0])).item() == 0.0

    def test_mae_value(self):
        assert MAELoss()(leaf([1.0, -3.0]), Tensor([0.0, 0.0])).item() == pytest.approx(2.0)

    def test_huber_quadratic_inside(self):
        loss = HuberLoss(delta=1.0)(leaf([0.5]), Tensor([0.0]))
        assert loss.item() == pytest.approx(0.125)

    def test_huber_linear_outside(self):
        loss = HuberLoss(delta=1.0)(leaf([3.0]), Tensor([0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_huber_invalid_delta(self):
        with pytest.raises(ValueError):
            HuberLoss(delta=0.0)

    def test_bce_matches_formula(self):
        p, y = 0.8, 1.0
        loss = BCELoss()(leaf([p]), Tensor([y]))
        assert loss.item() == pytest.approx(-np.log(p))

    def test_bce_clips_extremes(self):
        loss = BCELoss()(leaf([0.0, 1.0]), Tensor([1.0, 0.0]))
        assert np.isfinite(loss.item())

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            MSELoss()(leaf([1.0, 2.0]), Tensor([1.0]))

    def test_mse_gradient(self):
        x = leaf([2.0])
        MSELoss()(x, Tensor([0.0])).backward()
        np.testing.assert_allclose(x.grad, [4.0])


class TestSGD:
    def test_plain_step(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([0.5])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95])

    def test_momentum_accumulates(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()  # v=1, p=-1
        p.grad = np.array([1.0])
        opt.step()  # v=1.9, p=-2.9
        np.testing.assert_allclose(p.data, [-2.9])

    def test_weight_decay(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([0.0])
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, [0.95])

    def test_skips_frozen(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([1.0])
        p.requires_grad = False
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_zero_grad(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([1.0])
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.5)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            ((p - 2.0) ** 2).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, [2.0], atol=1e-6)


class TestAdam:
    def test_first_step_magnitude(self):
        # With bias correction, the first Adam step is ~lr * sign(grad).
        p = Parameter(np.array([0.0]))
        p.grad = np.array([10.0])
        Adam([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [-0.1], atol=1e-6)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = Adam([p], lr=0.3)
        for _ in range(300):
            opt.zero_grad()
            ((p - 2.0) ** 2).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, [2.0], atol=1e-3)

    def test_validation(self):
        p = [Parameter(np.zeros(1))]
        with pytest.raises(ValueError):
            Adam(p, betas=(1.0, 0.999))
        with pytest.raises(ValueError):
            Adam(p, eps=0.0)

    def test_adagrad_converges(self):
        p = Parameter(np.array([5.0]))
        opt = AdaGrad([p], lr=1.0)
        for _ in range(500):
            opt.zero_grad()
            ((p - 2.0) ** 2).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, [2.0], atol=1e-2)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(3))
        p.grad = np.array([0.1, 0.1, 0.1])
        norm = clip_grad_norm([p], max_norm=10.0)
        assert norm == pytest.approx(np.sqrt(0.03))
        np.testing.assert_allclose(p.grad, [0.1, 0.1, 0.1])

    def test_clips_above_threshold(self):
        p = Parameter(np.zeros(1))
        p.grad = np.array([10.0])
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [1.0], rtol=1e-6)

    def test_handles_missing_grads(self):
        assert clip_grad_norm([Parameter(np.zeros(1))], max_norm=1.0) == 0.0

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)


class TestSchedules:
    def make_opt(self, lr=1.0):
        return SGD([Parameter(np.zeros(1))], lr=lr)

    def test_constant(self):
        sched = ConstantLR(self.make_opt())
        assert sched.step() == 1.0

    def test_step_lr(self):
        opt = self.make_opt()
        sched = StepLR(opt, step_size=2, gamma=0.5)
        rates = [sched.step() for _ in range(4)]
        assert rates == [1.0, 0.5, 0.5, 0.25]

    def test_exponential(self):
        sched = ExponentialLR(self.make_opt(), gamma=0.5)
        assert sched.step() == 0.5
        assert sched.step() == 0.25

    def test_cosine_endpoints(self):
        opt = self.make_opt()
        sched = CosineLR(opt, total_epochs=10, min_lr=0.1)
        for _ in range(10):
            final = sched.step()
        assert final == pytest.approx(0.1)

    def test_cosine_monotone_decreasing(self):
        sched = CosineLR(self.make_opt(), total_epochs=10, min_lr=1e-6)
        rates = [sched.step() for _ in range(10)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_warmup_ramps(self):
        opt = self.make_opt(lr=1.0)
        sched = LinearWarmup(opt, warmup_epochs=4)
        assert opt.lr < 1.0
        for _ in range(4):
            sched.step()
        assert opt.lr == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLR(self.make_opt(), step_size=0)
        with pytest.raises(ValueError):
            CosineLR(self.make_opt(), total_epochs=0)


class TestSerialization:
    def test_state_roundtrip(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        state = {"w": np.arange(4.0)}
        save_state(state, path, metadata={"epoch": 3})
        loaded, meta = load_state(path)
        np.testing.assert_allclose(loaded["w"], state["w"])
        assert meta["epoch"] == 3

    def test_module_roundtrip(self, tmp_path):
        path = tmp_path / "model.npz"
        model = Linear(3, 2, rng=0)
        save_module(model, path)
        other = Linear(3, 2, rng=99)
        load_module(other, path)
        np.testing.assert_allclose(other.weight.data, model.weight.data)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_state(tmp_path / "nope.npz")

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(SerializationError):
            save_state({"__repro_meta__": np.zeros(1)}, tmp_path / "x.npz")

    def test_non_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "raw.npz"
        np.savez(path, w=np.zeros(1))
        with pytest.raises(SerializationError):
            load_state(path)

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "m.npz"
        save_state({"w": np.zeros(1)}, path)
        assert path.exists()
