"""Property-based gradient checks: random composed expressions.

Hypothesis builds random small expressions from the op vocabulary and
verifies the autodiff gradients against central finite differences —
the strongest single guarantee the substrate offers PathRank.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, check_gradients
from repro.nn import functional as F

# Ops applied elementwise to a tensor (name, callable, input transform to
# keep the op's domain and finite differences well-conditioned).
_UNARY_OPS = [
    ("tanh", lambda t: t.tanh(), lambda x: x),
    ("sigmoid", lambda t: t.sigmoid(), lambda x: x),
    ("exp", lambda t: t.exp(), lambda x: np.clip(x, -2.0, 2.0)),
    ("log", lambda t: t.log(), lambda x: np.abs(x) + 0.5),
    ("sqrt", lambda t: t.sqrt(), lambda x: np.abs(x) + 0.5),
    ("square", lambda t: t * t, lambda x: x),
    ("scale", lambda t: t * 1.7 + 0.3, lambda x: x),
]


@given(
    st.integers(0, len(_UNARY_OPS) - 1),
    st.integers(0, len(_UNARY_OPS) - 1),
    st.integers(1, 4),
    st.integers(1, 4),
    st.integers(0, 10_000),
)
@settings(max_examples=60, deadline=None)
def test_random_unary_compositions_gradcheck(op1, op2, rows, cols, seed):
    name1, f1, dom1 = _UNARY_OPS[op1]
    name2, f2, dom2 = _UNARY_OPS[op2]
    rng = np.random.default_rng(seed)
    data = dom1(dom2(rng.normal(size=(rows, cols))))
    x = Tensor(data, requires_grad=True)

    def forward():
        return (f2(f1(x))).sum()

    check_gradients(forward, [x], eps=1e-6, atol=1e-4, rtol=1e-3)


@given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4),
       st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_matmul_chain_gradcheck(a, b, c, seed):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(a, b)), requires_grad=True)
    w = Tensor(rng.normal(size=(b, c)), requires_grad=True)

    def forward():
        return ((x @ w).tanh() ** 2).mean()

    check_gradients(forward, [x, w], atol=1e-4, rtol=1e-3)


@given(st.integers(2, 5), st.integers(1, 3), st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_softmax_weighted_sum_gradcheck(n, d, seed):
    rng = np.random.default_rng(seed)
    logits = Tensor(rng.normal(size=(n,)), requires_grad=True)
    values = Tensor(rng.normal(size=(n, d)), requires_grad=True)

    def forward():
        weights = F.softmax(logits.reshape(1, n)).reshape(n, 1)
        return (values * weights).sum()

    check_gradients(forward, [logits, values], atol=1e-4, rtol=1e-3)


@given(st.integers(1, 5), st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_masked_mean_gradcheck(batch, seed):
    """The exact pooling PathRank uses: masked mean over time."""
    rng = np.random.default_rng(seed)
    steps = 4
    x = Tensor(rng.normal(size=(steps, batch, 3)), requires_grad=True)
    lengths = rng.integers(1, steps + 1, size=batch)
    mask = np.zeros((steps, batch))
    for column, length in enumerate(lengths):
        mask[:length, column] = 1.0

    def forward():
        weighted = x * Tensor(mask[:, :, None])
        totals = weighted.sum(axis=0)
        counts = Tensor(np.maximum(mask.sum(axis=0), 1.0)[:, None])
        return ((totals / counts) ** 2).mean()

    check_gradients(forward, [x], atol=1e-4, rtol=1e-3)


@given(st.integers(2, 6), st.integers(2, 6), st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_embedding_grad_row_support(vocab, dim, seed):
    """Gradient lands exactly on the rows that were looked up."""
    rng = np.random.default_rng(seed)
    weight = Tensor(rng.normal(size=(vocab, dim)), requires_grad=True)
    indices = rng.integers(0, vocab, size=5)
    F.embedding_lookup(weight, indices).sum().backward()
    touched = set(indices.tolist())
    for row in range(vocab):
        row_grad = weight.grad[row]
        if row in touched:
            assert np.any(row_grad != 0.0) or dim == 0
        else:
            np.testing.assert_allclose(row_grad, 0.0)
