"""Unit tests for Linear/Embedding/Dropout/Sequential and Module."""

import numpy as np
import pytest

from repro.errors import SerializationError, ShapeError
from repro.nn import (
    Dropout,
    Embedding,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
    check_gradients,
)


class TestLinear:
    def test_shapes(self):
        layer = Linear(4, 3, rng=0)
        out = layer(Tensor(np.zeros((5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, rng=0)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((5, 4))))
        np.testing.assert_allclose(out.data, np.zeros((5, 3)))

    def test_matches_manual_affine(self):
        layer = Linear(2, 2, rng=0)
        x = np.array([[1.0, 2.0]])
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_wrong_input_dim(self):
        with pytest.raises(ShapeError):
            Linear(4, 3, rng=0)(Tensor(np.zeros((5, 5))))

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Linear(0, 3)

    def test_deterministic_given_seed(self):
        a, b = Linear(4, 3, rng=42), Linear(4, 3, rng=42)
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_gradcheck(self):
        layer = Linear(3, 2, rng=1)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 3)), requires_grad=True)
        check_gradients(lambda: (layer(x) ** 2).mean(), [x, layer.weight, layer.bias])


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, rng=0)
        out = emb(np.array([[1, 2], [3, 4], [5, 6]]))
        assert out.shape == (3, 2, 4)

    def test_from_pretrained_copies(self):
        matrix = np.arange(8.0).reshape(4, 2)
        emb = Embedding.from_pretrained(matrix)
        matrix[0, 0] = 99.0
        assert emb.weight.data[0, 0] == 0.0

    def test_from_pretrained_frozen(self):
        emb = Embedding.from_pretrained(np.zeros((4, 2)), trainable=False)
        assert not emb.weight.requires_grad

    def test_from_pretrained_rejects_1d(self):
        with pytest.raises(ShapeError):
            Embedding.from_pretrained(np.zeros(4))

    def test_frozen_embedding_gets_no_grad(self):
        emb = Embedding.from_pretrained(np.ones((4, 2)), trainable=False)
        out = emb(np.array([0, 1]))
        (out.sum() * 1.0).backward() if out.requires_grad else None
        assert emb.weight.grad is None

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Embedding(0, 4)


class TestDropout:
    def test_eval_is_identity(self):
        layer = Dropout(0.5, rng=0)
        layer.eval()
        x = Tensor(np.ones(100))
        assert layer(x) is x

    def test_train_drops(self):
        layer = Dropout(0.5, rng=0)
        out = layer(Tensor(np.ones(1000)))
        assert (out.data == 0).sum() > 300

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.5)


class TestSequential:
    def test_chains(self):
        model = Sequential([Linear(4, 8, rng=0), Tanh(), Linear(8, 1, rng=1), Sigmoid()])
        out = model(Tensor(np.zeros((3, 4))))
        assert out.shape == (3, 1)
        assert np.all((out.data > 0) & (out.data < 1))

    def test_registers_children(self):
        model = Sequential([Linear(2, 2, rng=0), ReLU()])
        assert model.num_parameters() == 2 * 2 + 2

    def test_len_and_getitem(self):
        layers = [Linear(2, 2, rng=0), Tanh()]
        model = Sequential(layers)
        assert len(model) == 2
        assert model[1] is layers[1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])


class TestModule:
    def make_model(self):
        class Tiny(Module):
            def __init__(self):
                super().__init__()
                self.fc = Linear(2, 2, rng=0)
                self.scale = Parameter(np.ones(2))

            def forward(self, x):
                return self.fc(x) * self.scale

        return Tiny()

    def test_named_parameters_dotted(self):
        model = self.make_model()
        names = {name for name, _ in model.named_parameters()}
        assert names == {"scale", "fc.weight", "fc.bias"}

    def test_parameters_trainable_filter(self):
        model = self.make_model()
        model.fc.weight.freeze()
        assert len(model.parameters()) == 3
        assert len(model.parameters(trainable_only=True)) == 2

    def test_train_eval_propagates(self):
        model = self.make_model()
        model.eval()
        assert not model.fc.training
        model.train()
        assert model.fc.training

    def test_zero_grad(self):
        model = self.make_model()
        out = model(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert model.fc.weight.grad is not None
        model.zero_grad()
        assert model.fc.weight.grad is None

    def test_state_dict_roundtrip(self):
        model = self.make_model()
        state = model.state_dict()
        other = self.make_model()
        other.fc.weight.data[:] = 0
        other.load_state_dict(state)
        np.testing.assert_allclose(other.fc.weight.data, model.fc.weight.data)

    def test_state_dict_is_a_copy(self):
        model = self.make_model()
        state = model.state_dict()
        state["scale"][0] = 99.0
        assert model.scale.data[0] == 1.0

    def test_load_strict_missing_key(self):
        model = self.make_model()
        state = model.state_dict()
        del state["scale"]
        with pytest.raises(SerializationError):
            model.load_state_dict(state)

    def test_load_strict_unexpected_key(self):
        model = self.make_model()
        state = model.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(SerializationError):
            model.load_state_dict(state)

    def test_load_non_strict_ignores_extras(self):
        model = self.make_model()
        state = model.state_dict()
        state["bogus"] = np.zeros(1)
        model.load_state_dict(state, strict=False)

    def test_load_shape_mismatch(self):
        model = self.make_model()
        state = model.state_dict()
        state["scale"] = np.zeros(3)
        with pytest.raises(SerializationError):
            model.load_state_dict(state)

    def test_parameter_freeze_unfreeze(self):
        p = Parameter(np.ones(2))
        p.freeze()
        assert not p.requires_grad
        p.unfreeze()
        assert p.requires_grad
