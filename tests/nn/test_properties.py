"""Property-based tests (hypothesis) for the autodiff core.

These check algebraic identities of the tensor ops and the linearity of
the backward pass on randomly generated shapes and values.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor
from repro.nn import functional as F

finite = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False)


def small_arrays(max_dims=3, max_side=4):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=finite,
    )


@given(small_arrays())
@settings(max_examples=50, deadline=None)
def test_add_commutative(data):
    a, b = Tensor(data), Tensor(data[::-1].copy())
    np.testing.assert_allclose((a + b).data, (b + a).data)


@given(small_arrays())
@settings(max_examples=50, deadline=None)
def test_sum_grad_is_ones(data):
    t = Tensor(data, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(data))


@given(small_arrays(), finite)
@settings(max_examples=50, deadline=None)
def test_scalar_mul_grad_is_scalar(data, c):
    t = Tensor(data, requires_grad=True)
    (t * c).sum().backward()
    np.testing.assert_allclose(t.grad, np.full_like(data, c))


@given(small_arrays())
@settings(max_examples=50, deadline=None)
def test_tanh_bounded(data):
    out = Tensor(data).tanh()
    assert np.all(np.abs(out.data) <= 1.0)


@given(small_arrays())
@settings(max_examples=50, deadline=None)
def test_sigmoid_in_unit_interval(data):
    out = Tensor(data).sigmoid()
    assert np.all((out.data >= 0.0) & (out.data <= 1.0))


@given(small_arrays())
@settings(max_examples=50, deadline=None)
def test_sigmoid_symmetry(data):
    # sigmoid(-x) == 1 - sigmoid(x)
    left = Tensor(-data).sigmoid().data
    right = 1.0 - Tensor(data).sigmoid().data
    np.testing.assert_allclose(left, right, atol=1e-12)

@given(small_arrays())
@settings(max_examples=50, deadline=None)
def test_relu_idempotent(data):
    once = Tensor(data).relu()
    twice = once.relu()
    np.testing.assert_allclose(once.data, twice.data)


@given(small_arrays())
@settings(max_examples=50, deadline=None)
def test_reshape_preserves_sum(data):
    t = Tensor(data)
    flat = t.reshape(int(np.prod(data.shape)))
    np.testing.assert_allclose(flat.sum().item(), t.sum().item(), rtol=1e-9)


@given(arrays(dtype=np.float64, shape=(3, 4), elements=finite),
       arrays(dtype=np.float64, shape=(3, 4), elements=finite))
@settings(max_examples=50, deadline=None)
def test_backward_linearity(a_data, b_data):
    """grad(sum(a+b)) accumulates exactly like grad(sum a) + grad(sum b)."""
    a = Tensor(a_data, requires_grad=True)
    b = Tensor(b_data, requires_grad=True)
    (a + b).sum().backward()
    np.testing.assert_allclose(a.grad, np.ones_like(a_data))
    np.testing.assert_allclose(b.grad, np.ones_like(b_data))


@given(arrays(dtype=np.float64, shape=st.tuples(st.integers(1, 5), st.integers(1, 5)),
              elements=finite))
@settings(max_examples=50, deadline=None)
def test_softmax_rows_are_distributions(data):
    out = F.softmax(Tensor(data), axis=-1)
    assert np.all(out.data >= 0.0)
    np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(data.shape[0]), rtol=1e-9)


@given(st.integers(2, 6), st.integers(1, 4), st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_concat_then_chunk_roundtrip(parts, rows, cols):
    rng = np.random.default_rng(parts * 100 + rows * 10 + cols)
    tensors = [Tensor(rng.normal(size=(rows, cols))) for _ in range(parts)]
    merged = F.concat(tensors, axis=1)
    pieces = F.chunk(merged, parts, axis=1)
    for original, piece in zip(tensors, pieces):
        np.testing.assert_allclose(piece.data, original.data)
