"""Unit + gradient tests for GRU/BiGRU/LSTM."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import GRU, LSTM, BiGRU, GRUCell, LSTMCell, Tensor, check_gradients


def seq(rng, steps=5, batch=3, dim=4):
    return Tensor(rng.normal(size=(steps, batch, dim)), requires_grad=True)


class TestGRUCell:
    def test_output_shape(self):
        cell = GRUCell(4, 6, rng=0)
        h = cell(Tensor(np.zeros((3, 4))), cell.initial_state(3))
        assert h.shape == (3, 6)

    def test_output_bounded_by_tanh(self):
        cell = GRUCell(4, 6, rng=0)
        rng = np.random.default_rng(0)
        h = cell.initial_state(2)
        for _ in range(50):
            h = cell(Tensor(rng.normal(size=(2, 4)) * 10), h)
        assert np.all(np.abs(h.data) <= 1.0 + 1e-9)

    def test_zero_update_gate_keeps_state(self):
        # Forcing update gate to 1 (z=1) must return the previous state.
        cell = GRUCell(2, 3, rng=0)
        cell.bias_ih.data[3:6] = 1e9  # z pre-activation huge -> z == 1
        h0 = Tensor(np.random.default_rng(1).normal(size=(2, 3)))
        h1 = cell(Tensor(np.zeros((2, 2))), h0)
        np.testing.assert_allclose(h1.data, h0.data, atol=1e-9)

    def test_shape_validation(self):
        cell = GRUCell(4, 6, rng=0)
        with pytest.raises(ShapeError):
            cell(Tensor(np.zeros((3, 5))), cell.initial_state(3))
        with pytest.raises(ShapeError):
            cell(Tensor(np.zeros((3, 4))), Tensor(np.zeros((2, 6))))

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            GRUCell(0, 4)

    def test_gradcheck(self):
        rng = np.random.default_rng(3)
        cell = GRUCell(3, 4, rng=1)
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        h = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        params = [x, h, cell.weight_ih, cell.weight_hh, cell.bias_ih, cell.bias_hh]
        check_gradients(lambda: (cell(x, h) ** 2).mean(), params, atol=1e-4, rtol=1e-3)


class TestGRU:
    def test_output_shapes(self):
        rng = np.random.default_rng(0)
        gru = GRU(4, 6, rng=0)
        outputs, final = gru(seq(rng))
        assert outputs.shape == (5, 3, 6)
        assert final.shape == (3, 6)

    def test_final_equals_last_output_unmasked(self):
        rng = np.random.default_rng(0)
        gru = GRU(4, 6, rng=0)
        outputs, final = gru(seq(rng))
        np.testing.assert_allclose(outputs.data[-1], final.data)

    def test_mask_freezes_after_sequence_end(self):
        rng = np.random.default_rng(0)
        gru = GRU(4, 6, rng=0)
        inputs = seq(rng, steps=5, batch=2)
        mask = np.array([[1, 1], [1, 1], [1, 0], [1, 0], [1, 0]], dtype=float)
        outputs, final = gru(inputs, mask=mask)
        # Batch element 1 has length 2: its state must be constant from t=1 on.
        np.testing.assert_allclose(outputs.data[1, 1], outputs.data[4, 1])
        np.testing.assert_allclose(final.data[1], outputs.data[1, 1])

    def test_masked_final_matches_short_run(self):
        """A padded short sequence must produce the state of the unpadded run."""
        rng = np.random.default_rng(5)
        gru = GRU(3, 4, rng=2)
        short = Tensor(rng.normal(size=(2, 1, 3)))
        padded = Tensor(np.concatenate([short.data, np.zeros((3, 1, 3))], axis=0))
        mask = np.array([[1.0], [1.0], [0.0], [0.0], [0.0]])
        _, final_short = gru(short)
        _, final_padded = gru(padded, mask=mask)
        np.testing.assert_allclose(final_padded.data, final_short.data, atol=1e-12)

    def test_rejects_bad_rank(self):
        gru = GRU(4, 6, rng=0)
        with pytest.raises(ShapeError):
            gru(Tensor(np.zeros((5, 4))))

    def test_rejects_zero_steps(self):
        gru = GRU(4, 6, rng=0)
        with pytest.raises(ShapeError):
            gru(Tensor(np.zeros((0, 3, 4))))

    def test_rejects_bad_mask_shape(self):
        rng = np.random.default_rng(0)
        gru = GRU(4, 6, rng=0)
        with pytest.raises(ShapeError):
            gru(seq(rng), mask=np.ones((4, 3)))

    def test_gradcheck_through_time(self):
        rng = np.random.default_rng(4)
        gru = GRU(2, 3, rng=3)
        x = Tensor(rng.normal(size=(3, 2, 2)), requires_grad=True)
        mask = np.array([[1, 1], [1, 0], [1, 0]], dtype=float)

        def fwd():
            _, final = gru(x, mask=mask)
            return (final * final).mean()

        check_gradients(fwd, [x] + list(gru.parameters()), atol=1e-4, rtol=1e-3)


class TestBiGRU:
    def test_shapes(self):
        rng = np.random.default_rng(0)
        bigru = BiGRU(4, 6, rng=0)
        outputs, summary = bigru(seq(rng))
        assert outputs.shape == (5, 3, 12)
        assert summary.shape == (3, 12)
        assert bigru.output_size == 12

    def test_forward_half_matches_plain_gru(self):
        rng = np.random.default_rng(0)
        bigru = BiGRU(4, 6, rng=0)
        inputs = seq(rng)
        outputs, summary = bigru(inputs)
        fwd_out, fwd_final = bigru.forward_gru(inputs)
        np.testing.assert_allclose(outputs.data[..., :6], fwd_out.data)
        np.testing.assert_allclose(summary.data[:, :6], fwd_final.data)

    def test_backward_direction_sees_reversed_sequence(self):
        rng = np.random.default_rng(0)
        bigru = BiGRU(4, 6, rng=0)
        inputs = seq(rng)
        _, summary = bigru(inputs)
        rev = Tensor(inputs.data[::-1].copy())
        _, bwd_final = bigru.backward_gru(rev)
        np.testing.assert_allclose(summary.data[:, 6:], bwd_final.data)

    def test_masked_padding_invariance(self):
        """Padding must not change the BiGRU summary of a short sequence."""
        rng = np.random.default_rng(9)
        bigru = BiGRU(3, 5, rng=1)
        short = rng.normal(size=(3, 1, 3))
        _, summary_short = bigru(Tensor(short), mask=np.ones((3, 1)))
        padded = np.concatenate([short, np.zeros((2, 1, 3))], axis=0)
        mask = np.array([[1.0], [1.0], [1.0], [0.0], [0.0]])
        _, summary_padded = bigru(Tensor(padded), mask=mask)
        np.testing.assert_allclose(summary_padded.data, summary_short.data, atol=1e-12)

    def test_gradcheck(self):
        rng = np.random.default_rng(11)
        bigru = BiGRU(2, 2, rng=5)
        x = Tensor(rng.normal(size=(3, 2, 2)), requires_grad=True)
        mask = np.array([[1, 1], [1, 1], [1, 0]], dtype=float)

        def fwd():
            _, summary = bigru(x, mask=mask)
            return (summary * summary).mean()

        check_gradients(fwd, [x] + list(bigru.parameters()), atol=1e-4, rtol=1e-3)


class TestLSTM:
    def test_cell_shapes(self):
        cell = LSTMCell(4, 6, rng=0)
        h, c = cell(Tensor(np.zeros((3, 4))), cell.initial_state(3))
        assert h.shape == (3, 6)
        assert c.shape == (3, 6)

    def test_forget_bias_initialised_to_one(self):
        cell = LSTMCell(4, 6, rng=0)
        np.testing.assert_allclose(cell.bias.data[6:12], np.ones(6))

    def test_layer_shapes(self):
        rng = np.random.default_rng(0)
        lstm = LSTM(4, 6, rng=0)
        outputs, final = lstm(seq(rng))
        assert outputs.shape == (5, 3, 6)
        assert final.shape == (3, 6)

    def test_masked_padding_invariance(self):
        rng = np.random.default_rng(2)
        lstm = LSTM(3, 4, rng=1)
        short = rng.normal(size=(2, 1, 3))
        _, final_short = lstm(Tensor(short))
        padded = np.concatenate([short, np.zeros((2, 1, 3))], axis=0)
        mask = np.array([[1.0], [1.0], [0.0], [0.0]])
        _, final_padded = lstm(Tensor(padded), mask=mask)
        np.testing.assert_allclose(final_padded.data, final_short.data, atol=1e-12)

    def test_gradcheck(self):
        rng = np.random.default_rng(13)
        lstm = LSTM(2, 3, rng=7)
        x = Tensor(rng.normal(size=(3, 2, 2)), requires_grad=True)

        def fwd():
            _, final = lstm(x)
            return (final * final).mean()

        check_gradients(fwd, [x] + list(lstm.parameters()), atol=1e-4, rtol=1e-3)

    def test_rejects_bad_rank(self):
        with pytest.raises(ShapeError):
            LSTM(4, 6, rng=0)(Tensor(np.zeros((5, 4))))
