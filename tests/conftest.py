"""Shared fixtures: small deterministic networks used across the suite."""

import pytest

from repro.graph import RoadCategory, RoadNetwork, grid_network, north_jutland_like


@pytest.fixture(scope="session")
def tiny_network() -> RoadNetwork:
    """A hand-built 6-vertex network with known shortest paths.

    Layout (lengths in metres, all two-way except 4->5)::

        0 --100-- 1 --100-- 2
        |         |         |
       100       50        100
        |         |         |
        3 --100-- 4 --100-- 5      plus a fast motorway 0->2 of 250m
    """
    net = RoadNetwork(name="tiny")
    coordinates = [(0, 100), (100, 100), (200, 100), (0, 0), (100, 0), (200, 0)]
    for vid, (x, y) in enumerate(coordinates):
        net.add_vertex(vid, float(x), float(y))
    net.add_two_way(0, 1, length=100.0, category=RoadCategory.LOCAL)
    net.add_two_way(1, 2, length=100.0, category=RoadCategory.LOCAL)
    net.add_two_way(0, 3, length=100.0, category=RoadCategory.RESIDENTIAL)
    net.add_two_way(1, 4, length=50.0, category=RoadCategory.LOCAL)
    net.add_two_way(2, 5, length=100.0, category=RoadCategory.RESIDENTIAL)
    net.add_two_way(3, 4, length=100.0, category=RoadCategory.LOCAL)
    net.add_two_way(4, 5, length=100.0, category=RoadCategory.LOCAL)
    net.add_edge(0, 2, length=250.0, speed=110.0, category=RoadCategory.MOTORWAY)
    return net


@pytest.fixture(scope="session")
def small_grid() -> RoadNetwork:
    """An 8x8 perturbed grid (deterministic seed)."""
    return grid_network(8, 8, seed=7)


@pytest.fixture(scope="session")
def region_network() -> RoadNetwork:
    """A small multi-town region (deterministic seed)."""
    return north_jutland_like(num_towns=4, seed=11)
