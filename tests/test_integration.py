"""Cross-module integration tests: the full paper pipeline, end to end.

Everything here runs at smoke scale (seconds per test).  The assertions
target *behavioural* properties — the model learns, beats chance,
round-trips through persistence — rather than headline accuracy, which
the benchmark suite measures at realistic scale.
"""

import numpy as np
import pytest

from repro.core import PathRankRanker, RankerConfig, TrainerConfig, Variant
from repro.experiments import ExperimentConfig, ExperimentPipeline
from repro.graph import north_jutland_like, shortest_path, weighted_jaccard
from repro.ranking import (
    Strategy,
    TrainingDataConfig,
    evaluate_scorer,
    generate_queries,
)
from repro.trajectories import (
    FleetConfig,
    MapMatcher,
    TrajectoryDataset,
    TrajectoryGenerator,
    Trip,
    generate_fleet,
)


@pytest.fixture(scope="module")
def world():
    """A network, a fleet, and a train/test split shared by the tests."""
    network = north_jutland_like(num_towns=3, town_size_range=(3, 4), seed=7)
    fleet = FleetConfig(num_drivers=10, trips_per_driver=6,
                        min_trip_distance=1000.0, num_od_hotspots=15)
    population, trips = generate_fleet(network, rng=0, config=fleet)
    dataset = TrajectoryDataset(network, trips)
    split = dataset.split(train_fraction=0.75, validation_fraction=0.0, rng=0)
    return network, population, split


@pytest.fixture(scope="module")
def fitted_ranker(world):
    network, _, split = world
    config = RankerConfig(
        variant=Variant.PR_A2,
        embedding_dim=16,
        hidden_size=16,
        fc_hidden=8,
        training_data=TrainingDataConfig(k=3, examine_limit=60),
        trainer=TrainerConfig(epochs=12, patience=12),
    )
    return PathRankRanker(network, config).fit(split.train, rng=0)


class TestEndToEndLearning:
    def test_training_reduces_loss(self, fitted_ranker):
        history = fitted_ranker.history
        assert history.train_loss[-1] < history.train_loss[0]

    def test_beats_random_scorer(self, world, fitted_ranker):
        _, _, split = world
        config = fitted_ranker.config.training_data
        train_queries = generate_queries(split.train, config)
        test_queries = generate_queries(split.test, config)
        rng = np.random.default_rng(0)

        class RandomScorer:
            def score_query(self, query):
                return rng.random(len(query)).tolist()

        # On data it has seen, the model must clearly out-rank chance...
        model_train = evaluate_scorer(fitted_ranker, train_queries)
        random_train = evaluate_scorer(RandomScorer(), train_queries)
        assert model_train.tau > random_train.tau
        # ...and stay better-calibrated than chance on held-out data.
        model_test = evaluate_scorer(fitted_ranker, test_queries)
        random_test = evaluate_scorer(RandomScorer(), test_queries)
        assert model_test.mae < random_test.mae

    def test_predictions_discriminate_within_queries(self, world, fitted_ranker):
        _, _, split = world
        config = fitted_ranker.config.training_data
        queries = generate_queries(split.test, config)
        spreads = [max(fitted_ranker.score_query(q)) - min(fitted_ranker.score_query(q))
                   for q in queries if len(q) >= 2]
        assert np.mean(spreads) > 0.01  # not a constant predictor

    def test_rank_is_consistent_with_scores(self, world, fitted_ranker):
        _, _, split = world
        trip = split.test[0]
        ranked = fitted_ranker.rank(trip.source, trip.target)
        rescored = fitted_ranker.score_paths([p for p, _ in ranked])
        np.testing.assert_allclose([s for _, s in ranked], rescored, atol=1e-9)


class TestRawGpsToModel:
    """The full preprocessing chain: GPS -> map matching -> training."""

    def test_pipeline_from_raw_gps(self, world):
        network, population, split = world
        generator = TrajectoryGenerator(network, population)
        traces = generator.render_gps(split.train[:10], noise_std=6.0, rng=1)
        matcher = MapMatcher(network)
        matched = [
            Trip(trip.trip_id, trip.driver_id, matcher.match(trace).path)
            for trip, trace in zip(split.train[:10], traces)
        ]
        # Matched paths stay close to ground truth...
        overlaps = [weighted_jaccard(m.path, t.path)
                    for m, t in zip(matched, split.train)]
        assert np.mean(overlaps) > 0.7
        # ...and feed straight into candidate generation.
        queries = generate_queries(
            matched, TrainingDataConfig(k=3, examine_limit=60), min_candidates=2)
        assert queries
        for query in queries:
            assert all(0.0 <= c.score <= 1.0 for c in query.candidates)


class TestSmokeExperiment:
    def test_pipeline_cell_reproducible(self):
        config = ExperimentConfig.smoke()
        a = ExperimentPipeline(config).run_cell(config)
        b = ExperimentPipeline(config).run_cell(config)
        assert a.metrics.mae == pytest.approx(b.metrics.mae)
        assert a.metrics.tau == pytest.approx(b.metrics.tau)


class TestPersistenceRoundTrip:
    def test_dataset_and_model_roundtrip(self, world, fitted_ranker, tmp_path):
        network, _, split = world
        dataset_path = tmp_path / "dataset.json"
        TrajectoryDataset(network, split.train).save(dataset_path)
        restored_dataset = TrajectoryDataset.load(dataset_path)
        assert len(restored_dataset) == len(split.train)

        model_path = tmp_path / "model.npz"
        fitted_ranker.save(model_path)
        restored = PathRankRanker(network, fitted_ranker.config).load(model_path)
        trip = split.test[0]
        np.testing.assert_allclose(
            restored.score_paths([trip.path]),
            fitted_ranker.score_paths([trip.path]),
        )
