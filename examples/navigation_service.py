"""Scenario: a navigation backend that suggests driver-preferred routes.

This is the workload the paper's introduction motivates: commercial
services return several candidate paths, and the interesting question is
which one to put on top.  The script trains PathRank on fleet history,
then serves a few queries and compares its top suggestion against the
classic criteria (shortest, fastest) by how well each matches what a
held-out driver actually drove.

    python examples/navigation_service.py
"""

import numpy as np

from repro.core import PathRankRanker, RankerConfig, TrainerConfig, Variant
from repro.graph import (
    north_jutland_like,
    shortest_path,
    travel_time_cost,
    weighted_jaccard,
)
from repro.ranking import Strategy, TrainingDataConfig
from repro.trajectories import FleetConfig, TrajectoryDataset, generate_fleet


def main() -> None:
    network = north_jutland_like(num_towns=4, town_size_range=(3, 5), seed=11)
    fleet = FleetConfig(num_drivers=24, trips_per_driver=8, num_od_hotspots=30)
    _, trips = generate_fleet(network, rng=0, config=fleet)
    dataset = TrajectoryDataset(network, trips)
    split = dataset.split(train_fraction=0.8, validation_fraction=0.0, rng=0)
    print(f"{network} | train {len(split.train)} trips, test {len(split.test)} trips")

    config = RankerConfig(
        variant=Variant.PR_A2,
        embedding_dim=32,
        hidden_size=32,
        fc_hidden=16,
        training_data=TrainingDataConfig(strategy=Strategy.D_TKDI, k=5,
                                         diversity_threshold=0.8,
                                         examine_limit=100),
        trainer=TrainerConfig(epochs=25, patience=6),
    )
    ranker = PathRankRanker(network, config)
    ranker.fit(split.train, rng=0)
    print(f"trained in {ranker.history.epochs_run} epochs\n")

    # Serve held-out queries: how close is each criterion's top pick to
    # the driver's actual route?
    overlaps = {"PathRank": [], "shortest": [], "fastest": []}
    served = 0
    for trip in split.test:
        ranked = ranker.rank(trip.source, trip.target)
        if len(ranked) < 2:
            continue
        served += 1
        top_path, _ = ranked[0]
        overlaps["PathRank"].append(weighted_jaccard(top_path, trip.path))
        overlaps["shortest"].append(weighted_jaccard(
            shortest_path(network, trip.source, trip.target), trip.path))
        overlaps["fastest"].append(weighted_jaccard(
            shortest_path(network, trip.source, trip.target,
                          travel_time_cost), trip.path))
        if served == 30:
            break

    print(f"top-suggestion overlap with the driver's actual route "
          f"({served} held-out trips):")
    for name, values in overlaps.items():
        print(f"  {name:>9}: mean weighted Jaccard = {np.mean(values):.3f}")

    best = max(overlaps, key=lambda name: np.mean(overlaps[name]))
    print(f"\nbest criterion on this fleet: {best}")


if __name__ == "__main__":
    main()
