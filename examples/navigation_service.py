"""Scenario: a navigation backend that suggests driver-preferred routes.

This is the workload the paper's introduction motivates: commercial
services return several candidate paths, and the interesting question is
which one to put on top.  The script trains PathRank on fleet history,
publishes the model into a :class:`~repro.serving.ModelRegistry`, and
answers held-out queries through the **concurrent**
:class:`~repro.serving.ServingEngine` — warm-up from the training
hotspot mix, candidate caching, deadline-batched cross-request
coalescing, and per-request latency accounting included — then compares
its top suggestion against the classic criteria (shortest, fastest) by
how well each matches what a held-out driver actually drove.

    python examples/navigation_service.py
"""

import tempfile

import numpy as np

from repro.core import PathRankRanker, RankerConfig, TrainerConfig, Variant
from repro.graph import (
    north_jutland_like,
    shortest_path,
    travel_time_cost,
    weighted_jaccard,
)
from repro.ranking import Strategy, TrainingDataConfig
from repro.serving import (
    ModelRegistry,
    RankingService,
    RankRequest,
    ServingConfig,
    ServingEngine,
)
from repro.trajectories import FleetConfig, TrajectoryDataset, generate_fleet


def main() -> None:
    network = north_jutland_like(num_towns=4, town_size_range=(3, 5), seed=11)
    fleet = FleetConfig(num_drivers=24, trips_per_driver=8, num_od_hotspots=30)
    _, trips = generate_fleet(network, rng=0, config=fleet)
    dataset = TrajectoryDataset(network, trips)
    split = dataset.split(train_fraction=0.8, validation_fraction=0.0, rng=0)
    print(f"{network} | train {len(split.train)} trips, test {len(split.test)} trips")

    candidates = TrainingDataConfig(strategy=Strategy.D_TKDI, k=5,
                                    diversity_threshold=0.8,
                                    examine_limit=100)
    config = RankerConfig(
        variant=Variant.PR_A2,
        embedding_dim=32,
        hidden_size=32,
        fc_hidden=16,
        training_data=candidates,
        trainer=TrainerConfig(epochs=25, patience=6),
    )
    ranker = PathRankRanker(network, config)
    ranker.fit(split.train, rng=0)
    print(f"trained in {ranker.history.epochs_run} epochs\n")

    with tempfile.TemporaryDirectory() as artifacts:
        # Offline -> online handoff: publish the trained model, then serve.
        registry = ModelRegistry(artifacts, network)
        version = registry.publish(ranker, activate=True)
        service = RankingService(
            network, registry, ServingConfig(candidates=candidates))
        print(f"serving model version {version} from {registry.root}")

        # Held-out queries arrive concurrently in production; the engine
        # coalesces them into shared scoring batches.  Warm-up replays
        # the training OD mix (yesterday's hotspots) through the caches
        # before the engine reports ready.
        warmup = [RankRequest(source=trip.source, target=trip.target)
                  for trip in split.train[:40]]
        requests = [RankRequest(source=trip.source, target=trip.target,
                                request_id=trip.trip_id)
                    for trip in split.test[:30]]
        by_id = {trip.trip_id: trip for trip in split.test}
        overlaps = {"PathRank": [], "shortest": [], "fastest": []}
        served = 0
        with ServingEngine(service, concurrency=8, flush_deadline_ms=2.0,
                           warmup=warmup) as engine:
            print(f"engine ready (warmed {engine.warmed_up} hotspot queries)")
            for response in engine.rank_batch(requests):
                if len(response.results) < 2:
                    continue
                served += 1
                trip = by_id[response.request.request_id]
                overlaps["PathRank"].append(
                    weighted_jaccard(response.top.path, trip.path))
                overlaps["shortest"].append(weighted_jaccard(
                    shortest_path(network, trip.source, trip.target), trip.path))
                overlaps["fastest"].append(weighted_jaccard(
                    shortest_path(network, trip.source, trip.target,
                                  travel_time_cost), trip.path))
            stats = engine.stats()

        print(f"top-suggestion overlap with the driver's actual route "
              f"({served} held-out trips):")
        for name, values in overlaps.items():
            print(f"  {name:>9}: mean weighted Jaccard = {np.mean(values):.3f}")

        best = max(overlaps, key=lambda name: np.mean(overlaps[name]))
        print(f"\nbest criterion on this fleet: {best}")

        occupancy = stats["engine"]["occupancy"]
        print(f"\nserving stats: {stats['counters']['requests']} requests, "
              f"candidate-cache hit rate "
              f"{stats['candidate_cache']['hit_rate']:.2f}, "
              f"{stats['scoring']['batches_run']} forward batches for "
              f"{stats['scoring']['paths_scored']} paths, "
              f"{occupancy['mean_requests_per_flush']:.1f} requests per "
              f"engine flush, p95 latency {stats['latency']['p95_ms']:.1f} ms")


if __name__ == "__main__":
    main()
