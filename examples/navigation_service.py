"""Scenario: a navigation backend that suggests driver-preferred routes.

This is the workload the paper's introduction motivates: commercial
services return several candidate paths, and the interesting question is
which one to put on top.  The script trains PathRank on fleet history,
publishes the model into a :class:`~repro.serving.ModelRegistry`, and
answers held-out queries through the **concurrent**
:class:`~repro.serving.ServingEngine` — warm-up from the training
hotspot mix, candidate caching, deadline-batched cross-request
coalescing, and per-request latency accounting included — then compares
its top suggestion against the classic criteria (shortest, fastest) by
how well each matches what a held-out driver actually drove.

The final section rebuilds the same deployment on the **shard plane**:
the region is partitioned into two road-distance Voronoi shards, the
published model serves both through a shared
:class:`~repro.serving.ShardedRegistry`, and the engine coalesces each
shard's traffic through that shard's own caches and scorer — the
arrangement that scales to graphs too big for one cache or one
embedding matrix.

    python examples/navigation_service.py
"""

import tempfile

import numpy as np

from repro.core import PathRankRanker, RankerConfig, TrainerConfig, Variant
from repro.graph import (
    north_jutland_like,
    shortest_path,
    travel_time_cost,
    voronoi_partition,
    weighted_jaccard,
)
from repro.ranking import Strategy, TrainingDataConfig
from repro.serving import (
    ModelRegistry,
    RankingService,
    RankRequest,
    ServingConfig,
    ServingEngine,
    ShardedRegistry,
)
from repro.trajectories import FleetConfig, TrajectoryDataset, generate_fleet


def main() -> None:
    network = north_jutland_like(num_towns=4, town_size_range=(3, 5), seed=11)
    fleet = FleetConfig(num_drivers=24, trips_per_driver=8, num_od_hotspots=30)
    _, trips = generate_fleet(network, rng=0, config=fleet)
    dataset = TrajectoryDataset(network, trips)
    split = dataset.split(train_fraction=0.8, validation_fraction=0.0, rng=0)
    print(f"{network} | train {len(split.train)} trips, test {len(split.test)} trips")

    candidates = TrainingDataConfig(strategy=Strategy.D_TKDI, k=5,
                                    diversity_threshold=0.8,
                                    examine_limit=100)
    config = RankerConfig(
        variant=Variant.PR_A2,
        embedding_dim=32,
        hidden_size=32,
        fc_hidden=16,
        training_data=candidates,
        trainer=TrainerConfig(epochs=25, patience=6),
    )
    ranker = PathRankRanker(network, config)
    ranker.fit(split.train, rng=0)
    print(f"trained in {ranker.history.epochs_run} epochs\n")

    with tempfile.TemporaryDirectory() as artifacts:
        # Offline -> online handoff: publish the trained model, then serve.
        registry = ModelRegistry(artifacts, network)
        version = registry.publish(ranker, activate=True)
        service = RankingService(
            network, registry, ServingConfig(candidates=candidates))
        print(f"serving model version {version} from {registry.root}")

        # Held-out queries arrive concurrently in production; the engine
        # coalesces them into shared scoring batches.  Warm-up replays
        # the training OD mix (yesterday's hotspots) through the caches
        # before the engine reports ready.
        warmup = [RankRequest(source=trip.source, target=trip.target)
                  for trip in split.train[:40]]
        requests = [RankRequest(source=trip.source, target=trip.target,
                                request_id=trip.trip_id)
                    for trip in split.test[:30]]
        by_id = {trip.trip_id: trip for trip in split.test}
        overlaps = {"PathRank": [], "shortest": [], "fastest": []}
        served = 0
        with ServingEngine(service, concurrency=8, flush_deadline_ms=2.0,
                           warmup=warmup) as engine:
            print(f"engine ready (warmed {engine.warmed_up} hotspot queries)")
            responses = engine.rank_batch(requests)
            for response in responses:
                if len(response.results) < 2:
                    continue
                served += 1
                trip = by_id[response.request.request_id]
                overlaps["PathRank"].append(
                    weighted_jaccard(response.top.path, trip.path))
                overlaps["shortest"].append(weighted_jaccard(
                    shortest_path(network, trip.source, trip.target), trip.path))
                overlaps["fastest"].append(weighted_jaccard(
                    shortest_path(network, trip.source, trip.target,
                                  travel_time_cost), trip.path))
            stats = engine.stats()

        print(f"top-suggestion overlap with the driver's actual route "
              f"({served} held-out trips):")
        for name, values in overlaps.items():
            print(f"  {name:>9}: mean weighted Jaccard = {np.mean(values):.3f}")

        best = max(overlaps, key=lambda name: np.mean(overlaps[name]))
        print(f"\nbest criterion on this fleet: {best}")

        occupancy = stats["engine"]["occupancy"]
        print(f"\nserving stats: {stats['counters']['requests']} requests, "
              f"candidate-cache hit rate "
              f"{stats['candidate_cache']['hit_rate']:.2f}, "
              f"{stats['scoring']['batches_run']} forward batches for "
              f"{stats['scoring']['paths_scored']} paths, "
              f"{occupancy['mean_requests_per_flush']:.1f} requests per "
              f"engine flush, p95 latency {stats['latency']['p95_ms']:.1f} ms")

        # ------------------------------------------------------------------
        # The same deployment on the shard plane: two regions, one engine.
        # ------------------------------------------------------------------
        # Partition the region into two road-distance Voronoi shards and
        # back both with the already-published checkpoint (a shared
        # registry): every request is owned by its source shard — its
        # own candidate/score caches, its own scoring batches — and
        # cross-region queries route through the boundary-stitched
        # corridor subgraph.  Same-shard rankings stay element-wise
        # identical to the unsharded engine's.
        partition = voronoi_partition(network, 2, rng=0)
        sharded = ShardedRegistry.shared(registry, partition)
        sharded_service = RankingService(
            network, sharded, ServingConfig(candidates=candidates))
        sharded_service.activate(version)
        with ServingEngine(sharded_service, concurrency=8,
                           flush_deadline_ms=2.0, warmup=warmup) as engine:
            sharded_responses = engine.rank_batch(requests)
            sharded_stats = engine.stats()

        agree = sum(
            1 for mine, theirs in zip(sharded_responses, responses)
            if [r.path.vertices for r in mine.results]
            == [r.path.vertices for r in theirs.results]
        )
        print(f"\nshard plane: {partition.num_shards} regions "
              f"(sizes {[s.size for s in partition.shards]}, "
              f"{partition.cut_edges} cut edges), "
              f"{agree}/{len(requests)} responses identical to the "
              f"unsharded engine")
        for label, entry in sharded_stats["sharding"]["per_shard"].items():
            requests_block = entry.get("requests", {})
            print(f"  {label}: {requests_block.get('requests', 0)} requests "
                  f"({requests_block.get('cross_shard', 0)} cross-shard), "
                  f"candidate-cache hit rate "
                  f"{entry['candidate_cache']['hit_rate']:.2f}")


if __name__ == "__main__":
    main()
