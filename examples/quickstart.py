"""Quickstart: train PathRank on a synthetic region and rank paths.

Runs in well under a minute: builds a small multi-town road network,
simulates a fleet of preference-driven drivers, trains the PR-A2 model,
and ranks candidate paths for a fresh query.

    python examples/quickstart.py
"""

from repro.core import PathRankRanker, RankerConfig, TrainerConfig, Variant
from repro.graph import north_jutland_like, shortest_path, travel_time_cost
from repro.ranking import Strategy, TrainingDataConfig
from repro.trajectories import FleetConfig, generate_fleet


def main() -> None:
    # 1. A road network: several towns joined by motorway/arterial corridors.
    network = north_jutland_like(num_towns=3, town_size_range=(3, 4), seed=7)
    print(f"network: {network}")

    # 2. Historical trajectories from a fleet of drivers with latent
    #    route-choice preferences (the paper's 183-vehicle GPS corpus).
    fleet = FleetConfig(num_drivers=10, trips_per_driver=6,
                        min_trip_distance=1000.0, num_od_hotspots=15)
    _, trips = generate_fleet(network, rng=0, config=fleet)
    print(f"fleet: {len(trips)} map-matched trips")

    # 3. Train PathRank: node2vec embedding -> BiGRU -> regression head.
    config = RankerConfig(
        variant=Variant.PR_A2,
        embedding_dim=16,
        hidden_size=16,
        fc_hidden=8,
        training_data=TrainingDataConfig(strategy=Strategy.D_TKDI, k=3,
                                         examine_limit=60),
        trainer=TrainerConfig(epochs=10, patience=10),
    )
    ranker = PathRankRanker(network, config)
    ranker.fit(trips, rng=0)
    history = ranker.history
    print(f"trained: {history.epochs_run} epochs, "
          f"loss {history.train_loss[0]:.4f} -> {history.train_loss[-1]:.4f}")

    # 4. Rank candidate paths for a query, like a navigation service would.
    #    Pick a trip whose OD pair admits several diverse candidates.
    source, target, ranked = None, None, []
    for trip in trips:
        ranked = ranker.rank(trip.source, trip.target)
        if len(ranked) >= 3:
            source, target = trip.source, trip.target
            break
    print(f"\nquery: {source} -> {target}")
    fastest = shortest_path(network, source, target, travel_time_cost)
    for position, (path, score) in enumerate(ranked, 1):
        tags = []
        if path.edge_set == fastest.edge_set:
            tags.append("fastest")
        label = f" ({', '.join(tags)})" if tags else ""
        print(f"  #{position}: score={score:.3f} length={path.length:.0f}m "
              f"time={path.travel_time:.0f}s via {path.num_vertices} vertices{label}")


if __name__ == "__main__":
    main()
