"""Regenerate the paper's Table 1 and Table 2.

Defaults to the ``quick`` preset (minutes); pass ``paper`` for the
headline configuration behind EXPERIMENTS.md (tens of minutes):

    python examples/reproduce_tables.py [quick|paper|smoke]
"""

import sys
import time

from repro.experiments import (
    ExperimentConfig,
    ExperimentPipeline,
    render_strategy_table,
    table1,
    table2,
)

PAPER_TABLE1 = """Paper's Table 1 (PR-A1), for reference:
Strategies | M   | MAE    | MARE   | tau    | rho
-----------+-----+--------+--------+--------+-------
TkDI       | 64  | 0.1433 | 0.2300 | 0.6638 | 0.7044
TkDI       | 128 | 0.1168 | 0.1875 | 0.6913 | 0.7330
D-TkDI     | 64  | 0.1140 | 0.1830 | 0.6959 | 0.7346
D-TkDI     | 128 | 0.0955 | 0.1533 | 0.7077 | 0.7492"""

PAPER_TABLE2 = """Paper's Table 2 (PR-A2), for reference:
Strategies | M   | MAE    | MARE   | tau    | rho
-----------+-----+--------+--------+--------+-------
TkDI       | 64  | 0.1163 | 0.1868 | 0.6835 | 0.7256
TkDI       | 128 | 0.1130 | 0.1814 | 0.7082 | 0.7481
D-TkDI     | 64  | 0.0940 | 0.1509 | 0.7144 | 0.7532
D-TkDI     | 128 | 0.0855 | 0.1373 | 0.7339 | 0.7731"""


def main() -> None:
    preset = sys.argv[1] if len(sys.argv) > 1 else "quick"
    config = {
        "paper": ExperimentConfig.paper,
        "quick": ExperimentConfig.quick,
        "smoke": ExperimentConfig.smoke,
    }[preset]()
    sizes = (64, 128) if preset == "paper" else (32, 64)
    pipeline = ExperimentPipeline(config)

    start = time.time()
    rows1 = table1(pipeline, embedding_sizes=sizes)
    print(render_strategy_table(
        f"Table 1: Training Data Generation Strategies, PR-A1 ({preset})", rows1))
    print()
    print(PAPER_TABLE1)
    print()

    rows2 = table2(pipeline, embedding_sizes=sizes)
    print(render_strategy_table(
        f"Table 2: Training Data Generation Strategies, PR-A2 ({preset})", rows2))
    print()
    print(PAPER_TABLE2)
    print(f"\n[{time.time() - start:.0f}s total]")


if __name__ == "__main__":
    main()
