"""Scenario: the raw-data preprocessing pipeline.

The paper starts from 180M raw GPS records; everything downstream
consumes *map-matched* vertex paths.  This script walks that substrate
end to end: simulate noisy GPS traces, recover the driven paths with the
HMM map matcher, compare against ground truth, and turn the matched
trips into labelled PathRank training queries.

    python examples/map_matching_pipeline.py
"""

import numpy as np

from repro.graph import north_jutland_like, weighted_jaccard
from repro.ranking import Strategy, TrainingDataConfig, generate_queries
from repro.trajectories import (
    FleetConfig,
    MapMatcher,
    TrajectoryDataset,
    TrajectoryGenerator,
    Trip,
    generate_fleet,
)


def main() -> None:
    network = north_jutland_like(num_towns=3, town_size_range=(3, 4), seed=7)
    fleet = FleetConfig(num_drivers=6, trips_per_driver=4,
                        min_trip_distance=1200.0, num_od_hotspots=10)
    population, trips = generate_fleet(network, rng=1, config=fleet)
    print(f"{network} | {len(trips)} ground-truth trips")

    # 1. Render raw GPS: one fix every 10 s, 8 m standard noise.
    generator = TrajectoryGenerator(network, population, fleet)
    traces = generator.render_gps(trips, sample_interval=10.0, noise_std=8.0,
                                  rng=2)
    fixes = sum(len(t) for t in traces)
    print(f"rendered {fixes} GPS fixes across {len(traces)} traces")

    # 2. Map-match the raw traces back onto the network.
    matcher = MapMatcher(network, sigma=15.0, beta=80.0)
    matched_trips = []
    overlaps = []
    for trip, trace in zip(trips, traces):
        result = matcher.match(trace)
        matched_trips.append(Trip(trip.trip_id, trip.driver_id, result.path))
        overlaps.append(weighted_jaccard(result.path, trip.path))
    print(f"map matching: mean overlap with ground truth = "
          f"{np.mean(overlaps):.3f} (min {min(overlaps):.3f})")

    # 3. Build labelled ranking queries from the *matched* trips — the
    #    exact input PathRank trains on.
    queries = generate_queries(
        matched_trips,
        TrainingDataConfig(strategy=Strategy.D_TKDI, k=3, examine_limit=60),
    )
    print(f"generated {len(queries)} ranking queries "
          f"({sum(len(q) for q in queries)} labelled candidates)")
    example = queries[0]
    print(f"\nexample query {example.source} -> {example.target}:")
    for candidate in example.candidates:
        print(f"  rank {candidate.generation_rank}: "
              f"length={candidate.path.length:.0f}m "
              f"ground-truth score={candidate.score:.3f}")

    # 4. Datasets round-trip to JSON for downstream training runs.
    dataset = TrajectoryDataset(network, matched_trips)
    dataset.save("/tmp/pathrank_matched_trips.json")
    print(f"\nsaved {dataset} -> /tmp/pathrank_matched_trips.json")


if __name__ == "__main__":
    main()
