"""Command-line interface.

Exposes the full pipeline as subcommands so the library is usable
without writing Python::

    python -m repro.cli build-network --kind region --towns 4 --seed 11 \
        --out /tmp/net.json
    python -m repro.cli simulate-fleet --network /tmp/net.json \
        --drivers 20 --trips 8 --seed 0 --out /tmp/trips.json
    python -m repro.cli train --dataset /tmp/trips.json --variant PR-A2 \
        --embedding-dim 32 --epochs 20 --out /tmp/model.npz
    python -m repro.cli evaluate --dataset /tmp/trips.json --model /tmp/model.npz
    python -m repro.cli rank --dataset /tmp/trips.json --model /tmp/model.npz \
        --source 3 --target 47
    python -m repro.cli serve --network /tmp/net.json --model /tmp/model.npz \
        --queries-file /tmp/queries.json --json \
        --concurrency 8 --flush-deadline-ms 2 --split v0001=3,v0002=1 \
        --shards 4 --partition-method voronoi
    python -m repro.cli bench-serve --network /tmp/net.json \
        --model /tmp/model.npz --requests 200 --hotspots 20 \
        --concurrency 32 --qps 500
    python -m repro.cli bench-serve --network /tmp/net.json \
        --model /tmp/model.npz --concurrency 16 --deadline-ms 50 \
        --max-queue 64 --shed-policy degrade --fault-spec 'score@1:error'
    python -m repro.cli bench-routing --out BENCH_routing.json
    python -m repro.cli bench-ch --out BENCH_ch.json --shards 4
    python -m repro.cli bench-scoring --out BENCH_scoring.json
    python -m repro.cli bench-sharding --out BENCH_sharding.json
    python -m repro.cli bench-observability --out BENCH_observability.json
    python -m repro.cli bench-robustness --out BENCH_robustness.json
    python -m repro.cli bench-parallel --out BENCH_parallel.json
    python -m repro.cli od-matrix --network /tmp/net.json \
        --origins 3,9,12 --destinations 47,58 --cost travel_time
    python -m repro.cli service-area --network /tmp/net.json \
        --sources 3,9 --budgets 500,1500 --reverse
    python -m repro.cli route-frequencies --network /tmp/net.json \
        --pairs 3:47,9:58,12:47 --top 10
    python -m repro.cli bench-analytics --out BENCH_analytics.json
    python -m repro.cli metrics-dump --timeline /tmp/run.jsonl --format summary
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from contextlib import nullcontext
from pathlib import Path as FilePath

from repro.core.ranker import PathRankRanker, RankerConfig
from repro.core.trainer import TrainerConfig
from repro.core.variants import Variant
from repro.errors import DataError, ReproError, ServingError
from repro.graph.builders import grid_network, north_jutland_like, ring_radial_network
from repro.graph.io import load_network_json, save_network_json
from repro.graph.osm import save_osm_xml
from repro.core import scoring_bench
from repro.graph import ch_bench
from repro.graph.routing_bench import (
    apply_overrides,
    full_config,
    run_routing_benchmark,
    smoke_config,
    write_report,
)
from repro.ranking.evaluation import evaluate_scorer
from repro.ranking.training_data import Strategy, TrainingDataConfig, generate_queries
from repro.graph.partition import PARTITION_METHODS, partition_network
from repro.serving import (
    ModelRegistry,
    RankingService,
    RankRequest,
    ResilienceConfig,
    ServingConfig,
    ServingEngine,
    ShardedRegistry,
    WorkloadConfig,
    generate_timed_workload,
    generate_workload,
    replay_open_loop,
    run_engine_workload,
    run_workload,
)
from repro.serving.resilience import SHED_POLICIES
from repro.obs import observability_bench
from repro.obs.export import (
    SnapshotExporter,
    load_timeline,
    prometheus_snapshot_lines,
    summarise_timeline,
)
from repro.analytics import (
    analytics_bench,
    cost_from_name,
    od_cost_matrix,
    route_frequencies,
    service_area,
)
from repro.exec import ExecutionPlane, parallel_bench
from repro.serving import robustness_bench, sharding_bench
from repro.trajectories.dataset import TrajectoryDataset
from repro.trajectories.drivers import sample_population
from repro.trajectories.generator import FleetConfig, TrajectoryGenerator

__all__ = ["main", "build_parser"]


def _flush_deadline(text: str):
    """``--flush-deadline-ms`` value: a number of ms, or ``auto``."""
    if text == "auto":
        return "auto"
    try:
        return float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number of milliseconds or 'auto', got {text!r}"
        ) from None


def _add_execution_flags(subparser: argparse.ArgumentParser) -> None:
    """Execution-plane flags shared by ``serve`` and ``bench-serve``."""
    subparser.add_argument("--execution",
                           choices=("inline", "threads", "processes"),
                           default="inline",
                           help="execution plane: inline (default), "
                                "threads (parallel scoring groups), or "
                                "processes (worker pool over shared-memory "
                                "CSR + weights)")
    subparser.add_argument("--workers", type=int, default=2,
                           help="worker processes for --execution processes")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PathRank: learning to rank paths in spatial networks",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build-network", help="generate a road network")
    build.add_argument("--kind", choices=("grid", "ring", "region"),
                       default="region")
    build.add_argument("--rows", type=int, default=8)
    build.add_argument("--cols", type=int, default=8)
    build.add_argument("--towns", type=int, default=4)
    build.add_argument("--seed", type=int, default=11)
    build.add_argument("--out", required=True)
    build.add_argument("--osm-out", default=None,
                       help="optionally also write OSM XML")

    fleet = commands.add_parser("simulate-fleet", help="simulate trajectories")
    fleet.add_argument("--network", required=True)
    fleet.add_argument("--drivers", type=int, default=20)
    fleet.add_argument("--trips", type=int, default=8)
    fleet.add_argument("--hotspots", type=int, default=40)
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--out", required=True)

    train = commands.add_parser("train", help="train PathRank on a dataset")
    train.add_argument("--dataset", required=True)
    train.add_argument("--variant", choices=[v.value for v in Variant],
                       default="PR-A2")
    train.add_argument("--strategy", choices=[s.value for s in Strategy],
                       default="D-TkDI")
    train.add_argument("--k", type=int, default=5)
    train.add_argument("--embedding-dim", type=int, default=32)
    train.add_argument("--hidden-size", type=int, default=32)
    train.add_argument("--epochs", type=int, default=25)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--out", required=True)

    evaluate = commands.add_parser("evaluate", help="evaluate a trained model")
    evaluate.add_argument("--dataset", required=True)
    evaluate.add_argument("--model", required=True)
    evaluate.add_argument("--strategy", choices=[s.value for s in Strategy],
                          default="D-TkDI")
    evaluate.add_argument("--k", type=int, default=5)
    evaluate.add_argument("--test-fraction", type=float, default=0.25)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument("--json", action="store_true",
                          help="print metrics as JSON")

    rank = commands.add_parser("rank", help="rank candidate paths for a query")
    rank.add_argument("--dataset", required=True)
    rank.add_argument("--model", required=True)
    rank.add_argument("--source", type=int, required=True)
    rank.add_argument("--target", type=int, required=True)
    rank.add_argument("--k", type=int, default=5)

    serve = commands.add_parser(
        "serve", help="answer ranking queries through the serving layer")
    serve.add_argument("--network", required=True)
    serve.add_argument("--model", required=True,
                       help="model checkpoint (.npz); its directory acts as "
                            "the model registry")
    serve.add_argument("--queries-file", required=True,
                       help="JSON request replay: a list of "
                            '{"source": ..., "target": ...} objects')
    serve.add_argument("--strategy", choices=[s.value for s in Strategy],
                       default="D-TkDI")
    serve.add_argument("--k", type=int, default=5)
    serve.add_argument("--batch-size", type=int, default=64,
                       help="coalesce this many requests per forward pass")
    serve.add_argument("--cache-size", type=int, default=1024)
    serve.add_argument("--no-fallback", action="store_true",
                       help="fail requests instead of degrading to the "
                            "shortest path")
    serve.add_argument("--concurrency", type=int, default=0,
                       help="serve through the concurrent engine with this "
                            "many workers (0 = synchronous facade)")
    serve.add_argument("--flush-deadline-ms", type=_flush_deadline,
                       default=2.0,
                       help="engine scoring-batch flush deadline in ms, or "
                            "'auto' to derive it from live traffic")
    serve.add_argument("--split", default=None,
                       help="A/B traffic split, e.g. 'v0001=3,v0002=1' "
                            "(weights are normalised)")
    serve.add_argument("--shards", type=int, default=0,
                       help="partition the network into this many region "
                            "shards and serve on the shard plane (0 = "
                            "unsharded; the checkpoint serves all shards)")
    serve.add_argument("--partition-method",
                       choices=sorted(PARTITION_METHODS), default="voronoi",
                       help="partitioner behind --shards")
    serve.add_argument("--json", action="store_true",
                       help="print responses and stats as JSON")
    _add_execution_flags(serve)
    _add_trace_flags(serve)
    _add_resilience_flags(serve)

    bench = commands.add_parser(
        "bench-serve", help="replay a Zipf-skewed hotspot workload, report JSON")
    bench.add_argument("--network", required=True)
    bench.add_argument("--model", required=True)
    bench.add_argument("--requests", type=int, default=200)
    bench.add_argument("--hotspots", type=int, default=20)
    bench.add_argument("--zipf", type=float, default=1.1)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--strategy", choices=[s.value for s in Strategy],
                       default="D-TkDI")
    bench.add_argument("--k", type=int, default=5)
    bench.add_argument("--batch-size", type=int, default=8)
    bench.add_argument("--cache-size", type=int, default=1024)
    bench.add_argument("--concurrency", type=int, default=0,
                       help="drive the concurrent engine closed-loop with "
                            "this many clients (0 = batched synchronous "
                            "replay)")
    bench.add_argument("--flush-deadline-ms", type=_flush_deadline,
                       default=2.0,
                       help="engine scoring-batch flush deadline in ms, or "
                            "'auto' to derive it from live traffic")
    bench.add_argument("--split", default=None,
                       help="A/B traffic split, e.g. 'v0001=3,v0002=1'")
    bench.add_argument("--qps", type=float, default=None,
                       help="open-loop mode: drive the engine with Poisson "
                            "arrivals at this rate (requires --concurrency)")
    bench.add_argument("--shards", type=int, default=0,
                       help="serve on the shard plane with this many region "
                            "shards (0 = unsharded)")
    bench.add_argument("--partition-method",
                       choices=sorted(PARTITION_METHODS), default="voronoi",
                       help="partitioner behind --shards")
    bench.add_argument("--cross-fraction", type=float, default=0.25,
                       help="with --shards: fraction of requests spanning "
                            "two shards (multi-region workload)")
    bench.add_argument("--wait-timeout-s", type=float, default=None,
                       help="bound each client's response wait; unanswered "
                            "requests count as hung instead of blocking "
                            "(always set this with --fault-spec)")
    _add_execution_flags(bench)
    _add_trace_flags(bench)
    _add_resilience_flags(bench)

    routing = commands.add_parser(
        "bench-routing",
        help="compare the dict and CSR routing backends, report JSON")
    routing.add_argument("--smoke", action="store_true",
                         help="tiny sub-second preset")
    routing.add_argument("--sizes", default=None,
                         help="comma-separated grid sizes, e.g. 12,24,40")
    routing.add_argument("--k", type=int, default=None,
                         help="paths per Yen query")
    routing.add_argument("--seed", type=int, default=None)
    routing.add_argument("--out", default=None,
                         help="also write the report to this path")

    ch = commands.add_parser(
        "bench-ch",
        help="benchmark the contraction-hierarchy routing lane vs ALT, "
             "report JSON")
    ch.add_argument("--smoke", action="store_true",
                    help="tiny sub-second preset")
    ch.add_argument("--sizes", default=None,
                    help="comma-separated grid sizes, e.g. 12,24,40")
    ch.add_argument("--k", type=int, default=None,
                    help="paths per Yen query")
    ch.add_argument("--seed", type=int, default=None)
    ch.add_argument("--backend", default=None, choices=("csr", "dict"),
                    help="baseline lane to compare against "
                         "(default csr = ALT A*)")
    ch.add_argument("--shards", type=int, default=None,
                    help="also benchmark per-shard hierarchy builds and "
                         "corridor certificates at this shard count")
    ch.add_argument("--out", default=None,
                    help="also write the report to this path")

    scoring = commands.add_parser(
        "bench-scoring",
        help="compare the module and fused scoring backends, report JSON")
    scoring.add_argument("--smoke", action="store_true",
                         help="tiny sub-second preset")
    scoring.add_argument("--k", type=int, default=None,
                         help="candidate paths per query")
    scoring.add_argument("--queries", type=int, default=None,
                         help="number of candidate-set queries")
    scoring.add_argument("--seed", type=int, default=None)
    scoring.add_argument("--out", default=None,
                         help="also write the report to this path")

    sharding = commands.add_parser(
        "bench-sharding",
        help="compare the sharded and unsharded serving planes, report JSON")
    sharding.add_argument("--smoke", action="store_true",
                          help="tiny sub-second preset")
    sharding.add_argument("--requests", type=int, default=None)
    sharding.add_argument("--shards", type=int, default=None,
                          help="number of region shards")
    sharding.add_argument("--cross-fraction", type=float, default=None,
                          help="fraction of requests spanning two shards")
    sharding.add_argument("--concurrency", type=int, default=None)
    sharding.add_argument("--k", type=int, default=None)
    sharding.add_argument("--seed", type=int, default=None)
    sharding.add_argument("--out", default=None,
                          help="also write the report to this path")

    observability = commands.add_parser(
        "bench-observability",
        help="measure the telemetry plane's overhead vs dormant, "
             "report JSON")
    observability.add_argument("--smoke", action="store_true",
                               help="tiny sub-second preset")
    observability.add_argument("--requests", type=int, default=None)
    observability.add_argument("--hotspots", type=int, default=None)
    observability.add_argument("--concurrency", type=int, default=None)
    observability.add_argument("--k", type=int, default=None)
    observability.add_argument("--seed", type=int, default=None)
    observability.add_argument("--out", default=None,
                               help="also write the report to this path")

    robustness = commands.add_parser(
        "bench-robustness",
        help="measure availability and latency under injected faults "
             "(killed lane, slow scorer, overload), report JSON")
    robustness.add_argument("--smoke", action="store_true",
                            help="tiny sub-second preset")
    robustness.add_argument("--requests", type=int, default=None)
    robustness.add_argument("--shards", type=int, default=None,
                            help="number of region shards (one lane is "
                                 "killed in the chaos scenario)")
    robustness.add_argument("--concurrency", type=int, default=None)
    robustness.add_argument("--k", type=int, default=None)
    robustness.add_argument("--seed", type=int, default=None)
    robustness.add_argument("--out", default=None,
                            help="also write the report to this path")

    parallel = commands.add_parser(
        "bench-parallel",
        help="measure the process-pool execution plane against inline "
             "serving (throughput scaling, dispatch overhead, ranking "
             "parity), report JSON")
    parallel.add_argument("--smoke", action="store_true",
                          help="tiny preset (seconds, not minutes)")
    parallel.add_argument("--requests", type=int, default=None)
    parallel.add_argument("--workers", default=None,
                          help="comma-separated worker counts to sweep, "
                               "e.g. 1,2,4")
    parallel.add_argument("--k", type=int, default=None)
    parallel.add_argument("--seed", type=int, default=None)
    parallel.add_argument("--out", default=None,
                          help="also write the report to this path")

    od = commands.add_parser(
        "od-matrix",
        help="batched origin-destination least-cost matrix")
    od.add_argument("--network", required=True)
    od.add_argument("--origins", required=True,
                    help="comma-separated origin vertex ids, e.g. 3,9,12")
    od.add_argument("--destinations", default=None,
                    help="comma-separated destination vertex ids "
                         "(default: the origins)")
    od.add_argument("--method", choices=("auto", "sweep", "ch"),
                    default="auto",
                    help="auto: CH per-pair queries for sparse sets when a "
                         "hierarchy is built, batched multi-source sweep "
                         "otherwise")
    od.add_argument("--chunk-size", type=int, default=None,
                    help="sweep rows per slab (default: sized for ~32 MB)")
    _add_analytics_flags(od)

    area = commands.add_parser(
        "service-area",
        help="batched isochrones: vertices/edges within cost budgets")
    area.add_argument("--network", required=True)
    area.add_argument("--sources", required=True,
                      help="comma-separated source vertex ids")
    area.add_argument("--budgets", required=True,
                      help="comma-separated cost budgets, e.g. 500,1500")
    area.add_argument("--reverse", action="store_true",
                      help="catchments instead of reach: everything that "
                           "can get *to* each source within the budget")
    _add_analytics_flags(area)

    freq = commands.add_parser(
        "route-frequencies",
        help="per-edge load over a workload of shortest-path pairs")
    freq.add_argument("--network", required=True)
    freq.add_argument("--pairs", default=None,
                      help="comma-separated origin:destination pairs, "
                           "e.g. 3:47,9:58")
    freq.add_argument("--pairs-file", default=None,
                      help="JSON workload: a list of [source, target] "
                           'pairs or {"source": ..., "target": ...} objects')
    freq.add_argument("--top", type=int, default=10,
                      help="print the N most-loaded edges (0 = all)")
    _add_analytics_flags(freq)

    analytics = commands.add_parser(
        "bench-analytics",
        help="measure the batch-analytics plane against per-query loops "
             "(OD matrix, service areas, route frequencies; element-wise "
             "parity), report JSON")
    analytics.add_argument("--smoke", action="store_true",
                           help="tiny preset (seconds, not minutes)")
    analytics.add_argument("--size", type=int, default=None,
                           help="grid side length (vertices = size^2)")
    analytics.add_argument("--origins", type=int, default=None,
                           help="OD matrix origin count")
    analytics.add_argument("--destinations", type=int, default=None,
                           help="OD matrix destination count")
    analytics.add_argument("--pairs", type=int, default=None,
                           help="route-frequency workload pair count")
    analytics.add_argument("--workers", default=None,
                           help="comma-separated pool worker counts to "
                                "sweep, e.g. 1,2,4")
    analytics.add_argument("--seed", type=int, default=None)
    analytics.add_argument("--out", default=None,
                           help="also write the report to this path")

    dump = commands.add_parser(
        "metrics-dump",
        help="read a SnapshotExporter JSONL timeline back out")
    dump.add_argument("--timeline", required=True,
                      help="JSONL timeline written via --metrics-out")
    dump.add_argument("--format", choices=("summary", "last", "prom"),
                      default="summary",
                      help="summary: first/last/delta per series; last: "
                           "the final snapshot's flat metrics as JSON; "
                           "prom: the final snapshot in the Prometheus "
                           "text format")

    return parser


def _add_resilience_flags(subparser: argparse.ArgumentParser) -> None:
    """Resilience-plane flags shared by ``serve`` and ``bench-serve``."""
    subparser.add_argument("--deadline-ms", type=float, default=None,
                           help="per-request deadline budget; expired "
                                "requests get a structured "
                                "deadline_exceeded error (default: no "
                                "deadline)")
    subparser.add_argument("--max-queue", type=int, default=0,
                           help="bound the engine admission queue; requests "
                                "beyond it are shed per --shed-policy "
                                "(0 = unbounded)")
    subparser.add_argument("--shed-policy", choices=SHED_POLICIES,
                           default="reject",
                           help="what happens to requests the full queue "
                                "cannot admit: reject with a retry-after "
                                "hint, or degrade to the shortest path")
    subparser.add_argument("--fault-spec", default=None,
                           help="arm deterministic fault injection for the "
                                "replay, e.g. 'score@1:error;"
                                "prepare:delay=20' (see docs/robustness.md)")
    subparser.add_argument("--fault-seed", type=int, default=0,
                           help="determinism seed for --fault-spec firing "
                                "draws")


def _add_analytics_flags(subparser: argparse.ArgumentParser) -> None:
    """Batch-context flags shared by the analytics subcommands."""
    subparser.add_argument("--cost", choices=("length", "travel_time"),
                           default="length",
                           help="edge cost the products optimise")
    subparser.add_argument("--workers", type=int, default=0,
                           help="fan tiles across a process pool with this "
                                "many workers (0 = run inline)")
    subparser.add_argument("--shards", type=int, default=0,
                           help="shard-aware tiling: partition the network "
                                "into this many region shards so each tile "
                                "stays shard-local (0 = plain tiling)")
    subparser.add_argument("--partition-method",
                           choices=sorted(PARTITION_METHODS),
                           default="voronoi",
                           help="partitioner behind --shards")
    subparser.add_argument("--seed", type=int, default=0,
                           help="partitioner determinism seed")
    subparser.add_argument("--json", action="store_true",
                           help="print the full product as JSON")


def _add_trace_flags(subparser: argparse.ArgumentParser) -> None:
    """Telemetry flags shared by ``serve`` and ``bench-serve``."""
    subparser.add_argument("--trace", action="store_true",
                           help="trace every request (shorthand for "
                                "--trace-sample 1.0) and report per-stage "
                                "latency breakdowns plus slow-request "
                                "exemplars")
    subparser.add_argument("--trace-sample", type=float, default=0.0,
                           help="fraction of requests to trace, in [0, 1] "
                                "(default 0: tracing off)")
    subparser.add_argument("--metrics-out", default=None,
                           help="append periodic metrics snapshots to this "
                                "JSONL timeline (readable via metrics-dump)")
    subparser.add_argument("--metrics-interval-s", type=float, default=0.25,
                           help="snapshot cadence for --metrics-out")


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def _cmd_build_network(args: argparse.Namespace) -> int:
    if args.kind == "grid":
        network = grid_network(args.rows, args.cols, seed=args.seed)
    elif args.kind == "ring":
        network = ring_radial_network(seed=args.seed)
    else:
        network = north_jutland_like(num_towns=args.towns, seed=args.seed)
    save_network_json(network, args.out)
    print(f"wrote {network} -> {args.out}")
    if args.osm_out:
        save_osm_xml(network, args.osm_out)
        print(f"wrote OSM XML -> {args.osm_out}")
    return 0


def _cmd_simulate_fleet(args: argparse.Namespace) -> int:
    network = load_network_json(args.network)
    config = FleetConfig(num_drivers=args.drivers, trips_per_driver=args.trips,
                         num_od_hotspots=args.hotspots)
    population = sample_population(config.num_drivers, rng=args.seed)
    generator = TrajectoryGenerator(network, population, config)
    trips = generator.generate(rng=args.seed + 1)
    TrajectoryDataset(network, trips).save(args.out)
    print(f"wrote {len(trips)} trips from {len(population)} drivers -> {args.out}")
    return 0


def _ranker_config(args: argparse.Namespace) -> RankerConfig:
    return RankerConfig(
        variant=Variant.from_name(args.variant),
        embedding_dim=args.embedding_dim,
        hidden_size=args.hidden_size,
        fc_hidden=max(args.hidden_size // 2, 4),
        training_data=TrainingDataConfig(
            strategy=Strategy.from_name(args.strategy), k=args.k),
        trainer=TrainerConfig(epochs=args.epochs,
                              patience=max(args.epochs // 4, 3)),
    )


def _cmd_train(args: argparse.Namespace) -> int:
    dataset = TrajectoryDataset.load(args.dataset)
    ranker = PathRankRanker(dataset.network, _ranker_config(args))
    ranker.fit(list(dataset), rng=args.seed)
    ranker.save(args.out)
    history = ranker.history
    print(f"trained {args.variant} for {history.epochs_run} epochs "
          f"(loss {history.train_loss[0]:.4f} -> {history.train_loss[-1]:.4f})")
    print(f"wrote model -> {args.out}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    dataset = TrajectoryDataset.load(args.dataset)
    split = dataset.split(train_fraction=1.0 - args.test_fraction,
                          validation_fraction=0.0, rng=args.seed)
    ranker = PathRankRanker(dataset.network).load(args.model)
    queries = generate_queries(
        split.test,
        TrainingDataConfig(strategy=Strategy.from_name(args.strategy), k=args.k),
    )
    metrics = evaluate_scorer(ranker, queries)
    if args.json:
        print(json.dumps({
            "mae": metrics.mae,
            "mare": metrics.mare,
            "tau": metrics.tau,
            "rho": metrics.rho,
            "queries": metrics.num_queries,
        }))
    else:
        print(metrics)
    return 0


def _cmd_rank(args: argparse.Namespace) -> int:
    dataset = TrajectoryDataset.load(args.dataset)
    ranker = PathRankRanker(dataset.network).load(args.model)
    if not dataset.network.has_vertex(args.source) \
            or not dataset.network.has_vertex(args.target):
        print("error: source/target vertex not in the network", file=sys.stderr)
        return 2
    results = ranker.rank(args.source, args.target)
    if not results:
        print("no candidate paths found")
        return 1
    for position, (path, score) in enumerate(results, start=1):
        print(f"#{position} score={score:.4f} length={path.length:.0f}m "
              f"time={path.travel_time:.0f}s vertices={path.num_vertices}")
    return 0


def _parse_split(text: str | None) -> dict[str, float] | None:
    """Parse an A/B split flag: ``'v0001=3,v0002=1'`` -> weight map."""
    if text is None:
        return None
    split: dict[str, float] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        version, _, weight = part.partition("=")
        if not version or not weight:
            raise ServingError(
                f"malformed --split entry {part!r}; expected version=weight")
        try:
            split[version] = float(weight)
        except ValueError:
            raise ServingError(
                f"--split weight for {version!r} must be a number, "
                f"got {weight!r}") from None
    if not split:
        raise ServingError("--split named no versions")
    return split


def _build_service(args: argparse.Namespace):
    """Shared serve / bench-serve bootstrap: network + registry + service."""
    network = load_network_json(args.network)
    model_path = FilePath(args.model)
    if not model_path.exists():
        # Check before ModelRegistry mkdirs a typo'd parent directory.
        raise ServingError(f"no such model checkpoint: {model_path}")
    registry = ModelRegistry(model_path.parent, network)
    split = _parse_split(getattr(args, "split", None))
    if split is not None:
        for version in split:
            if not registry.has_version(version):
                known = ", ".join(registry.versions()) or "none"
                raise ServingError(
                    f"--split names unpublished version {version!r} "
                    f"(published: {known})")
    resilience = ResilienceConfig(
        deadline_ms=getattr(args, "deadline_ms", None),
        max_queue=getattr(args, "max_queue", 0),
        shed_policy=getattr(args, "shed_policy", "reject"),
    )
    config = ServingConfig(
        candidates=TrainingDataConfig(
            strategy=Strategy.from_name(args.strategy), k=args.k),
        candidate_cache_size=args.cache_size,
        max_batch_size=max(args.batch_size * args.k, 1),
        fallback_to_shortest=not getattr(args, "no_fallback", False),
        traffic_split=split,
        concurrency=max(getattr(args, "concurrency", 0), 1),
        flush_deadline_ms=getattr(args, "flush_deadline_ms", 2.0),
        trace_sample=(1.0 if getattr(args, "trace", False)
                      else getattr(args, "trace_sample", 0.0)),
        resilience=resilience,
        execution=getattr(args, "execution", "inline"),
        workers=getattr(args, "workers", 2),
    )
    shards = getattr(args, "shards", 0)
    if shards and shards > 1:
        # Shard plane behind one checkpoint: partition the network and
        # back every shard with the shared registry, so the single
        # published model serves all regions while caches and scoring
        # batches stay shard-local.
        partition = partition_network(
            network, shards,
            method=getattr(args, "partition_method", "voronoi"),
            rng=getattr(args, "seed", 0) or 0)
        if partition.num_shards != shards:
            # The grid partitioner realises occupied cells, not the
            # exact request; say so rather than silently serving a
            # different shard count than the operator asked for.
            print(f"note: --shards {shards} realised as "
                  f"{partition.num_shards} region shards "
                  f"(sizes {[s.size for s in partition.shards]})",
                  file=sys.stderr)
        sharded = ShardedRegistry.shared(
            registry, partition,
            candidate_cache_size=config.candidate_cache_size,
            score_cache_size=config.score_cache_size,
            score_cache_quotas=config.resolved_score_quotas())
        service = RankingService(network, sharded, config)
    else:
        service = RankingService(network, registry, config)
    service.activate(model_path.stem)
    return service


def _load_queries(path: str) -> list[RankRequest]:
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict):
        payload = payload.get("queries")
    if not isinstance(payload, list) or not payload:
        raise DataError(f"{path} must hold a non-empty JSON list of queries")
    requests = []
    for position, entry in enumerate(payload):
        if not isinstance(entry, dict) or "source" not in entry \
                or "target" not in entry:
            raise DataError(
                f"query #{position} must be an object with source/target"
            )
        requests.append(RankRequest(
            source=int(entry["source"]), target=int(entry["target"]),
            k=int(entry["k"]) if "k" in entry else None,
            request_id=position,
        ))
    return requests


def _timeline(service, args: argparse.Namespace):
    """A running :class:`SnapshotExporter` for ``--metrics-out``, or a
    no-op context when the flag is absent."""
    if getattr(args, "metrics_out", None) is None:
        return nullcontext(None)
    return SnapshotExporter(service.metrics, args.metrics_out,
                            interval_s=args.metrics_interval_s)


def _print_trace_breakdown(trace: dict) -> None:
    """Human-readable per-stage latencies + slow-request exemplars."""
    print(f"trace: sample={trace['sample']} "
          f"finished={trace['finished']} requests")
    for name, summary in trace["stages"].items():
        print(f"  stage {name:<12} p50 {summary['p50']:.3f} ms  "
              f"p95 {summary['p95']:.3f} ms  "
              f"(n={int(summary['count'])})")
    for record in trace["slow_requests"][:3]:
        label = record.get("request", record.get("label", "?"))
        spans = ", ".join(
            f"{span['name']} {span['duration_ms']:.2f}ms"
            for span in record.get("spans", []))
        print(f"  slow {label}: {record['latency_ms']:.2f} ms [{spans}]")


def _cmd_serve(args: argparse.Namespace) -> int:
    service = _build_service(args)
    requests = _load_queries(args.queries_file)
    if args.fault_spec is not None:
        service.arm_faults(args.fault_spec, seed=args.fault_seed)
    try:
        if args.concurrency > 0:
            # Concurrent front door: the engine re-batches by its own
            # deadline/size policy; responses stay in request order.
            with ServingEngine(
                    service, concurrency=args.concurrency,
                    flush_deadline_ms=args.flush_deadline_ms) as engine:
                with _timeline(service, args):
                    responses = engine.rank_batch(requests)
                stats = engine.stats()
        else:
            responses = []
            with _timeline(service, args):
                for start in range(0, len(requests), args.batch_size):
                    responses.extend(
                        service.rank_batch(
                            requests[start:start + args.batch_size]))
            stats = service.stats()
    finally:
        if args.fault_spec is not None:
            service.disarm_faults()
        service.close()
    if args.json:
        print(json.dumps({
            "responses": [
                {
                    "source": r.request.source,
                    "target": r.request.target,
                    "served_by": r.served_by,
                    "model_version": r.model_version,
                    "candidate_cache_hit": r.candidate_cache_hit,
                    "latency_ms": r.latency_ms,
                    "top_score": r.top.score if r.top else None,
                    "top_vertices": list(r.top.path.vertices) if r.top else None,
                    "error": r.error,
                }
                for r in responses
            ],
            "stats": stats,
        }))
        return 0 if all(r.ok for r in responses) else 1
    for r in responses:
        if not r.ok:
            print(f"{r.request.source}->{r.request.target}: ERROR {r.error}")
            continue
        top = r.top
        print(f"{r.request.source}->{r.request.target}: "
              f"{len(r.results)} candidates via {r.served_by}, "
              f"top score={top.score:.4f} length={top.path.length:.0f}m "
              f"({'cache hit' if r.candidate_cache_hit else 'cold'}, "
              f"{r.latency_ms:.2f} ms)")
    print(f"served {stats['counters']['requests']} requests | "
          f"candidate-cache hit rate "
          f"{stats['candidate_cache']['hit_rate']:.2f} | "
          f"p50 {stats['latency']['p50_ms']:.2f} ms, "
          f"p95 {stats['latency']['p95_ms']:.2f} ms")
    if "trace" in stats:
        _print_trace_breakdown(stats["trace"])
    return 0 if all(r.ok for r in responses) else 1


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    if args.qps is not None and args.concurrency <= 0:
        raise ServingError("--qps (open-loop mode) requires --concurrency")
    service = _build_service(args)
    workload_config = WorkloadConfig(
        num_requests=args.requests, num_hotspots=args.hotspots,
        zipf_exponent=args.zipf, arrival_rate_qps=args.qps,
        cross_shard_fraction=args.cross_fraction)
    # A sharded service gets the multi-region mix (per-shard hotspot
    # pools, cross-shard corridor traffic); unsharded keeps the classic
    # single-pool stream.
    partition = service.sharded.partition if service.sharded else None
    try:
        if args.concurrency > 0:
            with ServingEngine(
                    service, concurrency=args.concurrency,
                    flush_deadline_ms=args.flush_deadline_ms) as engine:
                if args.qps is not None:
                    timed = generate_timed_workload(service.network,
                                                    workload_config,
                                                    rng=args.seed,
                                                    partition=partition)
                    summary = replay_open_loop(
                        engine, timed, metrics_out=args.metrics_out,
                        metrics_interval_s=args.metrics_interval_s,
                        fault_spec=args.fault_spec,
                        fault_seed=args.fault_seed,
                        wait_timeout_s=args.wait_timeout_s)
                else:
                    workload = generate_workload(service.network,
                                                 workload_config,
                                                 rng=args.seed,
                                                 partition=partition)
                    summary = run_engine_workload(
                        engine, workload, concurrency=args.concurrency,
                        metrics_out=args.metrics_out,
                        metrics_interval_s=args.metrics_interval_s,
                        fault_spec=args.fault_spec,
                        fault_seed=args.fault_seed,
                        wait_timeout_s=args.wait_timeout_s)
                summary["stats"] = engine.stats()
        else:
            workload = generate_workload(service.network, workload_config,
                                         rng=args.seed, partition=partition)
            summary = run_workload(service, workload,
                                   batch_size=args.batch_size,
                                   metrics_out=args.metrics_out,
                                   metrics_interval_s=args.metrics_interval_s,
                                   fault_spec=args.fault_spec,
                                   fault_seed=args.fault_seed)
            if service.tracer.enabled:
                summary["trace"] = service.tracer.as_dict()
    finally:
        service.close()
    print(json.dumps(summary, indent=2))
    return 0


def _cmd_bench_routing(args: argparse.Namespace) -> int:
    config = apply_overrides(smoke_config() if args.smoke else full_config(),
                             sizes=args.sizes, k=args.k, seed=args.seed)
    report = run_routing_benchmark(config)
    if args.out:
        write_report(report, args.out)
    print(json.dumps(report, indent=2))
    return 0


def _cmd_bench_ch(args: argparse.Namespace) -> int:
    config = ch_bench.apply_overrides(
        ch_bench.smoke_config() if args.smoke else ch_bench.full_config(),
        sizes=args.sizes, k=args.k, seed=args.seed,
        baseline=args.backend, shards=args.shards)
    report = ch_bench.run_ch_benchmark(config)
    if args.out:
        ch_bench.write_report(report, args.out)
    print(json.dumps(report, indent=2))
    return 0


def _cmd_bench_scoring(args: argparse.Namespace) -> int:
    config = scoring_bench.apply_overrides(
        scoring_bench.smoke_config() if args.smoke
        else scoring_bench.full_config(),
        k=args.k, queries=args.queries, seed=args.seed)
    report = scoring_bench.run_scoring_benchmark(config)
    if args.out:
        scoring_bench.write_report(report, args.out)
    print(json.dumps(report, indent=2))
    return 0


def _cmd_bench_sharding(args: argparse.Namespace) -> int:
    config = sharding_bench.apply_overrides(
        sharding_bench.smoke_config() if args.smoke
        else sharding_bench.full_config(),
        requests=args.requests, shards=args.shards,
        cross_fraction=args.cross_fraction, concurrency=args.concurrency,
        k=args.k, seed=args.seed)
    report = sharding_bench.run_sharding_benchmark(config)
    if args.out:
        sharding_bench.write_report(report, args.out)
    print(json.dumps(report, indent=2))
    return 0


def _cmd_bench_observability(args: argparse.Namespace) -> int:
    config = observability_bench.apply_overrides(
        observability_bench.smoke_config() if args.smoke
        else observability_bench.full_config(),
        requests=args.requests, hotspots=args.hotspots,
        concurrency=args.concurrency, k=args.k, seed=args.seed)
    report = observability_bench.run_observability_benchmark(config)
    if args.out:
        observability_bench.write_report(report, args.out)
    print(json.dumps(report, indent=2))
    return 0


def _cmd_bench_robustness(args: argparse.Namespace) -> int:
    config = robustness_bench.apply_overrides(
        robustness_bench.smoke_config() if args.smoke
        else robustness_bench.full_config(),
        requests=args.requests, shards=args.shards,
        concurrency=args.concurrency, k=args.k, seed=args.seed)
    report = robustness_bench.run_robustness_benchmark(config)
    if args.out:
        robustness_bench.write_report(report, args.out)
    print(json.dumps(report, indent=2))
    return 0


def _cmd_bench_parallel(args: argparse.Namespace) -> int:
    config = parallel_bench.apply_overrides(
        parallel_bench.smoke_config() if args.smoke
        else parallel_bench.full_config(),
        requests=args.requests, workers=args.workers,
        k=args.k, seed=args.seed)
    report = parallel_bench.run_parallel_benchmark(config)
    if args.out:
        parallel_bench.write_report(report, args.out)
    print(json.dumps(report, indent=2))
    return 0


def _parse_id_list(text: str, flag: str) -> list[int]:
    try:
        ids = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise DataError(
            f"{flag} must be comma-separated vertex ids, got {text!r}"
        ) from None
    if not ids:
        raise DataError(f"{flag} named no vertices")
    return ids


def _parse_budget_list(text: str) -> list[float]:
    try:
        budgets = [float(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise DataError(
            f"--budgets must be comma-separated numbers, got {text!r}"
        ) from None
    if not budgets:
        raise DataError("--budgets named no budgets")
    return budgets


def _parse_pair_workload(args: argparse.Namespace) -> list[tuple[int, int]]:
    """The route-frequency workload from ``--pairs`` or ``--pairs-file``."""
    if args.pairs_file is not None:
        with open(args.pairs_file, encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, list) or not payload:
            raise DataError(
                f"{args.pairs_file} must hold a non-empty JSON list of pairs")
        pairs = []
        for position, entry in enumerate(payload):
            if isinstance(entry, dict):
                if "source" not in entry or "target" not in entry:
                    raise DataError(f"pair #{position} must have "
                                    "source/target")
                pairs.append((int(entry["source"]), int(entry["target"])))
            elif isinstance(entry, (list, tuple)) and len(entry) == 2:
                pairs.append((int(entry[0]), int(entry[1])))
            else:
                raise DataError(f"pair #{position} must be [source, target] "
                                "or an object with source/target")
        return pairs
    if args.pairs is None:
        raise DataError("route-frequencies needs --pairs or --pairs-file")
    pairs = []
    for part in args.pairs.split(","):
        part = part.strip()
        if not part:
            continue
        origin, sep, destination = part.partition(":")
        if not sep or not origin or not destination:
            raise DataError(f"malformed --pairs entry {part!r}; expected "
                            "origin:destination")
        try:
            pairs.append((int(origin), int(destination)))
        except ValueError:
            raise DataError(
                f"--pairs entry {part!r} must name two vertex ids") from None
    if not pairs:
        raise DataError("--pairs named no pairs")
    return pairs


def _analytics_context(args: argparse.Namespace, network):
    """The (plane, partition) batch context behind --workers/--shards."""
    partition = None
    if args.shards and args.shards > 1:
        partition = partition_network(network, args.shards,
                                      method=args.partition_method,
                                      rng=args.seed)
    plane = None
    if args.workers and args.workers > 0:
        plane = ExecutionPlane(network, workers=args.workers)
    return plane, partition


def _cmd_od_matrix(args: argparse.Namespace) -> int:
    network = load_network_json(args.network)
    origins = _parse_id_list(args.origins, "--origins")
    destinations = (None if args.destinations is None
                    else _parse_id_list(args.destinations, "--destinations"))
    plane, partition = _analytics_context(args, network)
    try:
        matrix = od_cost_matrix(network, origins, destinations,
                                cost=cost_from_name(args.cost),
                                method=args.method,
                                chunk_size=args.chunk_size,
                                plane=plane, partition=partition)
    finally:
        if plane is not None:
            plane.close()
    if args.json:
        print(json.dumps(matrix.as_dict()))
        return 0
    for row, origin in enumerate(matrix.origins):
        cells = " ".join(
            f"{destination}={'inf' if c == float('inf') else f'{c:.1f}'}"
            for destination, c in zip(matrix.destinations, matrix.costs[row]))
        print(f"origin {origin}: {cells}")
    print(f"{matrix.num_pairs} pairs via {matrix.method} "
          f"({matrix.sweeps} sweeps, "
          f"{matrix.num_disconnected} disconnected)")
    return 0


def _cmd_service_area(args: argparse.Namespace) -> int:
    network = load_network_json(args.network)
    sources = _parse_id_list(args.sources, "--sources")
    budgets = _parse_budget_list(args.budgets)
    plane, partition = _analytics_context(args, network)
    try:
        areas = service_area(network, sources, budgets,
                             cost=cost_from_name(args.cost),
                             reverse=args.reverse,
                             plane=plane, partition=partition)
    finally:
        if plane is not None:
            plane.close()
    if args.json:
        print(json.dumps([area.as_dict() for area in areas]))
        return 0
    for area in areas:
        kind = "catchment" if area.reverse else "reach"
        print(f"source {area.source} budget {area.budget:g} ({kind}): "
              f"{area.num_vertices} vertices, {area.num_edges} edges")
    return 0


def _cmd_route_frequencies(args: argparse.Namespace) -> int:
    network = load_network_json(args.network)
    pairs = _parse_pair_workload(args)
    plane, partition = _analytics_context(args, network)
    try:
        frequencies = route_frequencies(network, pairs,
                                        cost=cost_from_name(args.cost),
                                        plane=plane, partition=partition)
    finally:
        if plane is not None:
            plane.close()
    if args.json:
        print(json.dumps(frequencies.as_dict()))
        return 0
    loaded = sorted(frequencies.items(), key=lambda item: -item[1])
    shown = loaded if args.top <= 0 else loaded[:args.top]
    for (u, v), load in shown:
        print(f"edge {u}->{v}: {load:g}")
    if len(loaded) > len(shown):
        print(f"... {len(loaded) - len(shown)} more loaded edges")
    print(f"{frequencies.num_pairs} pairs over {len(loaded)} loaded edges "
          f"({frequencies.unreachable_pairs} unreachable)")
    return 0


def _cmd_bench_analytics(args: argparse.Namespace) -> int:
    config = analytics_bench.apply_overrides(
        analytics_bench.smoke_config() if args.smoke
        else analytics_bench.full_config(),
        size=args.size, origins=args.origins,
        destinations=args.destinations, pairs=args.pairs,
        workers=args.workers, seed=args.seed)
    report = analytics_bench.run_analytics_benchmark(config)
    if args.out:
        analytics_bench.write_report(report, args.out)
    print(json.dumps(report, indent=2))
    return 0


def _cmd_metrics_dump(args: argparse.Namespace) -> int:
    snapshots = load_timeline(args.timeline)
    if not snapshots:
        print(f"error: {args.timeline} holds no metrics snapshots",
              file=sys.stderr)
        return 2
    if args.format == "summary":
        print(json.dumps(summarise_timeline(snapshots), indent=2))
    elif args.format == "last":
        print(json.dumps(snapshots[-1]["metrics"], indent=2, sort_keys=True))
    else:
        for line in prometheus_snapshot_lines(snapshots[-1]["metrics"]):
            print(line)
    return 0


_COMMANDS = {
    "build-network": _cmd_build_network,
    "simulate-fleet": _cmd_simulate_fleet,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "rank": _cmd_rank,
    "serve": _cmd_serve,
    "bench-serve": _cmd_bench_serve,
    "bench-routing": _cmd_bench_routing,
    "bench-ch": _cmd_bench_ch,
    "bench-scoring": _cmd_bench_scoring,
    "bench-sharding": _cmd_bench_sharding,
    "bench-observability": _cmd_bench_observability,
    "bench-robustness": _cmd_bench_robustness,
    "bench-parallel": _cmd_bench_parallel,
    "od-matrix": _cmd_od_matrix,
    "service-area": _cmd_service_area,
    "route-frequencies": _cmd_route_frequencies,
    "bench-analytics": _cmd_bench_analytics,
    "metrics-dump": _cmd_metrics_dump,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, OSError, ValueError) as exc:
        # Missing model/network files, malformed inputs, and out-of-range
        # parameters should exit with a clean one-line diagnostic, not a
        # traceback.  (json.JSONDecodeError is a ValueError.)
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
