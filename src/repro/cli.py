"""Command-line interface.

Exposes the full pipeline as subcommands so the library is usable
without writing Python::

    python -m repro.cli build-network --kind region --towns 4 --seed 11 \
        --out /tmp/net.json
    python -m repro.cli simulate-fleet --network /tmp/net.json \
        --drivers 20 --trips 8 --seed 0 --out /tmp/trips.json
    python -m repro.cli train --dataset /tmp/trips.json --variant PR-A2 \
        --embedding-dim 32 --epochs 20 --out /tmp/model.npz
    python -m repro.cli evaluate --dataset /tmp/trips.json --model /tmp/model.npz
    python -m repro.cli rank --dataset /tmp/trips.json --model /tmp/model.npz \
        --source 3 --target 47
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.core.ranker import PathRankRanker, RankerConfig
from repro.core.trainer import TrainerConfig
from repro.core.variants import Variant
from repro.graph.builders import grid_network, north_jutland_like, ring_radial_network
from repro.graph.io import load_network_json, save_network_json
from repro.graph.osm import save_osm_xml
from repro.ranking.evaluation import evaluate_scorer
from repro.ranking.training_data import Strategy, TrainingDataConfig, generate_queries
from repro.trajectories.dataset import TrajectoryDataset
from repro.trajectories.drivers import sample_population
from repro.trajectories.generator import FleetConfig, TrajectoryGenerator

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PathRank: learning to rank paths in spatial networks",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build-network", help="generate a road network")
    build.add_argument("--kind", choices=("grid", "ring", "region"),
                       default="region")
    build.add_argument("--rows", type=int, default=8)
    build.add_argument("--cols", type=int, default=8)
    build.add_argument("--towns", type=int, default=4)
    build.add_argument("--seed", type=int, default=11)
    build.add_argument("--out", required=True)
    build.add_argument("--osm-out", default=None,
                       help="optionally also write OSM XML")

    fleet = commands.add_parser("simulate-fleet", help="simulate trajectories")
    fleet.add_argument("--network", required=True)
    fleet.add_argument("--drivers", type=int, default=20)
    fleet.add_argument("--trips", type=int, default=8)
    fleet.add_argument("--hotspots", type=int, default=40)
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--out", required=True)

    train = commands.add_parser("train", help="train PathRank on a dataset")
    train.add_argument("--dataset", required=True)
    train.add_argument("--variant", choices=[v.value for v in Variant],
                       default="PR-A2")
    train.add_argument("--strategy", choices=[s.value for s in Strategy],
                       default="D-TkDI")
    train.add_argument("--k", type=int, default=5)
    train.add_argument("--embedding-dim", type=int, default=32)
    train.add_argument("--hidden-size", type=int, default=32)
    train.add_argument("--epochs", type=int, default=25)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--out", required=True)

    evaluate = commands.add_parser("evaluate", help="evaluate a trained model")
    evaluate.add_argument("--dataset", required=True)
    evaluate.add_argument("--model", required=True)
    evaluate.add_argument("--strategy", choices=[s.value for s in Strategy],
                          default="D-TkDI")
    evaluate.add_argument("--k", type=int, default=5)
    evaluate.add_argument("--test-fraction", type=float, default=0.25)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument("--json", action="store_true",
                          help="print metrics as JSON")

    rank = commands.add_parser("rank", help="rank candidate paths for a query")
    rank.add_argument("--dataset", required=True)
    rank.add_argument("--model", required=True)
    rank.add_argument("--source", type=int, required=True)
    rank.add_argument("--target", type=int, required=True)
    rank.add_argument("--k", type=int, default=5)

    return parser


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def _cmd_build_network(args: argparse.Namespace) -> int:
    if args.kind == "grid":
        network = grid_network(args.rows, args.cols, seed=args.seed)
    elif args.kind == "ring":
        network = ring_radial_network(seed=args.seed)
    else:
        network = north_jutland_like(num_towns=args.towns, seed=args.seed)
    save_network_json(network, args.out)
    print(f"wrote {network} -> {args.out}")
    if args.osm_out:
        save_osm_xml(network, args.osm_out)
        print(f"wrote OSM XML -> {args.osm_out}")
    return 0


def _cmd_simulate_fleet(args: argparse.Namespace) -> int:
    network = load_network_json(args.network)
    config = FleetConfig(num_drivers=args.drivers, trips_per_driver=args.trips,
                         num_od_hotspots=args.hotspots)
    population = sample_population(config.num_drivers, rng=args.seed)
    generator = TrajectoryGenerator(network, population, config)
    trips = generator.generate(rng=args.seed + 1)
    TrajectoryDataset(network, trips).save(args.out)
    print(f"wrote {len(trips)} trips from {len(population)} drivers -> {args.out}")
    return 0


def _ranker_config(args: argparse.Namespace) -> RankerConfig:
    return RankerConfig(
        variant=Variant.from_name(args.variant),
        embedding_dim=args.embedding_dim,
        hidden_size=args.hidden_size,
        fc_hidden=max(args.hidden_size // 2, 4),
        training_data=TrainingDataConfig(
            strategy=Strategy.from_name(args.strategy), k=args.k),
        trainer=TrainerConfig(epochs=args.epochs,
                              patience=max(args.epochs // 4, 3)),
    )


def _cmd_train(args: argparse.Namespace) -> int:
    dataset = TrajectoryDataset.load(args.dataset)
    ranker = PathRankRanker(dataset.network, _ranker_config(args))
    ranker.fit(list(dataset), rng=args.seed)
    ranker.save(args.out)
    history = ranker.history
    print(f"trained {args.variant} for {history.epochs_run} epochs "
          f"(loss {history.train_loss[0]:.4f} -> {history.train_loss[-1]:.4f})")
    print(f"wrote model -> {args.out}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    dataset = TrajectoryDataset.load(args.dataset)
    split = dataset.split(train_fraction=1.0 - args.test_fraction,
                          validation_fraction=0.0, rng=args.seed)
    ranker = PathRankRanker(dataset.network).load(args.model)
    queries = generate_queries(
        split.test,
        TrainingDataConfig(strategy=Strategy.from_name(args.strategy), k=args.k),
    )
    metrics = evaluate_scorer(ranker, queries)
    if args.json:
        print(json.dumps({
            "mae": metrics.mae,
            "mare": metrics.mare,
            "tau": metrics.tau,
            "rho": metrics.rho,
            "queries": metrics.num_queries,
        }))
    else:
        print(metrics)
    return 0


def _cmd_rank(args: argparse.Namespace) -> int:
    dataset = TrajectoryDataset.load(args.dataset)
    ranker = PathRankRanker(dataset.network).load(args.model)
    if not dataset.network.has_vertex(args.source) \
            or not dataset.network.has_vertex(args.target):
        print("error: source/target vertex not in the network", file=sys.stderr)
        return 2
    results = ranker.rank(args.source, args.target)
    if not results:
        print("no candidate paths found")
        return 1
    for position, (path, score) in enumerate(results, start=1):
        print(f"#{position} score={score:.4f} length={path.length:.0f}m "
              f"time={path.travel_time:.0f}s vertices={path.num_vertices}")
    return 0


_COMMANDS = {
    "build-network": _cmd_build_network,
    "simulate-fleet": _cmd_simulate_fleet,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "rank": _cmd_rank,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
