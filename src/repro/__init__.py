"""PathRank: learning to rank paths in spatial networks.

Reproduction of Sean Bin Yang and Bin Yang, *Learning to Rank Paths in
Spatial Networks* (ICDE 2020).  The package is organised as the paper's
system diagram, bottom-up:

* :mod:`repro.nn` — numpy autodiff substrate (no PyTorch available);
* :mod:`repro.graph` — spatial road networks, shortest paths, top-k and
  diversified top-k path enumeration, path similarity;
* :mod:`repro.embedding` — node2vec spatial-network embedding;
* :mod:`repro.trajectories` — synthetic GPS fleets, map matching;
* :mod:`repro.ranking` — training-data generation (TkDI / D-TkDI),
  ranking metrics, non-learned baselines;
* :mod:`repro.core` — the PathRank model (PR-A1 / PR-A2 / multi-task),
  trainer, and the user-facing ranking API;
* :mod:`repro.obs` — the stdlib-only telemetry plane (metrics
  registry, per-request tracing, JSONL/Prometheus export) the serving
  layer publishes into;
* :mod:`repro.experiments` — configs and harnesses regenerating every
  table and figure of the paper's evaluation.
"""

from repro.errors import ReproError
from repro.rng import DEFAULT_SEED, make_rng

__version__ = "1.0.0"

__all__ = ["ReproError", "DEFAULT_SEED", "make_rng", "__version__"]
