"""Listwise ranking quality measures: NDCG@k, precision@k, MRR, regret.

The paper reports regression error and rank correlation; a routing
service additionally cares about *top-of-list* quality — did the best
candidate end up first?  These measures quantify that and feed the
extension benchmarks.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

__all__ = [
    "dcg_at_k",
    "ndcg_at_k",
    "precision_at_1",
    "reciprocal_rank",
    "top1_regret",
    "ListwiseMetrics",
    "evaluate_listwise",
]


def _validate(y_true: Sequence[float], y_pred: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    true = np.asarray(y_true, dtype=float)
    pred = np.asarray(y_pred, dtype=float)
    if true.shape != pred.shape or true.ndim != 1 or true.size == 0:
        raise ValueError(
            f"inputs must be non-empty 1-D and equal length, got {true.shape} "
            f"vs {pred.shape}"
        )
    return true, pred


def dcg_at_k(relevances: Sequence[float], k: int) -> float:
    """Discounted cumulative gain of a relevance list, truncated at k."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    values = np.asarray(relevances, dtype=float)[:k]
    discounts = 1.0 / np.log2(np.arange(2, values.size + 2))
    return float(np.sum(values * discounts))


def ndcg_at_k(y_true: Sequence[float], y_pred: Sequence[float], k: int) -> float:
    """Normalised DCG of the predicted ordering against the ideal one.

    Returns 1.0 for a perfect ordering; ``nan`` when every true score is
    zero (no ideal ordering exists).
    """
    true, pred = _validate(y_true, y_pred)
    order = np.argsort(-pred, kind="stable")
    ideal = np.sort(true)[::-1]
    ideal_dcg = dcg_at_k(ideal, k)
    if ideal_dcg == 0.0:
        return math.nan
    return dcg_at_k(true[order], k) / ideal_dcg


def precision_at_1(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """1.0 when the top-predicted candidate has the maximal true score
    (ties on the true maximum count as correct)."""
    true, pred = _validate(y_true, y_pred)
    top = int(np.argmax(pred))
    return 1.0 if true[top] == true.max() else 0.0


def reciprocal_rank(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """1 / (position of the truly-best candidate in the predicted order)."""
    true, pred = _validate(y_true, y_pred)
    order = np.argsort(-pred, kind="stable")
    best = true.max()
    for position, index in enumerate(order, start=1):
        if true[index] == best:
            return 1.0 / position
    raise AssertionError("unreachable: some candidate attains the maximum")


def top1_regret(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """True-score loss from showing the predicted top candidate first."""
    true, pred = _validate(y_true, y_pred)
    return float(true.max() - true[int(np.argmax(pred))])


class ListwiseMetrics:
    """Aggregated listwise quality over query groups."""

    def __init__(self, ndcg3: float, p_at_1: float, mrr: float, regret: float,
                 num_queries: int) -> None:
        self.ndcg3 = ndcg3
        self.precision_at_1 = p_at_1
        self.mrr = mrr
        self.top1_regret = regret
        self.num_queries = num_queries

    def __repr__(self) -> str:
        return (f"ListwiseMetrics(nDCG@3={self.ndcg3:.4f}, "
                f"P@1={self.precision_at_1:.4f}, MRR={self.mrr:.4f}, "
                f"regret={self.top1_regret:.4f}, n={self.num_queries})")


def evaluate_listwise(
    grouped_true: Sequence[Sequence[float]],
    grouped_pred: Sequence[Sequence[float]],
) -> ListwiseMetrics:
    """Aggregate listwise measures over per-query groups.

    Queries with all-zero true scores contribute to P@1/MRR/regret
    (trivially satisfied) but are skipped for nDCG, where the ideal
    ordering is undefined.
    """
    if len(grouped_true) != len(grouped_pred) or not grouped_true:
        raise ValueError("grouped inputs must be non-empty and equal length")
    ndcgs: list[float] = []
    precisions: list[float] = []
    rranks: list[float] = []
    regrets: list[float] = []
    for true, pred in zip(grouped_true, grouped_pred):
        ndcg = ndcg_at_k(true, pred, k=3)
        if not math.isnan(ndcg):
            ndcgs.append(ndcg)
        precisions.append(precision_at_1(true, pred))
        rranks.append(reciprocal_rank(true, pred))
        regrets.append(top1_regret(true, pred))
    if not ndcgs:
        raise ValueError("nDCG undefined for every query (all-zero scores)")
    return ListwiseMetrics(
        ndcg3=float(np.mean(ndcgs)),
        p_at_1=float(np.mean(precisions)),
        mrr=float(np.mean(rranks)),
        regret=float(np.mean(regrets)),
        num_queries=len(grouped_true),
    )
