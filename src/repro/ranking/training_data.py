"""Training-data generation: the TkDI and D-TkDI strategies.

For every map-matched trajectory path ``P_T`` (source ``s``, destination
``d``) the paper builds a compact labelled path set:

* **TkDI** — the top-``k`` shortest paths from ``s`` to ``d``;
* **D-TkDI** — the *diversified* top-``k`` shortest paths (pairwise
  similarity below a threshold ξ).

Each candidate ``P`` is labelled with ``WeightedJaccard(P, P_T)`` — its
ground-truth ranking score.  A trajectory whose candidate generation
fails (e.g. the network cannot produce ``k`` diverse paths) still yields
a query with however many candidates were found.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import DataError
from repro.graph.diversified import diversified_top_k
from repro.graph.ksp import yen_k_shortest_paths
from repro.graph.path import Path
from repro.graph.shortest_path import CostFunction, length_cost
from repro.graph.similarity import SimilarityFunction, weighted_jaccard
from repro.trajectories.generator import Trip

__all__ = ["Strategy", "RankedCandidate", "RankingQuery", "TrainingDataConfig",
           "generate_queries"]


class Strategy(enum.Enum):
    """Candidate-generation strategy (the rows of Tables 1 and 2)."""

    TKDI = "TkDI"
    D_TKDI = "D-TkDI"

    @classmethod
    def from_name(cls, name: str) -> "Strategy":
        for member in cls:
            if member.value.lower() == name.lower():
                return member
        known = ", ".join(m.value for m in cls)
        raise KeyError(f"unknown strategy {name!r}; known: {known}")


@dataclass(frozen=True)
class RankedCandidate:
    """One candidate path with its ground-truth ranking score."""

    path: Path
    score: float
    generation_rank: int  # position in the enumeration order (0 = shortest)

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0 + 1e-9:
            raise DataError(f"score must be in [0, 1], got {self.score}")


@dataclass(frozen=True)
class RankingQuery:
    """One training/evaluation unit: a trajectory and its candidates."""

    trip_id: int
    driver_id: int
    trajectory_path: Path
    candidates: tuple[RankedCandidate, ...]

    @property
    def source(self) -> int:
        return self.trajectory_path.source

    @property
    def target(self) -> int:
        return self.trajectory_path.target

    def __len__(self) -> int:
        return len(self.candidates)

    def paths(self) -> list[Path]:
        return [candidate.path for candidate in self.candidates]

    def scores(self) -> list[float]:
        return [candidate.score for candidate in self.candidates]

    def best_candidate(self) -> RankedCandidate:
        """The candidate most similar to the driver's actual path."""
        return max(self.candidates, key=lambda c: c.score)


@dataclass(frozen=True)
class TrainingDataConfig:
    """Parameters of candidate generation.

    ``k`` is the candidate-set size; ``diversity_threshold`` (ξ) only
    applies to D-TkDI; ``examine_limit`` bounds the Yen enumeration the
    diversified strategy may walk per query.
    """

    strategy: Strategy = Strategy.D_TKDI
    k: int = 5
    diversity_threshold: float = 0.8
    examine_limit: int = 200

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if not 0.0 <= self.diversity_threshold <= 1.0:
            raise ValueError(
                f"diversity_threshold must be in [0, 1], got {self.diversity_threshold}"
            )
        if self.examine_limit < self.k:
            raise ValueError(
                f"examine_limit ({self.examine_limit}) must be >= k ({self.k})"
            )


def _candidates_for(
    trip: Trip,
    config: TrainingDataConfig,
    cost: CostFunction,
    similarity: SimilarityFunction,
) -> list[Path]:
    network = trip.path.network
    if config.strategy is Strategy.TKDI:
        return yen_k_shortest_paths(network, trip.source, trip.target, config.k,
                                    cost=cost)
    result = diversified_top_k(
        network,
        trip.source,
        trip.target,
        config.k,
        threshold=config.diversity_threshold,
        cost=cost,
        similarity=similarity,
        examine_limit=config.examine_limit,
    )
    return list(result.paths)


def generate_queries(
    trips: Sequence[Trip],
    config: TrainingDataConfig | None = None,
    cost: CostFunction = length_cost,
    similarity: SimilarityFunction = weighted_jaccard,
    min_candidates: int = 2,
) -> list[RankingQuery]:
    """Build labelled ranking queries for ``trips``.

    Queries ending up with fewer than ``min_candidates`` candidates are
    dropped (rank correlations are undefined on singletons), mirroring
    the paper's preprocessing.
    """
    if config is None:
        config = TrainingDataConfig()
    if min_candidates < 1:
        raise ValueError(f"min_candidates must be >= 1, got {min_candidates}")

    queries: list[RankingQuery] = []
    for trip in trips:
        paths = _candidates_for(trip, config, cost, similarity)
        if len(paths) < min_candidates:
            continue
        candidates = tuple(
            RankedCandidate(
                path=path,
                score=similarity(path, trip.path),
                generation_rank=rank,
            )
            for rank, path in enumerate(paths)
        )
        queries.append(
            RankingQuery(
                trip_id=trip.trip_id,
                driver_id=trip.driver_id,
                trajectory_path=trip.path,
                candidates=candidates,
            )
        )
    if not queries:
        raise DataError(
            "no usable ranking queries were generated; check the candidate "
            "configuration against the network size"
        )
    return queries
