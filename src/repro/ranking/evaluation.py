"""Uniform evaluation harness for scorers (PathRank and baselines).

A *scorer* is anything with ``score_query(query) -> list[float]``; this
module runs a scorer over a query set and reduces the results to the
:class:`~repro.ranking.metrics.RankingMetrics` the paper's tables
report.

PathRank scorers dispatch through the scoring-backend seam
(:mod:`repro.nn.fused`), so evaluation sweeps run on the fused numpy
kernel by default; set ``REPRO_SCORING_BACKEND=module`` to pin the
reference forward when auditing metric-level parity.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol

from repro.ranking.metrics import RankingMetrics, evaluate_predictions
from repro.ranking.training_data import RankingQuery

__all__ = ["Scorer", "evaluate_scorer"]


class Scorer(Protocol):
    """Structural interface shared by PathRank and all baselines."""

    def score_query(self, query: RankingQuery) -> list[float]:
        ...


def evaluate_scorer(
    scorer: Scorer, queries: Sequence[RankingQuery]
) -> RankingMetrics:
    """Score every query and aggregate the paper's four metrics."""
    if not queries:
        raise ValueError("cannot evaluate on an empty query set")
    grouped_true: list[list[float]] = []
    grouped_pred: list[list[float]] = []
    for query in queries:
        predictions = scorer.score_query(query)
        if len(predictions) != len(query):
            raise ValueError(
                f"scorer returned {len(predictions)} scores for a query with "
                f"{len(query)} candidates"
            )
        grouped_true.append(query.scores())
        grouped_pred.append(list(predictions))
    return evaluate_predictions(grouped_true, grouped_pred)
