"""Evaluation metrics: MAE, MARE, Kendall's τ, Spearman's ρ.

The paper reports two regression metrics over all candidates —

* ``MAE  = mean |y - ŷ|``
* ``MARE = Σ|y - ŷ| / Σ|y|`` (mean absolute *relative* error)

— and two rank-correlation coefficients computed per query (one
candidate set = one ranking) and averaged:

* Kendall's τ (the τ-b variant, tie-corrected), and
* Spearman's ρ (average-rank ties).

All four are implemented from scratch (scipy serves as a test oracle
only).  Queries whose true or predicted scores are constant have
undefined rank correlation and are skipped, with the count reported.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = [
    "mean_absolute_error",
    "mean_absolute_relative_error",
    "kendall_tau",
    "spearman_rho",
    "RankingMetrics",
    "evaluate_predictions",
]


def _as_float_arrays(y_true: Sequence[float], y_pred: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    true = np.asarray(y_true, dtype=float)
    pred = np.asarray(y_pred, dtype=float)
    if true.shape != pred.shape or true.ndim != 1:
        raise ValueError(
            f"metric inputs must be 1-D and equal length, got {true.shape} vs {pred.shape}"
        )
    if true.size == 0:
        raise ValueError("metric inputs must be non-empty")
    return true, pred


def mean_absolute_error(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    true, pred = _as_float_arrays(y_true, y_pred)
    return float(np.mean(np.abs(true - pred)))


def mean_absolute_relative_error(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Σ|err| / Σ|truth| — the aggregate relative error the paper reports.

    Using the aggregate ratio (rather than a mean of per-item ratios)
    keeps the metric finite when individual true scores are zero; it is
    undefined only when *all* true scores are zero.
    """
    true, pred = _as_float_arrays(y_true, y_pred)
    denominator = float(np.sum(np.abs(true)))
    if denominator == 0.0:
        raise ValueError("MARE is undefined when all true scores are zero")
    return float(np.sum(np.abs(true - pred)) / denominator)


def kendall_tau(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Kendall's τ-b with tie correction.

    ``τ-b = (C - D) / sqrt((n0 - n1)(n0 - n2))`` where C/D are concordant
    and discordant pair counts, ``n0 = n(n-1)/2`` and ``n1``/``n2`` are
    tied-pair counts within each ranking.  Returns ``nan`` when either
    ranking is fully tied.
    """
    true, pred = _as_float_arrays(y_true, y_pred)
    n = true.size
    if n < 2:
        return math.nan
    concordant = discordant = 0
    ties_true = ties_pred = 0
    for i in range(n - 1):
        for j in range(i + 1, n):
            # Compare signs, not the product: multiplying two subnormal
            # differences can underflow to zero and misclassify the pair.
            sign_true = int(true[i] > true[j]) - int(true[i] < true[j])
            sign_pred = int(pred[i] > pred[j]) - int(pred[i] < pred[j])
            if sign_true == 0 and sign_pred == 0:
                ties_true += 1
                ties_pred += 1
            elif sign_true == 0:
                ties_true += 1
            elif sign_pred == 0:
                ties_pred += 1
            elif sign_true == sign_pred:
                concordant += 1
            else:
                discordant += 1
    n0 = n * (n - 1) // 2
    denominator = math.sqrt((n0 - ties_true) * (n0 - ties_pred))
    if denominator == 0.0:
        return math.nan
    return (concordant - discordant) / denominator


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """Ranks starting at 1, ties assigned the average of their positions."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=float)
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and values[order[j + 1]] == values[order[i]]:
            j += 1
        average = (i + j) / 2.0 + 1.0
        ranks[order[i:j + 1]] = average
        i = j + 1
    return ranks


def spearman_rho(y_true: Sequence[float], y_pred: Sequence[float]) -> float:
    """Spearman's ρ: Pearson correlation of average ranks.

    Returns ``nan`` when either input is constant.
    """
    true, pred = _as_float_arrays(y_true, y_pred)
    if true.size < 2:
        return math.nan
    ranks_true = _average_ranks(true)
    ranks_pred = _average_ranks(pred)
    std_true = ranks_true.std()
    std_pred = ranks_pred.std()
    if std_true == 0.0 or std_pred == 0.0:
        return math.nan
    covariance = float(np.mean(
        (ranks_true - ranks_true.mean()) * (ranks_pred - ranks_pred.mean())
    ))
    return covariance / (std_true * std_pred)


@dataclass(frozen=True)
class RankingMetrics:
    """The four headline numbers of Tables 1 and 2, plus diagnostics."""

    mae: float
    mare: float
    tau: float
    rho: float
    num_candidates: int
    num_queries: int
    num_skipped_queries: int

    def as_row(self) -> dict[str, float]:
        return {"MAE": self.mae, "MARE": self.mare, "tau": self.tau, "rho": self.rho}

    def __str__(self) -> str:
        return (f"MAE={self.mae:.4f} MARE={self.mare:.4f} "
                f"tau={self.tau:.4f} rho={self.rho:.4f} "
                f"({self.num_queries} queries, {self.num_candidates} candidates)")


def evaluate_predictions(
    grouped_true: Sequence[Sequence[float]],
    grouped_pred: Sequence[Sequence[float]],
) -> RankingMetrics:
    """Aggregate metrics over per-query groups.

    MAE/MARE pool all candidates; τ/ρ are averaged over queries where
    they are defined (non-constant true and predicted scores).
    """
    if len(grouped_true) != len(grouped_pred):
        raise ValueError(
            f"group counts differ: {len(grouped_true)} vs {len(grouped_pred)}"
        )
    if not grouped_true:
        raise ValueError("no query groups to evaluate")

    all_true: list[float] = []
    all_pred: list[float] = []
    taus: list[float] = []
    rhos: list[float] = []
    skipped = 0
    for true, pred in zip(grouped_true, grouped_pred):
        if len(true) != len(pred):
            raise ValueError("a group has mismatched true/pred lengths")
        all_true.extend(true)
        all_pred.extend(pred)
        tau = kendall_tau(true, pred)
        rho = spearman_rho(true, pred)
        if math.isnan(tau) or math.isnan(rho):
            skipped += 1
            continue
        taus.append(tau)
        rhos.append(rho)

    if not taus:
        raise ValueError(
            "rank correlation undefined for every query (all-constant scores)"
        )
    return RankingMetrics(
        mae=mean_absolute_error(all_true, all_pred),
        mare=mean_absolute_relative_error(all_true, all_pred),
        tau=float(np.mean(taus)),
        rho=float(np.mean(rhos)),
        num_candidates=len(all_true),
        num_queries=len(grouped_true),
        num_skipped_queries=skipped,
    )
