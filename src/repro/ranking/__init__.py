"""Ranking layer: training-data generation, metrics, baselines."""

from repro.ranking.baselines import (
    Baseline,
    FEATURE_NAMES,
    FeatureRidgeBaseline,
    GenerationOrderBaseline,
    LengthRatioBaseline,
    TravelTimeRatioBaseline,
    path_features,
)
from repro.ranking.evaluation import Scorer, evaluate_scorer
from repro.ranking.metrics import (
    RankingMetrics,
    evaluate_predictions,
    kendall_tau,
    mean_absolute_error,
    mean_absolute_relative_error,
    spearman_rho,
)
from repro.ranking.training_data import (
    RankedCandidate,
    RankingQuery,
    Strategy,
    TrainingDataConfig,
    generate_queries,
)

__all__ = [
    "Strategy",
    "RankedCandidate",
    "RankingQuery",
    "TrainingDataConfig",
    "generate_queries",
    "mean_absolute_error",
    "mean_absolute_relative_error",
    "kendall_tau",
    "spearman_rho",
    "RankingMetrics",
    "evaluate_predictions",
    "Baseline",
    "LengthRatioBaseline",
    "TravelTimeRatioBaseline",
    "GenerationOrderBaseline",
    "FeatureRidgeBaseline",
    "path_features",
    "FEATURE_NAMES",
    "Scorer",
    "evaluate_scorer",
]
