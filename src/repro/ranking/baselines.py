"""Non-learned and shallow-learned ranking baselines.

The paper's motivation is that ranking candidates by classic criteria
(shortest, fastest) does not reproduce driver preference.  These
baselines make that claim measurable and give PathRank something to
beat:

* :class:`LengthRatioBaseline` — score = shortest length / candidate
  length (ranks exactly like "shorter is better");
* :class:`TravelTimeRatioBaseline` — the same with travel time
  ("faster is better");
* :class:`GenerationOrderBaseline` — score decays with the candidate's
  position in the enumeration (the k-shortest prior);
* :class:`FeatureRidgeBaseline` — ridge regression on hand-crafted path
  features, the classic learning-to-rank pointwise baseline.

All baselines implement ``score_query(query) -> list[float]`` so the
evaluation harness treats them and PathRank uniformly.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import TrainingError
from repro.graph.network import RoadCategory
from repro.graph.path import Path
from repro.ranking.training_data import RankingQuery

__all__ = [
    "Baseline",
    "LengthRatioBaseline",
    "TravelTimeRatioBaseline",
    "GenerationOrderBaseline",
    "FeatureRidgeBaseline",
    "path_features",
    "FEATURE_NAMES",
]


class Baseline:
    """Interface: fit on queries (optional) and score a query's candidates."""

    name = "baseline"

    def fit(self, queries: Sequence[RankingQuery]) -> "Baseline":
        return self

    def score_query(self, query: RankingQuery) -> list[float]:
        raise NotImplementedError


class LengthRatioBaseline(Baseline):
    """Score = min candidate length / candidate length, in (0, 1]."""

    name = "rank-by-length"

    def score_query(self, query: RankingQuery) -> list[float]:
        lengths = [candidate.path.length for candidate in query.candidates]
        best = min(lengths)
        return [best / length for length in lengths]


class TravelTimeRatioBaseline(Baseline):
    """Score = min candidate travel time / candidate travel time."""

    name = "rank-by-travel-time"

    def score_query(self, query: RankingQuery) -> list[float]:
        times = [candidate.path.travel_time for candidate in query.candidates]
        best = min(times)
        return [best / time for time in times]


class GenerationOrderBaseline(Baseline):
    """Score = 1 / (1 + generation rank): trust the enumeration order."""

    name = "rank-by-generation-order"

    def score_query(self, query: RankingQuery) -> list[float]:
        return [1.0 / (1.0 + candidate.generation_rank)
                for candidate in query.candidates]


#: Names of the hand-crafted features, in column order.
FEATURE_NAMES = (
    "length_ratio",
    "time_ratio",
    "vertex_count_ratio",
    "generation_rank",
    "frac_motorway",
    "frac_arterial",
    "frac_local",
    "frac_residential",
    "mean_edge_length",
)


def path_features(path: Path, query: RankingQuery, generation_rank: int) -> np.ndarray:
    """The feature vector of one candidate within its query context."""
    lengths = [c.path.length for c in query.candidates]
    times = [c.path.travel_time for c in query.candidates]
    counts = [c.path.num_vertices for c in query.candidates]
    fractions = path.category_length_fractions()
    return np.array([
        min(lengths) / path.length,
        min(times) / path.travel_time,
        min(counts) / path.num_vertices,
        float(generation_rank),
        fractions.get(RoadCategory.MOTORWAY.value, 0.0),
        fractions.get(RoadCategory.ARTERIAL.value, 0.0),
        fractions.get(RoadCategory.LOCAL.value, 0.0),
        fractions.get(RoadCategory.RESIDENTIAL.value, 0.0),
        path.length / max(path.num_edges, 1),
    ])


class FeatureRidgeBaseline(Baseline):
    """Pointwise ridge regression on :func:`path_features`.

    Features are standardised on the training set; the closed-form ridge
    solution ``(XᵀX + λI)⁻¹ Xᵀy`` keeps the baseline dependency-free.
    """

    name = "feature-ridge"

    def __init__(self, regularisation: float = 1.0) -> None:
        if regularisation <= 0:
            raise ValueError(f"regularisation must be positive, got {regularisation}")
        self.regularisation = float(regularisation)
        self._weights: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def _design(self, queries: Sequence[RankingQuery]) -> tuple[np.ndarray, np.ndarray]:
        rows: list[np.ndarray] = []
        targets: list[float] = []
        for query in queries:
            for candidate in query.candidates:
                rows.append(path_features(candidate.path, query,
                                          candidate.generation_rank))
                targets.append(candidate.score)
        return np.vstack(rows), np.asarray(targets)

    def fit(self, queries: Sequence[RankingQuery]) -> "FeatureRidgeBaseline":
        if not queries:
            raise TrainingError("cannot fit the ridge baseline on zero queries")
        features, targets = self._design(queries)
        self._mean = features.mean(axis=0)
        std = features.std(axis=0)
        self._std = np.where(std == 0.0, 1.0, std)
        standardised = (features - self._mean) / self._std
        design = np.hstack([standardised, np.ones((standardised.shape[0], 1))])
        gram = design.T @ design + self.regularisation * np.eye(design.shape[1])
        self._weights = np.linalg.solve(gram, design.T @ targets)
        return self

    def score_query(self, query: RankingQuery) -> list[float]:
        if self._weights is None:
            raise TrainingError("fit() must run before score_query()")
        scores: list[float] = []
        for candidate in query.candidates:
            features = path_features(candidate.path, query, candidate.generation_rank)
            standardised = (features - self._mean) / self._std
            raw = float(standardised @ self._weights[:-1] + self._weights[-1])
            scores.append(min(max(raw, 0.0), 1.0))
        return scores
