"""Skip-gram with negative sampling (SGNS), vectorised in numpy.

This is the word2vec objective node2vec trains: maximise
``log σ(u_c · v_w)`` for observed (centre, context) pairs and
``log σ(-u_n · v_w)`` for sampled negatives, where negatives are drawn
from the unigram distribution raised to 3/4.  Updates are applied
mini-batch-wise with ``np.add.at`` scatter-adds so repeated vertices in
a batch accumulate correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.rng import RngLike, make_rng

__all__ = ["SkipGramConfig", "SkipGramModel", "build_training_pairs"]


def build_training_pairs(
    walks: list[list[int]], window: int
) -> tuple[np.ndarray, np.ndarray]:
    """(centre, context) index pairs from walks with the given window.

    Matches word2vec: every ordered pair within ``window`` positions of
    each other (both directions) is a positive example.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    centres: list[int] = []
    contexts: list[int] = []
    for walk in walks:
        for i, centre in enumerate(walk):
            low = max(0, i - window)
            high = min(len(walk), i + window + 1)
            for j in range(low, high):
                if j != i:
                    centres.append(centre)
                    contexts.append(walk[j])
    return np.asarray(centres, dtype=np.int64), np.asarray(contexts, dtype=np.int64)


@dataclass(frozen=True)
class SkipGramConfig:
    """Hyper-parameters for SGNS training."""

    dim: int = 64
    window: int = 5
    negatives: int = 5
    epochs: int = 3
    learning_rate: float = 0.05
    min_learning_rate: float = 0.0001
    batch_size: int = 256

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise ValueError(f"dim must be >= 1, got {self.dim}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.negatives < 1:
            raise ValueError(f"negatives must be >= 1, got {self.negatives}")
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.learning_rate <= 0 or self.min_learning_rate <= 0:
            raise ValueError("learning rates must be positive")
        if self.min_learning_rate > self.learning_rate:
            raise ValueError("min_learning_rate exceeds learning_rate")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    ex = np.exp(x[~positive])
    out[~positive] = ex / (1.0 + ex)
    return out


class SkipGramModel:
    """Input (``vectors``) and output (``context_vectors``) matrices.

    ``vectors`` — the matrix handed to PathRank as the pre-trained
    vertex embedding ``B``.
    """

    def __init__(self, vocab_size: int, config: SkipGramConfig, rng: RngLike = None) -> None:
        if vocab_size < 2:
            raise ValueError(f"vocab_size must be >= 2, got {vocab_size}")
        generator = make_rng(rng)
        self.vocab_size = vocab_size
        self.config = config
        bound = 0.5 / config.dim
        self.vectors = generator.uniform(-bound, bound, size=(vocab_size, config.dim))
        self.context_vectors = np.zeros((vocab_size, config.dim))
        self._noise_table: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Negative-sampling noise distribution
    # ------------------------------------------------------------------
    def _build_noise(self, centres: np.ndarray) -> None:
        counts = np.bincount(centres, minlength=self.vocab_size).astype(float)
        counts = np.maximum(counts, 1.0) ** 0.75  # unigram^(3/4), smoothed
        self._noise_probs = counts / counts.sum()

    def _draw_negatives(self, rng: np.random.Generator, size: tuple[int, int]) -> np.ndarray:
        return rng.choice(self.vocab_size, size=size, p=self._noise_probs)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(
        self,
        walks: list[list[int]],
        rng: RngLike = None,
        callback=None,
    ) -> list[float]:
        """Fit on the walks; returns the mean SGNS loss per epoch.

        ``callback(epoch, loss)`` is invoked after each epoch when given.
        """
        generator = make_rng(rng)
        centres, contexts = build_training_pairs(walks, self.config.window)
        if centres.size == 0:
            raise ValueError("no training pairs produced; are the walks too short?")
        self._build_noise(centres)

        cfg = self.config
        num_pairs = centres.size
        total_batches = cfg.epochs * max(1, (num_pairs + cfg.batch_size - 1) // cfg.batch_size)
        seen_batches = 0
        epoch_losses: list[float] = []

        for epoch in range(cfg.epochs):
            order = generator.permutation(num_pairs)
            losses: list[float] = []
            for start in range(0, num_pairs, cfg.batch_size):
                batch = order[start:start + cfg.batch_size]
                progress = seen_batches / total_batches
                lr = cfg.learning_rate + (cfg.min_learning_rate - cfg.learning_rate) * progress
                losses.append(self._step(centres[batch], contexts[batch], lr, generator))
                seen_batches += 1
            epoch_loss = float(np.mean(losses))
            epoch_losses.append(epoch_loss)
            if callback is not None:
                callback(epoch, epoch_loss)
        return epoch_losses

    def _step(
        self,
        centres: np.ndarray,
        contexts: np.ndarray,
        lr: float,
        rng: np.random.Generator,
    ) -> float:
        """One SGNS mini-batch update; returns the batch loss."""
        batch = centres.size
        negatives = self._draw_negatives(rng, (batch, self.config.negatives))

        centre_vecs = self.vectors[centres]                      # (B, D)
        context_vecs = self.context_vectors[contexts]            # (B, D)
        negative_vecs = self.context_vectors[negatives]          # (B, N, D)

        pos_score = _sigmoid(np.einsum("bd,bd->b", centre_vecs, context_vecs))
        neg_score = _sigmoid(np.einsum("bnd,bd->bn", negative_vecs, centre_vecs))

        eps = 1e-10
        loss = -(np.log(pos_score + eps).sum()
                 + np.log(1.0 - neg_score + eps).sum()) / batch

        # Gradients of the SGNS objective.
        pos_coeff = (pos_score - 1.0)[:, None]                    # (B, 1)
        neg_coeff = neg_score[:, :, None]                         # (B, N, 1)

        grad_centre = pos_coeff * context_vecs + np.einsum(
            "bnd->bd", neg_coeff * negative_vecs)
        grad_context = pos_coeff * centre_vecs
        grad_negative = neg_coeff * centre_vecs[:, None, :]

        # Duplicate damping: scatter-added updates for a row repeated K
        # times in one batch are all computed at the stale value, which
        # multiplies the effective step by K and can destabilise training
        # on repetitive walks.  Scaling each pair's contribution by
        # 1/sqrt(K) keeps frequent rows moving decisively while bounding
        # the blow-up (pure summing diverges; pure averaging stalls).
        flat_negatives = negatives.reshape(-1)
        centre_counts = np.bincount(centres, minlength=self.vocab_size)
        output_counts = (np.bincount(contexts, minlength=self.vocab_size)
                         + np.bincount(flat_negatives, minlength=self.vocab_size))
        grad_centre /= np.sqrt(centre_counts[centres])[:, None]
        grad_context /= np.sqrt(output_counts[contexts])[:, None]
        grad_negative_flat = grad_negative.reshape(-1, self.config.dim)
        grad_negative_flat /= np.sqrt(output_counts[flat_negatives])[:, None]

        np.add.at(self.vectors, centres, -lr * grad_centre)
        np.add.at(self.context_vectors, contexts, -lr * grad_context)
        np.add.at(self.context_vectors, flat_negatives, -lr * grad_negative_flat)
        return loss

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def similarity(self, a: int, b: int) -> float:
        """Cosine similarity between two vertex embeddings."""
        va, vb = self.vectors[a], self.vectors[b]
        denom = np.linalg.norm(va) * np.linalg.norm(vb)
        if denom == 0.0:
            return 0.0
        return float(va @ vb / denom)

    def most_similar(self, vertex: int, top: int = 5) -> list[tuple[int, float]]:
        """The ``top`` most cosine-similar vertices (excluding itself)."""
        norms = np.linalg.norm(self.vectors, axis=1)
        norms = np.where(norms == 0.0, 1.0, norms)
        normalised = self.vectors / norms[:, None]
        scores = normalised @ normalised[vertex]
        scores[vertex] = -np.inf
        best = np.argsort(-scores)[:top]
        return [(int(i), float(scores[i])) for i in best]
