"""Second-order biased random walks over a road network (node2vec).

The walk of Grover & Leskovec (2016) interpolates between BFS-like and
DFS-like exploration through the return parameter ``p`` and the in-out
parameter ``q``: from the step ``t -> v``, the unnormalised probability
of moving on to ``x`` is

* ``w(v,x) / p``  if ``x == t``                (returning),
* ``w(v,x)``      if ``x`` is a neighbour of ``t`` (staying close),
* ``w(v,x) / q``  otherwise                    (moving outward),

with ``w`` the edge weight (uniform by default — road-graph embeddings
care about topology; pass ``weighted=True`` to use edge lengths).
"""

from __future__ import annotations

import numpy as np

from repro.embedding.alias import AliasSampler
from repro.graph.network import RoadNetwork
from repro.rng import RngLike, make_rng

__all__ = ["BiasedWalkGenerator"]


class BiasedWalkGenerator:
    """Precomputes alias tables, then generates walks in O(1) per step."""

    def __init__(
        self,
        network: RoadNetwork,
        p: float = 1.0,
        q: float = 1.0,
        weighted: bool = False,
    ) -> None:
        if p <= 0 or q <= 0:
            raise ValueError(f"p and q must be positive, got p={p}, q={q}")
        if network.num_vertices == 0:
            raise ValueError("cannot walk an empty network")
        self.network = network
        self.p = float(p)
        self.q = float(q)
        self.weighted = weighted

        self._successors: dict[int, list[int]] = {
            v: network.successors(v) for v in network.vertex_ids()
        }
        self._successor_sets = {v: set(s) for v, s in self._successors.items()}

        # First-order tables (used for the first step of each walk).
        self._first_order: dict[int, AliasSampler] = {}
        for v, successors in self._successors.items():
            if successors:
                self._first_order[v] = AliasSampler(
                    [self._edge_weight(v, x) for x in successors]
                )

        # Second-order tables keyed by the directed edge just traversed.
        self._second_order: dict[tuple[int, int], AliasSampler] = {}
        for prev in network.vertex_ids():
            for current in self._successors[prev]:
                successors = self._successors[current]
                if not successors:
                    continue
                weights = []
                prev_neighbours = self._successor_sets[prev]
                for nxt in successors:
                    weight = self._edge_weight(current, nxt)
                    if nxt == prev:
                        weight /= self.p
                    elif nxt not in prev_neighbours:
                        weight /= self.q
                    weights.append(weight)
                self._second_order[(prev, current)] = AliasSampler(weights)

    def _edge_weight(self, u: int, v: int) -> float:
        if not self.weighted:
            return 1.0
        return self.network.edge(u, v).length

    def walk(self, start: int, length: int, rng: RngLike = None) -> list[int]:
        """One walk of up to ``length`` vertices starting at ``start``.

        Shorter walks are returned when a dead-end is hit (cannot happen
        on strongly connected networks).
        """
        if length < 1:
            raise ValueError(f"walk length must be >= 1, got {length}")
        generator = make_rng(rng)
        walk = [start]
        if length == 1:
            return walk
        first = self._first_order.get(start)
        if first is None:
            return walk
        walk.append(self._successors[start][first.sample(generator)])
        while len(walk) < length:
            prev, current = walk[-2], walk[-1]
            table = self._second_order.get((prev, current))
            if table is None:
                break
            walk.append(self._successors[current][table.sample(generator)])
        return walk

    def generate(
        self,
        num_walks: int,
        walk_length: int,
        rng: RngLike = None,
    ) -> list[list[int]]:
        """``num_walks`` walks from every vertex, in shuffled start order
        (matching the reference implementation's epoch structure)."""
        if num_walks < 1:
            raise ValueError(f"num_walks must be >= 1, got {num_walks}")
        generator = make_rng(rng)
        vertex_ids = np.array(self.network.vertex_ids())
        walks: list[list[int]] = []
        for _ in range(num_walks):
            generator.shuffle(vertex_ids)
            for start in vertex_ids:
                walks.append(self.walk(int(start), walk_length, rng=generator))
        return walks
