"""node2vec over road networks — PathRank's spatial network embedding.

The paper initialises the vertex-embedding matrix ``B`` with node2vec so
the model starts from a representation that already encodes road-network
topology (vertices on the same corridor embed nearby).  This module ties
together the biased walks and the SGNS trainer and returns the matrix in
dense vertex-id order, ready for :class:`repro.nn.Embedding`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embedding.skipgram import SkipGramConfig, SkipGramModel
from repro.embedding.walks import BiasedWalkGenerator
from repro.graph.network import RoadNetwork
from repro.rng import RngLike, make_rng, spawn

__all__ = ["Node2VecConfig", "Node2Vec", "train_node2vec"]


@dataclass(frozen=True)
class Node2VecConfig:
    """Walk and SGNS hyper-parameters.

    The defaults mirror the node2vec paper (p=q=1 reduces to DeepWalk;
    the experiment configs use them unchanged, with ``dim`` set to the
    table's embedding size M).
    """

    dim: int = 64
    num_walks: int = 10
    walk_length: int = 40
    window: int = 5
    p: float = 1.0
    q: float = 1.0
    negatives: int = 5
    epochs: int = 3
    learning_rate: float = 0.025
    weighted_walks: bool = False

    def __post_init__(self) -> None:
        if self.num_walks < 1 or self.walk_length < 2:
            raise ValueError(
                f"need num_walks >= 1 and walk_length >= 2, got "
                f"({self.num_walks}, {self.walk_length})"
            )
        if self.p <= 0 or self.q <= 0:
            raise ValueError(f"p and q must be positive, got ({self.p}, {self.q})")

    def skipgram(self) -> SkipGramConfig:
        return SkipGramConfig(
            dim=self.dim,
            window=self.window,
            negatives=self.negatives,
            epochs=self.epochs,
            learning_rate=self.learning_rate,
        )


class Node2Vec:
    """End-to-end node2vec: walks, SGNS, and the resulting matrix."""

    def __init__(self, network: RoadNetwork, config: Node2VecConfig | None = None) -> None:
        ids = network.vertex_ids()
        if sorted(ids) != list(range(len(ids))):
            raise ValueError(
                "node2vec requires dense vertex ids 0..n-1; call "
                "network.relabelled() first"
            )
        self.network = network
        self.config = config or Node2VecConfig()
        self.model: SkipGramModel | None = None
        self.losses: list[float] = []

    def fit(self, rng: RngLike = None) -> np.ndarray:
        """Run walks + SGNS; returns the ``(n, dim)`` embedding matrix."""
        generator = make_rng(rng)
        walk_rng, init_rng, train_rng = spawn(generator, 3)
        walker = BiasedWalkGenerator(
            self.network,
            p=self.config.p,
            q=self.config.q,
            weighted=self.config.weighted_walks,
        )
        walks = walker.generate(self.config.num_walks, self.config.walk_length,
                                rng=walk_rng)
        self.model = SkipGramModel(self.network.num_vertices, self.config.skipgram(),
                                   rng=init_rng)
        self.losses = self.model.train(walks, rng=train_rng)
        return self.embedding_matrix

    @property
    def embedding_matrix(self) -> np.ndarray:
        """The trained input-vector matrix (vertices in id order)."""
        if self.model is None:
            raise RuntimeError("call fit() before reading the embedding matrix")
        return self.model.vectors


def train_node2vec(
    network: RoadNetwork,
    dim: int = 64,
    rng: RngLike = None,
    **overrides,
) -> np.ndarray:
    """Convenience wrapper: embedding matrix for ``network`` at size ``dim``."""
    config = Node2VecConfig(dim=dim, **overrides)
    return Node2Vec(network, config).fit(rng=rng)
