"""Spatial-network embedding: node2vec implemented from scratch."""

from repro.embedding.alias import AliasSampler
from repro.embedding.node2vec import Node2Vec, Node2VecConfig, train_node2vec
from repro.embedding.skipgram import SkipGramConfig, SkipGramModel, build_training_pairs
from repro.embedding.walks import BiasedWalkGenerator

__all__ = [
    "AliasSampler",
    "BiasedWalkGenerator",
    "SkipGramConfig",
    "SkipGramModel",
    "build_training_pairs",
    "Node2Vec",
    "Node2VecConfig",
    "train_node2vec",
]
