"""Alias-method sampling: O(1) draws from a fixed discrete distribution.

node2vec's biased random walks repeatedly sample a successor from the
same per-edge transition distribution; Walker's alias method makes each
draw constant-time after an O(n) setup (Vose's stable construction).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["AliasSampler"]


class AliasSampler:
    """Sampler over ``{0, ..., n-1}`` with the given unnormalised weights."""

    __slots__ = ("_prob", "_alias", "n")

    def __init__(self, weights: Sequence[float]) -> None:
        weights = np.asarray(weights, dtype=float)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D sequence")
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise ValueError("weights must be finite and non-negative")
        total = float(weights.sum())
        if total <= 0:
            raise ValueError("weights must sum to a positive value")

        n = weights.size
        scaled = weights * (n / total)
        prob = np.zeros(n)
        alias = np.zeros(n, dtype=np.int64)
        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            prob[s] = scaled[s]
            alias[s] = l
            scaled[l] = scaled[l] + scaled[s] - 1.0
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        # Numerical leftovers land in one of the lists with weight ~1.
        for i in small + large:
            prob[i] = 1.0
        self._prob = prob
        self._alias = alias
        self.n = n

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one index."""
        i = int(rng.integers(self.n))
        if rng.random() < self._prob[i]:
            return i
        return int(self._alias[i])

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` indices (vectorised)."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        idx = rng.integers(self.n, size=size)
        coin = rng.random(size)
        use_alias = coin >= self._prob[idx]
        out = idx.copy()
        out[use_alias] = self._alias[idx[use_alias]]
        return out
