"""Spawn-safe worker-process pool running the existing kernels.

Workers are *warm*: at spawn each one attaches the CSR shared-memory
segment, rebuilds the routing kernel over the shared arrays
(:meth:`CSRGraph.from_shared`), installs it as the network's cached
kernel (:func:`install_csr`) and pre-touches its scratch buffers — so
the first real job pays no setup.  Scoring kernels attach lazily per
``weight_version`` and are cached per worker.

The wire protocol keeps payloads tiny: a candidates job ships
``(source, target, config)`` and returns bare vertex-id tuples (never
:class:`Path` objects, which drag the whole network through pickle);
a score job ships vertex-id tuples and returns plain float lists.

**No queue is ever shared between two workers.**  Each worker slot
owns a private job queue and a private result queue drained by a
dedicated parent thread.  This is a survival property, not a style
choice: a worker SIGKILLed while holding a shared queue's write lock
would wedge every sibling — observed reliably on a single-core host,
where the parent often preempts a worker between finishing a ``put``
and releasing the lock.  With per-slot queues a kill can only corrupt
state the respawn throws away.

Failure semantics are the point, not an afterthought:

- Every job has a :class:`PoolTicket`; :meth:`PoolTicket.wait` enforces
  the *waiter-side* deadline, so a hung worker can never hang a request
  — the ticket raises :class:`~repro.errors.ExecError` and the pool
  kills and respawns the suspect worker.
- A monitor thread detects worker death (crash, OOM-kill, chaos), fails
  that worker's in-flight tickets immediately, and respawns the slot.
- The ``exec.worker`` fault-injection point translates an ``error``
  firing into a real ``SIGKILL`` of a live worker, so chaos tests
  exercise the genuine death path end to end.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
from time import perf_counter

import numpy as np

from repro.errors import ExecError, FaultInjected, NoPathError
from repro.exec.shm import attach_segment

__all__ = ["PoolTicket", "WorkerPool"]

#: Seconds the monitor sleeps between liveness sweeps.
_MONITOR_INTERVAL_S = 0.02

#: Compiled scoring kernels cached per worker (per weight key).
_WORKER_KERNEL_CAP = 8


class _WirePath:
    """Minimal path stand-in for the encoders: vertices + length only."""

    __slots__ = ("vertices", "num_vertices")

    def __init__(self, vertices) -> None:
        self.vertices = tuple(vertices)
        self.num_vertices = len(self.vertices)


def _worker_main(index: int, network, csr_name: str | None,
                 csr_key: str | None, inqueue, outqueue) -> None:
    """Worker process entry point (module-level: spawn pickles by name)."""
    try:
        from repro.analytics.tiling import run_tile_payload
        from repro.core.batching import encode_path_buckets
        from repro.core.ranker import generate_candidates
        from repro.graph.csr import CSRGraph, install_csr
        from repro.nn.fused import CompiledPathRank

        if csr_name is not None:
            segment = attach_segment(csr_name, expect_key=csr_key)
            install_csr(network,
                        CSRGraph.from_shared(segment.arrays, segment.meta))
        outqueue.put(("ready", index, None, 0.0))
    except BaseException as exc:  # noqa: BLE001 - report, then die
        outqueue.put(("init_error", index,
                      f"{type(exc).__name__}: {exc}", 0.0))
        return

    kernels: dict[str, object] = {}

    def scoring_kernel(segment_name: str, key: str):
        kernel = kernels.get(key)
        if kernel is None:
            segment = attach_segment(segment_name, expect_key=key)
            kernel = CompiledPathRank.from_shared(segment.arrays,
                                                  segment.meta)
            kernels[key] = kernel
            while len(kernels) > _WORKER_KERNEL_CAP:
                kernels.pop(next(iter(kernels)))
        return kernel

    while True:
        job = inqueue.get()
        if job is None:
            return
        kind, job_id, payload = job
        began = perf_counter()
        try:
            if kind == "candidates":
                source, target, config = payload
                paths = generate_candidates(network, source, target, config)
                result = [path.vertices for path in paths]
            elif kind == "score":
                segment_name, key, chunks = payload
                kernel = scoring_kernel(segment_name, key)
                result = []
                for chunk in chunks:
                    paths = [_WirePath(vertices) for vertices in chunk]
                    # Mirror PathRank.score_paths' fused branch exactly:
                    # per-bucket padded forwards into a float64 vector.
                    scores = np.empty(len(paths), dtype=np.float64)
                    for bucket, vertex_ids, mask in \
                            encode_path_buckets(paths):
                        scores[bucket] = kernel.forward(vertex_ids, mask)
                    result.append(scores.tolist())
            elif kind == "analytics":
                # One batch-analytics tile against the shared-memory
                # kernel installed at warmup; returns plain arrays/lists
                # (see repro.analytics.tiling for the wire format).
                result = run_tile_payload(network, payload)
            elif kind == "ping":
                result = "pong"
            elif kind == "hang":
                # Chaos helper: wedge this worker without dying, so the
                # waiter-side deadline (not worker exit) must answer.
                threading.Event().wait()
                result = None
            else:
                raise ExecError(f"unknown job kind {kind!r}")
        except NoPathError as exc:
            elapsed = perf_counter() - began
            outqueue.put(("fail", job_id,
                          ("no_path", (exc.source, exc.target)), elapsed))
        except BaseException as exc:  # noqa: BLE001 - ship to parent
            elapsed = perf_counter() - began
            outqueue.put(("fail", job_id,
                          ("error", f"{type(exc).__name__}: {exc}"),
                          elapsed))
        else:
            elapsed = perf_counter() - began
            outqueue.put(("done", job_id, result, elapsed))


class PoolTicket:
    """Waitable handle for one dispatched job.

    ``wait`` is the deadline seam: the *caller* bounds how long it will
    block, and on expiry the ticket fails with
    :class:`~repro.errors.ExecError` while the pool deals with the
    worker — a sick process can therefore delay a request by at most
    its remaining budget, never hang it.
    """

    __slots__ = ("kind", "job_id", "worker_index", "submitted_at",
                 "compute_s", "_event", "_result", "_error", "_pool")

    def __init__(self, kind: str, job_id: int, worker_index: int,
                 pool: "WorkerPool") -> None:
        self.kind = kind
        self.job_id = job_id
        self.worker_index = worker_index
        self.submitted_at = perf_counter()
        self.compute_s = 0.0
        self._event = threading.Event()
        self._result = None
        self._error: BaseException | None = None
        self._pool = pool

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def _resolve(self, result, compute_s: float) -> None:
        self._result = result
        self.compute_s = compute_s
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def wait(self, timeout_s: float | None = None):
        """Block for the result; raise the job's error on failure.

        A timeout fails the ticket *and* reports the worker as suspect:
        the pool kills and respawns it, failing any other tickets it
        held — late results from the old incarnation are discarded.
        """
        if not self._event.wait(timeout_s):
            self._pool._note_timeout(self)
            # The kill above fails every outstanding ticket of that
            # worker, including this one; the event is set now.
            self._event.wait()
        if self._error is not None:
            raise self._error
        return self._result


class _Slot:
    """One worker slot: process + private queues + drainer thread."""

    __slots__ = ("index", "generation", "process", "inqueue", "results",
                 "drainer", "ready")

    def __init__(self, index: int, generation: int) -> None:
        self.index = index
        self.generation = generation
        self.process = None
        self.inqueue = None
        self.results = None
        self.drainer = None
        self.ready = threading.Event()


class WorkerPool:
    """N warm spawn-context workers over shared hot-state."""

    def __init__(self, network, *, workers: int, csr_name: str | None = None,
                 csr_key: str | None = None, faults=None, metrics=None,
                 ready_timeout_s: float = 60.0) -> None:
        if workers < 1:
            raise ExecError(f"workers must be >= 1, got {workers}")
        self.network = network
        self.workers = workers
        self.faults = faults
        self._csr_name = csr_name
        self._csr_key = csr_key
        self._ctx = mp.get_context("spawn")
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._closed = False
        self._job_seq = 0
        self._inflight: dict[int, PoolTicket] = {}
        self._init_errors: list[str] = []
        # Counters (under self._lock).
        self.dispatched = 0
        self.completed = 0
        self.failed = 0
        self.respawns = 0
        self.timeouts = 0
        self._per_worker_jobs = [0] * workers
        self._outstanding = [0] * workers
        #: Deaths before the slot ever reported ready; a slot that
        #: cannot warm up (bad segment, import failure in the child)
        #: stops being respawned after a few attempts instead of
        #: fork-bombing the host.
        self._early_deaths = [0] * workers
        # Observability: dispatch->result roundtrip, worker-reported
        # compute time, their difference (IPC + queueing overhead), and
        # the busy-worker fraction sampled at each dispatch.
        if metrics is not None:
            self._roundtrip_hist = metrics.histogram("exec.roundtrip_ms")
            self._overhead_hist = metrics.histogram("exec.overhead_ms")
            self._occupancy_hist = metrics.histogram("exec.occupancy")
        else:
            self._roundtrip_hist = None
            self._overhead_hist = None
            self._occupancy_hist = None

        self._slots: list[_Slot] = [_Slot(index, 0)
                                    for index in range(workers)]
        for slot in self._slots:
            self._spawn(slot)
        self._monitor = threading.Thread(target=self._watch,
                                         name="exec-pool-monitor",
                                         daemon=True)
        self._monitor.start()
        self._ready_timeout_s = ready_timeout_s

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, slot: _Slot) -> None:
        if self._closed:
            return
        slot.inqueue = self._ctx.SimpleQueue()
        slot.results = self._ctx.SimpleQueue()
        slot.ready = threading.Event()
        slot.process = self._ctx.Process(
            target=_worker_main,
            args=(slot.index, self.network, self._csr_name, self._csr_key,
                  slot.inqueue, slot.results),
            name=f"exec-worker-{slot.index}",
            daemon=True,
        )
        slot.process.start()
        slot.drainer = threading.Thread(
            target=self._drain, args=(slot, slot.results, slot.ready),
            name=f"exec-pool-drain-{slot.index}-g{slot.generation}",
            daemon=True)
        slot.drainer.start()

    def wait_ready(self, timeout_s: float | None = None) -> None:
        """Block until every worker finished warmup (or raise)."""
        timeout_s = timeout_s if timeout_s is not None \
            else self._ready_timeout_s
        deadline = perf_counter() + timeout_s
        for slot in self._slots:
            remaining = deadline - perf_counter()
            if not slot.ready.wait(max(0.0, remaining)):
                with self._lock:
                    errors = list(self._init_errors)
                detail = f": {errors[0]}" if errors else ""
                raise ExecError(
                    f"worker pool failed to warm up within {timeout_s:.1f}s"
                    + detail)

    def close(self, timeout_s: float = 5.0) -> None:
        """Stop workers and reclaim the slot threads (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            inflight = list(self._inflight.values())
            self._inflight.clear()
        # Stop the monitor *first* so it cannot respawn a worker we are
        # about to shut down.
        self._stop.set()
        self._monitor.join(timeout_s)
        for ticket in inflight:
            ticket._fail(ExecError("worker pool closed with the job "
                                   "in flight"))
        for slot in self._slots:
            try:
                slot.inqueue.put(None)
            except (OSError, ValueError):
                pass
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout_s)
            if process.is_alive():
                process.kill()
                process.join(timeout_s)
        for slot in self._slots:
            # Wake the drainer.  Safe only after a *clean* worker exit:
            # a worker killed while holding its queue's write lock
            # would block this put forever, so chaos-killed slots keep
            # their (daemon) drainer parked instead.
            if slot.process is not None and slot.process.exitcode == 0:
                try:
                    slot.results.put(None)
                except (OSError, ValueError):
                    continue
                slot.drainer.join(timeout_s)

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def submit(self, kind: str, payload) -> PoolTicket:
        """Dispatch one job to the least-loaded live worker."""
        if self.faults is not None:
            try:
                self.faults.fire("exec.worker")
            except FaultInjected:
                # Translate chaos into a *real* worker death: SIGKILL
                # the target so the genuine detection -> ticket-fail ->
                # respawn path runs, exactly as for a native crash.
                self.kill_worker()
        with self._lock:
            if self._closed:
                raise ExecError("worker pool is closed")
            index = min(range(self.workers),
                        key=lambda i: self._outstanding[i])
            self._job_seq += 1
            job_id = self._job_seq
            ticket = PoolTicket(kind, job_id, index, self)
            self._inflight[job_id] = ticket
            self._outstanding[index] += 1
            self.dispatched += 1
            inqueue = self._slots[index].inqueue
            if self._occupancy_hist is not None:
                busy = sum(1 for n in self._outstanding if n > 0)
                self._occupancy_hist.observe(busy / self.workers)
        try:
            inqueue.put((kind, job_id, payload))
        except (OSError, ValueError):
            # Pipe to a dead worker: fail fast; the monitor respawns.
            self._fail_ticket(job_id, ExecError(
                f"worker {index} unreachable at dispatch"))
        return ticket

    def run(self, kind: str, payload, timeout_s: float | None = None):
        return self.submit(kind, payload).wait(timeout_s)

    # ------------------------------------------------------------------
    # Chaos / failure handling
    # ------------------------------------------------------------------
    def kill_worker(self, index: int | None = None) -> int:
        """SIGKILL one worker (the busiest by default); returns its index.

        The monitor notices the death, fails its in-flight tickets with
        :class:`ExecError`, and respawns the slot — this helper only
        delivers the signal, so tests exercise the same recovery path a
        real crash takes.
        """
        with self._lock:
            if index is None:
                index = max(range(self.workers),
                            key=lambda i: self._outstanding[i])
            process = self._slots[index].process
        if process is not None and process.is_alive():
            process.kill()
        return index

    def hang_worker(self, index: int | None = None) -> int:
        """Wedge one worker with a never-returning job (chaos helper)."""
        with self._lock:
            if index is None:
                index = min(range(self.workers),
                            key=lambda i: self._outstanding[i])
            self._outstanding[index] += 1  # occupy the slot for real
            inqueue = self._slots[index].inqueue
        inqueue.put(("hang", 0, None))
        return index

    def _note_timeout(self, ticket: PoolTicket) -> None:
        """A waiter gave up on ``ticket``: treat its worker as sick."""
        with self._lock:
            self.timeouts += 1
            still_inflight = ticket.job_id in self._inflight
        if not still_inflight:
            return
        self.kill_worker(ticket.worker_index)
        # Death detection runs on the monitor thread; make sure *this*
        # ticket resolves promptly even if the monitor is between polls.
        self._fail_ticket(ticket.job_id, ExecError(
            f"job {ticket.kind!r} timed out on worker "
            f"{ticket.worker_index}; worker killed and respawning"))

    def _fail_ticket(self, job_id: int, error: BaseException) -> None:
        with self._lock:
            ticket = self._inflight.pop(job_id, None)
            if ticket is None:
                return
            self._outstanding[ticket.worker_index] = max(
                0, self._outstanding[ticket.worker_index] - 1)
            self.failed += 1
        ticket._fail(error)

    # ------------------------------------------------------------------
    # Background threads
    # ------------------------------------------------------------------
    def _drain(self, slot: _Slot, results, ready: threading.Event) -> None:
        """Drain one worker incarnation's private result queue.

        Bound to the queue and ready event captured at spawn time: after
        a respawn the old thread keeps draining (or blocks on) the old
        queue and can never touch the new incarnation's state.
        """
        while True:
            try:
                message = results.get()
            except (OSError, EOFError, ValueError):
                return
            except Exception:  # noqa: BLE001 - torn pickle from a kill
                return
            if message is None:
                return
            kind, job_id, payload, compute_s = message
            if kind == "ready":
                ready.set()
                continue
            if kind == "init_error":
                with self._lock:
                    self._init_errors.append(payload)
                continue
            with self._lock:
                ticket = self._inflight.pop(job_id, None)
                if ticket is None:
                    continue  # late result from a killed incarnation
                self._outstanding[ticket.worker_index] = max(
                    0, self._outstanding[ticket.worker_index] - 1)
                self._per_worker_jobs[slot.index] += 1
                if kind == "done":
                    self.completed += 1
                else:
                    self.failed += 1
            roundtrip = perf_counter() - ticket.submitted_at
            if self._roundtrip_hist is not None:
                self._roundtrip_hist.observe(roundtrip * 1000.0)
                self._overhead_hist.observe(
                    max(0.0, roundtrip - compute_s) * 1000.0)
            if kind == "done":
                ticket._resolve(payload, compute_s)
            else:
                reason, detail = payload
                if reason == "no_path":
                    source, target = detail
                    ticket._fail(NoPathError(source, target))
                else:
                    ticket._fail(ExecError(
                        f"worker {slot.index} failed {ticket.kind!r} "
                        f"job: {detail}"))

    def _watch(self) -> None:
        while not self._stop.wait(_MONITOR_INTERVAL_S):
            for slot in self._slots:
                process = slot.process
                if process is None or process.is_alive():
                    continue
                if self._stop.is_set():
                    return
                exitcode = process.exitcode
                index = slot.index
                with self._lock:
                    doomed = [job_id for job_id, ticket
                              in self._inflight.items()
                              if ticket.worker_index == index]
                    self.respawns += 1
                for job_id in doomed:
                    self._fail_ticket(job_id, ExecError(
                        f"worker {index} died (exit code {exitcode}) "
                        "with the job in flight; respawning"))
                with self._lock:
                    self._outstanding[index] = 0
                    if not slot.ready.is_set():
                        self._early_deaths[index] += 1
                    if self._early_deaths[index] >= 3:
                        self._init_errors.append(
                            f"worker {index} keeps dying during warmup "
                            f"(exit code {exitcode}); slot abandoned")
                        slot.process = None
                        continue
                    slot.generation += 1
                self._spawn(slot)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, object]:
        with self._lock:
            outstanding = list(self._outstanding)
            return {
                "workers": self.workers,
                "alive": sum(1 for slot in self._slots
                             if slot.process is not None
                             and slot.process.is_alive()),
                "busy": sum(1 for n in outstanding if n > 0),
                "outstanding": sum(outstanding),
                "dispatched": self.dispatched,
                "completed": self.completed,
                "failed": self.failed,
                "timeouts": self.timeouts,
                "respawns": self.respawns,
                "per_worker_jobs": list(self._per_worker_jobs),
            }
