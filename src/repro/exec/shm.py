"""Shared-memory segments for the execution plane.

A *segment* is one ``multiprocessing.shared_memory`` block holding a
set of named numpy arrays plus a JSON header, laid out as::

    [u64 header length][JSON header][pad to 64][array 0][pad][array 1]...

The header records a content *key* (e.g. ``csr:<fingerprint digest>``
or ``weights:<version>:<weight_version>``) and per-array descriptors
(name, dtype, shape, byte offset).  Attaching validates the key, so a
worker can never silently score against stale hot-state: after a model
swap or graph rebuild the key changes and the old segment is rejected
with :class:`~repro.errors.StaleSegmentError`.

Ownership is explicit: the process that called :func:`create_segment`
owns the block and is the only one that unlinks it (idempotently, and
via ``atexit`` as a backstop).  Attachers get zero-copy read-only numpy
views and are refcounted *per process* — a second attach of the same
name reuses the existing mapping, and the mapping closes only when the
last attachment is detached.

Segment names all start with :data:`SEGMENT_PREFIX` so a test suite can
assert that no ``/dev/shm/repro-exec-*`` block outlives its owner
(:func:`list_repro_segments`).
"""

from __future__ import annotations

import atexit
import json
import os
import struct
import threading
import uuid
from multiprocessing import shared_memory

import numpy as np

from repro.errors import ExecError, StaleSegmentError

__all__ = ["SEGMENT_PREFIX", "SharedArena", "SharedSegment",
           "AttachedSegment", "create_segment", "attach_segment",
           "list_repro_segments"]

#: Common prefix of every segment created here; the leak-check globs it.
SEGMENT_PREFIX = "repro-exec-"

_HEADER_LEN = struct.Struct("<Q")
_ALIGN = 64


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _plan_layout(arrays: dict[str, np.ndarray], key: str,
                 meta: dict[str, object]) -> tuple[bytes, list[dict], int]:
    """Header bytes, per-array descriptors, and total segment size."""
    descriptors: list[dict] = []
    # First pass with offset 0 to learn the header's encoded size; the
    # header length itself is stable because offsets are re-encoded at
    # fixed width below.
    for name, array in arrays.items():
        if not isinstance(array, np.ndarray):
            raise ExecError(f"segment array {name!r} is not a numpy array")
        descriptors.append({
            "name": name,
            "dtype": str(array.dtype),
            "shape": list(array.shape),
            "offset": 0,
        })
    probe = json.dumps({"key": key, "meta": meta, "arrays": descriptors},
                       sort_keys=True).encode("utf-8")
    # Reserve generous fixed width for each offset (u64 decimal).
    header_budget = len(probe) + 24 * len(descriptors) + 64
    cursor = _align(_HEADER_LEN.size + header_budget)
    for descriptor, array in zip(descriptors, arrays.values()):
        descriptor["offset"] = cursor
        cursor = _align(cursor + array.nbytes)
    header = json.dumps({"key": key, "meta": meta, "arrays": descriptors},
                        sort_keys=True).encode("utf-8")
    if _HEADER_LEN.size + len(header) > descriptors[0]["offset"]:
        raise ExecError("segment header overflowed its reserved space")
    return header, descriptors, cursor


def _views(buf, descriptors: list[dict]) -> dict[str, np.ndarray]:
    views: dict[str, np.ndarray] = {}
    for descriptor in descriptors:
        dtype = np.dtype(descriptor["dtype"])
        shape = tuple(descriptor["shape"])
        count = int(np.prod(shape)) if shape else 1
        view = np.frombuffer(buf, dtype=dtype, count=count,
                             offset=descriptor["offset"]).reshape(shape)
        views[descriptor["name"]] = view
    return views


class SharedSegment:
    """An *owned* shared-memory segment (create side).

    The owner keeps the block alive; :meth:`close` (or interpreter
    exit) unlinks it.  ``arrays`` are writable views — callers fill
    them once at publish time and treat them as immutable afterwards.
    """

    def __init__(self, shm: shared_memory.SharedMemory, key: str,
                 meta: dict[str, object],
                 arrays: dict[str, np.ndarray]) -> None:
        self._shm = shm
        self.name = shm.name
        self.key = key
        self.meta = meta
        self.arrays = arrays
        self.nbytes = shm.size
        self._closed = False

    def close(self) -> None:
        """Unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        # Drop numpy views before closing the mapping, else BufferError.
        self.arrays = {}
        try:
            self._shm.close()
        except (OSError, BufferError):
            # A caller still holds a view into the mapping; the OS
            # reclaims it at exit — stop the destructor retrying (and
            # spraying unraisable BufferErrors) at GC time.
            self._shm.close = lambda: None
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        _OWNED.discard(self)

    @property
    def closed(self) -> bool:
        return self._closed


class AttachedSegment:
    """A read-only, per-process-refcounted attachment (attach side)."""

    def __init__(self, record: "_Attachment") -> None:
        self._record = record
        self.name = record.name
        self.key = record.key
        self.meta = record.meta
        self.arrays = record.arrays
        self._detached = False

    @property
    def refs(self) -> int:
        return self._record.refs

    def detach(self) -> None:
        """Give back one attachment reference (idempotent per handle)."""
        if self._detached:
            return
        self._detached = True
        self.arrays = {}
        self._record.release()


class _Attachment:
    """Per-process shared mapping of one segment name."""

    def __init__(self, name: str) -> None:
        shm = shared_memory.SharedMemory(name=name)
        # CPython 3.11's resource tracker registers *every* opened
        # block.  Our attachers are either the owner process itself or
        # its spawn children, and both share the owner's tracker
        # process, whose cache is a per-name *set*: the attach-side
        # registration is a no-op there, and the owner's unlink
        # unregisters the name exactly once.  Unregistering here would
        # therefore drop the owner's entry and unbalance its unlink —
        # so, deliberately, nothing to do.
        header_len, = _HEADER_LEN.unpack_from(shm.buf, 0)
        header = json.loads(
            bytes(shm.buf[_HEADER_LEN.size:_HEADER_LEN.size + header_len])
            .decode("utf-8"))
        self.name = name
        self.key = header["key"]
        self.meta = header["meta"]
        self.arrays = _views(shm.buf, header["arrays"])
        for view in self.arrays.values():
            view.flags.writeable = False
        self._shm = shm
        self.refs = 0

    def release(self) -> None:
        with _ATTACH_LOCK:
            self.refs -= 1
            if self.refs > 0:
                return
            _ATTACHED.pop(self.name, None)
        self.arrays = {}
        try:
            self._shm.close()
        except (OSError, BufferError):
            # Same as the owner side: a still-exported view makes the
            # mapping unclosable until GC; neuter the destructor so it
            # does not retry and raise unraisably.
            self._shm.close = lambda: None


_OWNED: set[SharedSegment] = set()
_ATTACHED: dict[str, _Attachment] = {}
_ATTACH_LOCK = threading.Lock()


@atexit.register
def _cleanup_owned() -> None:
    for segment in list(_OWNED):
        segment.close()
    # Attachment mappings cannot be closed while kernels still hold
    # numpy views into them (BufferError), and at interpreter exit the
    # OS reclaims the mapping anyway — neuter the finalizer so shutdown
    # GC does not spray "cannot close exported pointers exist" noise.
    with _ATTACH_LOCK:
        for record in _ATTACHED.values():
            record._shm.close = lambda: None


def create_segment(key: str, arrays: dict[str, np.ndarray],
                   meta: dict[str, object] | None = None) -> SharedSegment:
    """Create and fill a segment; the caller becomes its owner."""
    if not arrays:
        raise ExecError("a segment needs at least one array")
    meta = dict(meta or {})
    header, descriptors, size = _plan_layout(arrays, key, meta)
    name = f"{SEGMENT_PREFIX}{os.getpid():x}-{uuid.uuid4().hex[:10]}"
    shm = shared_memory.SharedMemory(name=name, create=True, size=size)
    _HEADER_LEN.pack_into(shm.buf, 0, len(header))
    shm.buf[_HEADER_LEN.size:_HEADER_LEN.size + len(header)] = header
    views = _views(shm.buf, descriptors)
    for array_name, array in arrays.items():
        views[array_name][...] = array
    segment = SharedSegment(shm, key, meta, views)
    _OWNED.add(segment)
    return segment


def attach_segment(name: str,
                   expect_key: str | None = None) -> AttachedSegment:
    """Attach to an existing segment by name, zero-copy.

    ``expect_key`` is the staleness guard: mismatch raises
    :class:`StaleSegmentError` without taking a reference.
    """
    with _ATTACH_LOCK:
        record = _ATTACHED.get(name)
        if record is None:
            try:
                record = _Attachment(name)
            except FileNotFoundError:
                raise ExecError(
                    f"shared segment {name!r} does not exist "
                    "(owner gone or already unlinked)") from None
            _ATTACHED[name] = record
        record.refs += 1
    if expect_key is not None and record.key != expect_key:
        handle = AttachedSegment(record)
        handle.detach()
        raise StaleSegmentError(
            f"shared segment {name!r} carries key {record.key!r}, "
            f"expected {expect_key!r} — stale hot-state rejected")
    return AttachedSegment(record)


def attached_refs(name: str) -> int:
    """This process's live reference count on ``name`` (0 if unmapped)."""
    with _ATTACH_LOCK:
        record = _ATTACHED.get(name)
        return record.refs if record is not None else 0


def list_repro_segments() -> list[str]:
    """Names of live ``repro-exec-*`` segments on this host.

    Reads ``/dev/shm`` directly (POSIX); used by the leak-check
    fixture to assert the suite tears down every segment it created.
    """
    root = "/dev/shm"
    try:
        entries = os.listdir(root)
    except OSError:
        return []
    return sorted(entry for entry in entries
                  if entry.startswith(SEGMENT_PREFIX))


class SharedArena:
    """Keyed registry of owned segments with publish-once semantics.

    The serving side publishes hot-state by content key (graph
    fingerprint, weight version); re-publishing an existing key is a
    no-op returning the live segment, so a scoring proxy can call
    :meth:`publish` per flush without churn.  :meth:`drop` unlinks one
    key (model deactivation), :meth:`close` unlinks everything.
    """

    def __init__(self) -> None:
        self._segments: dict[str, SharedSegment] = {}
        self._lock = threading.Lock()

    def publish(self, key: str, arrays: dict[str, np.ndarray],
                meta: dict[str, object] | None = None) -> SharedSegment:
        with self._lock:
            segment = self._segments.get(key)
            if segment is not None and not segment.closed:
                return segment
            segment = create_segment(key, arrays, meta)
            self._segments[key] = segment
            return segment

    def get(self, key: str) -> SharedSegment | None:
        with self._lock:
            segment = self._segments.get(key)
            return segment if segment is not None and not segment.closed \
                else None

    def drop(self, key: str) -> bool:
        """Unlink the segment under ``key`` (False if absent)."""
        with self._lock:
            segment = self._segments.pop(key, None)
        if segment is None:
            return False
        segment.close()
        return True

    def drop_where(self, predicate) -> int:
        """Unlink every segment whose key satisfies ``predicate``."""
        with self._lock:
            doomed = [key for key in self._segments if predicate(key)]
        return sum(1 for key in doomed if self.drop(key))

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(key for key, segment in self._segments.items()
                          if not segment.closed)

    def close(self) -> None:
        with self._lock:
            segments = list(self._segments.values())
            self._segments.clear()
        for segment in segments:
            segment.close()

    def stats(self) -> dict[str, object]:
        with self._lock:
            live = {key: segment for key, segment in self._segments.items()
                    if not segment.closed}
            return {
                "segments": len(live),
                "bytes": sum(segment.nbytes for segment in live.values()),
                "keys": sorted(live),
            }
