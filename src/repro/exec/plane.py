"""The execution-plane seam between serving and the worker pool.

:class:`ExecutionPlane` owns the shared hot-state (a
:class:`~repro.exec.shm.SharedArena` of CSR and weight segments) and
the :class:`~repro.exec.pool.WorkerPool`, and exposes exactly the two
operations the serving layer fans out:

- ``submit_candidates(state)`` / ``candidates_for(state)`` — cold
  candidate generation for a full-network query, returning real
  :class:`~repro.graph.path.Path` objects rebuilt from the workers'
  bare vertex tuples (paths are never pickled across the boundary —
  they drag the whole network with them).
- ``submit_score_group`` / :meth:`scoring_proxy` — scoring chunks on
  worker processes.  The proxy duck-types ``PathRank``'s
  ``score_paths`` surface, so :class:`BatchingScorer` (and with it
  dedup, the score cache, retries, breakers and per-request
  degradation) runs unmodified in the parent while only the padded
  forward passes leave the process.

Weight segments are published lazily per ``(version, weight_version)``
and unlinked when the serving layer reports a registry deactivation
(:meth:`on_deactivate`), so a hot-swap cannot leak superseded weights
into ``/dev/shm``.  CSR export happens once, after force-building the
ALT landmark tables owner-side — landmark selection is randomised, so
replicas must inherit the owner's tables for element-wise ranking
parity.
"""

from __future__ import annotations

import threading
from time import perf_counter

import numpy as np

from repro.errors import ExecError
from repro.exec.pool import WorkerPool
from repro.exec.shm import SharedArena
from repro.graph.csr import ALT_MIN_VERTICES, csr_for, resolve_backend
from repro.graph.path import Path
from repro.nn.fused import compiled_for, resolve_scoring_backend

__all__ = ["ExecutionPlane"]

#: Fallback waiter deadline when a request carries no budget.
DEFAULT_TIMEOUT_S = 30.0


class _PoolModel:
    """Model-shaped scoring proxy dispatching chunks to the pool.

    Quacks like ``PathRank`` for :class:`BatchingScorer.flush`:
    ``score_paths(chunk)`` and the fan-out hook
    ``score_paths_many(chunks)``.  Scores come back as float64 arrays
    bitwise-equal to the parent's fused kernel output (same buffers,
    same per-bucket padding, same arithmetic).
    """

    __slots__ = ("_plane", "_segment_name", "_key", "_deadline_at")

    def __init__(self, plane: "ExecutionPlane", segment_name: str,
                 key: str, deadline_ms: float | None) -> None:
        self._plane = plane
        self._segment_name = segment_name
        self._key = key
        self._deadline_at = (
            perf_counter() + deadline_ms / 1000.0
            if deadline_ms is not None else None)

    def _remaining_s(self) -> float:
        if self._deadline_at is None:
            return DEFAULT_TIMEOUT_S
        return max(0.0, self._deadline_at - perf_counter())

    def score_paths_many(self, chunks) -> list[np.ndarray]:
        tickets = [
            self._plane.pool.submit(
                "score",
                (self._segment_name, self._key,
                 [[path.vertices for path in chunk]]))
            for chunk in chunks
        ]
        results = []
        for ticket in tickets:
            scored = ticket.wait(self._remaining_s())
            results.append(np.asarray(scored[0], dtype=np.float64))
        return results

    def score_paths(self, paths) -> np.ndarray:
        return self.score_paths_many([paths])[0]


class ExecutionPlane:
    """Shared arena + worker pool behind ``execution="processes"``."""

    def __init__(self, network, *, workers: int, faults=None, metrics=None,
                 warm: bool = True,
                 ready_timeout_s: float = 120.0) -> None:
        self.network = network
        kernel = csr_for(network)
        if kernel.num_vertices >= ALT_MIN_VERTICES:
            # Build the landmark tables owner-side *before* export:
            # selection starts from a random vertex, and a replica
            # picking its own landmarks could break distance ties
            # differently — the parity oracle pins this.
            kernel.ensure_alt()
        if resolve_backend(None) == "ch":
            # Same owner-side-before-export rule for the CH lane: the
            # hierarchy rides the shared payload, so replicas attach the
            # exact same shortcut graph instead of re-contracting (build
            # order is deterministic, but paying the build per worker
            # would defeat the shared arena).
            kernel.ensure_ch()
        self.arena = SharedArena()
        arrays, meta = kernel.shared_payload()
        self._csr_key = kernel.shared_key()
        segment = self.arena.publish(self._csr_key, arrays, meta)
        self.pool = WorkerPool(network, workers=workers,
                               csr_name=segment.name, csr_key=self._csr_key,
                               faults=faults, metrics=metrics,
                               ready_timeout_s=ready_timeout_s)
        self._lock = threading.Lock()
        #: model version -> weight segment keys, for deactivation pruning.
        self._weight_keys: dict[str, set[str]] = {}
        self._closed = False
        if warm:
            try:
                self.pool.wait_ready(ready_timeout_s)
            except ExecError:
                self.close()
                raise

    # ------------------------------------------------------------------
    # Candidate generation
    # ------------------------------------------------------------------
    def submit_candidates(self, state):
        """Dispatch one state's cold candidate generation to the pool."""
        request = state.request
        return self.pool.submit(
            "candidates", (request.source, request.target, state.config))

    def candidates_for(self, state) -> list[Path]:
        """Generate candidates on a worker; blocks within the deadline.

        Raises :class:`~repro.errors.NoPathError` exactly as the inline
        generator would, and :class:`~repro.errors.ExecError` for pool
        failures (which the caller treats as any transient failure).
        """
        ticket = self.submit_candidates(state)
        remaining = state.remaining_ms()
        timeout_s = (remaining / 1000.0 if remaining is not None
                     else DEFAULT_TIMEOUT_S)
        vertex_lists = ticket.wait(timeout_s)
        return [Path(self.network, vertices) for vertices in vertex_lists]

    # ------------------------------------------------------------------
    # Batch analytics
    # ------------------------------------------------------------------
    def submit_analytics(self, payload: dict):
        """Dispatch one batch-analytics tile to the pool.

        ``payload`` is a :mod:`repro.analytics.tiling` wire dict (plain
        ids and a cost *name*, never a callable — custom cost closures
        cannot cross the process boundary).  The worker runs the tile
        against the shared-memory kernel it attached at warmup and
        returns plain lists; see ``run_tile_payload`` for the formats.
        """
        return self.pool.submit("analytics", payload)

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    @property
    def scoring_enabled(self) -> bool:
        """Process scoring needs the fused backend (workers rebuild
        :class:`CompiledPathRank` from shared buffers; the reference
        module forward stays owner-side)."""
        return resolve_scoring_backend() == "fused"

    def ensure_weights(self, active) -> tuple[str, str]:
        """Publish ``active``'s compiled weights; returns (name, key)."""
        kernel = compiled_for(active.model)
        key = (f"weights:{active.version}:{kernel.weight_version}:"
               f"{kernel.dtype}")
        segment = self.arena.get(key)
        if segment is None:
            arrays, meta = kernel.shared_payload()
            segment = self.arena.publish(key, arrays, meta)
            with self._lock:
                self._weight_keys.setdefault(active.version, set()).add(key)
        return segment.name, key

    def scoring_proxy(self, active,
                      deadline_ms: float | None = None) -> _PoolModel:
        """A model stand-in scoring ``active``'s snapshot on the pool."""
        name, key = self.ensure_weights(active)
        return _PoolModel(self, name, key, deadline_ms)

    def submit_score_group(self, active, chunks):
        """Dispatch one scoring job per chunk; returns the tickets."""
        name, key = self.ensure_weights(active)
        return [
            self.pool.submit("score",
                             (name, key,
                              [[path.vertices for path in chunk]]))
            for chunk in chunks
        ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_deactivate(self, version: str) -> int:
        """Unlink the weight segments of a deactivated model version."""
        with self._lock:
            keys = self._weight_keys.pop(version, set())
        return sum(1 for key in keys if self.arena.drop(key))

    def set_faults(self, faults) -> None:
        self.pool.faults = faults

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.pool.close()
        self.arena.close()

    def stats(self) -> dict[str, object]:
        return {
            "pool": self.pool.stats(),
            "arena": self.arena.stats(),
        }
