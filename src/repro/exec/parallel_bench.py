"""Execution-plane benchmark: process-pool serving vs inline/threads.

Times the PR-8 execution plane — shared-memory CSR + compiled weights
behind a spawn worker pool — against the inline and thread-fanout modes
of the same :class:`RankingService`, and writes the result as
``BENCH_parallel.json``:

* **pool microbench** — round-trip latency of no-op ``ping`` jobs
  through the dispatch queue + drainer path, plus the shared arena's
  segment inventory (what one worker attachment actually costs);
* **scaling sweep** — the same closed-loop Zipf workload driven through
  ``execution="processes"`` at each configured worker count, with
  per-count throughput and the speedup curve relative to one worker.
  The machine's core count is recorded alongside: on a single-core
  host the sweep measures dispatch overhead, not parallelism, so the
  full-scale >= 2x speedup floor only arms when ``cores >= 2``;
* **parity oracle** — synchronous responses from the processes arm
  (at the largest worker count) and the threads arm must be
  element-wise identical to inline serving: same ``served_by``, same
  versions, same candidate orderings, scores within float32 roundoff
  (in practice bitwise equal — workers mirror the fused scoring branch
  exactly);
* **dormant inline** — a service constructed with the new
  ``execution``/``workers`` fields left at their defaults vs one naming
  ``execution="inline"`` explicitly: both must serve at parity speed,
  proving the plane costs nothing until asked for;
* **shm hygiene** — after every arm is closed, ``/dev/shm`` must hold
  no ``repro-exec-*`` segment.

Consumed by ``benchmarks/bench_parallel.py`` (standalone + pytest smoke
mode) and the ``bench-parallel`` CLI subcommand, mirroring
``serving_bench`` / ``sharding_bench`` / ``robustness_bench``.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path as FilePath

import numpy as np

from repro.errors import DataError
from repro.exec.shm import list_repro_segments
from repro.graph.builders import north_jutland_like
from repro.ranking.training_data import Strategy, TrainingDataConfig
from repro.serving.engine import ServingEngine
from repro.serving.instrumentation import percentile
from repro.serving.loadgen import (
    WorkloadConfig,
    generate_workload,
    run_engine_workload,
)
from repro.serving.registry import ModelRegistry
from repro.serving.service import RankingService, ServingConfig
from repro.serving.serving_bench import PARITY_LIMIT, build_random_ranker

__all__ = [
    "ParallelBenchConfig",
    "smoke_config",
    "full_config",
    "apply_overrides",
    "run_parallel_benchmark",
    "validate_report",
    "write_report",
]

SCHEMA_VERSION = 1

#: Full-scale speedup floor at the largest worker count — only armed
#: when the host actually has >= 2 cores (see ``speedup_assertion``).
SPEEDUP_TARGET = 2.0


@dataclass(frozen=True)
class ParallelBenchConfig:
    """Knobs of one execution-plane benchmark run."""

    num_towns: int = 4
    seed: int = 11
    embedding_dim: int = 64
    hidden_size: int = 64
    fc_hidden: int = 32
    k: int = 8
    diversity_threshold: float = 0.8
    examine_limit: int = 100
    num_requests: int = 200
    num_hotspots: int = 24
    zipf_exponent: float = 1.1
    candidate_cache_size: int = 2048
    score_cache_size: int = 8192
    concurrency: int = 16
    flush_deadline_ms: float = 4.0
    max_batch_size: int = 128
    #: Worker counts swept by the ``execution="processes"`` arm; the
    #: largest one also serves the parity oracle and the microbench.
    worker_counts: tuple[int, ...] = (1, 2, 4)
    pool_pings: int = 50
    repeats: int = 2
    preset: str = "full"

    def __post_init__(self) -> None:
        if self.num_towns < 1:
            raise ValueError(f"num_towns must be >= 1, got {self.num_towns}")
        if self.num_requests < 1 or self.num_hotspots < 1:
            raise ValueError("num_requests and num_hotspots must be >= 1")
        if self.concurrency < 1 or self.repeats < 1:
            raise ValueError("concurrency and repeats must be >= 1")
        if not self.worker_counts:
            raise ValueError("worker_counts must name at least one count")
        if any(count < 1 for count in self.worker_counts):
            raise ValueError(
                f"worker counts must be >= 1, got {self.worker_counts}")
        if self.pool_pings < 1:
            raise ValueError(f"pool_pings must be >= 1, got {self.pool_pings}")


def smoke_config() -> ParallelBenchConfig:
    """Tiny preset for the tier-1 pytest wrapper: one spawn generation
    per arm, a small model, few requests — a handful of seconds
    dominated by worker start-up, still exercising dispatch, scoring
    round-trips, parity, and segment teardown."""
    return ParallelBenchConfig(num_towns=2, seed=7, embedding_dim=32,
                               hidden_size=32, fc_hidden=16, k=3,
                               examine_limit=30, num_requests=24,
                               num_hotspots=6, candidate_cache_size=512,
                               score_cache_size=2048, concurrency=4,
                               flush_deadline_ms=1.0, max_batch_size=24,
                               worker_counts=(1, 2), pool_pings=8,
                               repeats=1, preset="smoke")


def full_config() -> ParallelBenchConfig:
    """The headline preset behind the committed ``BENCH_parallel.json``."""
    return ParallelBenchConfig()


def _parse_worker_counts(workers) -> tuple[int, ...]:
    """``"1,2,4"`` (the CLI form) or any int iterable -> sorted tuple."""
    if isinstance(workers, str):
        try:
            counts = tuple(int(part) for part in workers.split(",") if part)
        except ValueError:
            raise DataError(
                f"--workers must be a comma-separated list of ints, "
                f"got {workers!r}") from None
    elif isinstance(workers, int):
        counts = (workers,)
    else:
        counts = tuple(int(count) for count in workers)
    if not counts:
        raise DataError("--workers named no worker counts")
    return tuple(sorted(set(counts)))


def apply_overrides(
    config: ParallelBenchConfig,
    requests: int | None = None,
    workers=None,
    k: int | None = None,
    seed: int | None = None,
) -> ParallelBenchConfig:
    """Apply the command-line overrides shared by the ``bench-parallel``
    CLI subcommand and the standalone benchmark entry point."""
    overrides: dict[str, object] = {}
    if requests is not None:
        overrides["num_requests"] = requests
    if workers is not None:
        overrides["worker_counts"] = _parse_worker_counts(workers)
    if k is not None:
        overrides["k"] = k
    if seed is not None:
        overrides["seed"] = seed
    return replace(config, **overrides) if overrides else config


# ----------------------------------------------------------------------
# Fixture assembly
# ----------------------------------------------------------------------
def _candidates(config: ParallelBenchConfig) -> TrainingDataConfig:
    return TrainingDataConfig(strategy=Strategy.D_TKDI, k=config.k,
                              diversity_threshold=config.diversity_threshold,
                              examine_limit=config.examine_limit)


def _serving_config(config: ParallelBenchConfig,
                    **execution) -> ServingConfig:
    return ServingConfig(
        candidates=_candidates(config),
        candidate_cache_size=config.candidate_cache_size,
        score_cache_size=config.score_cache_size,
        max_batch_size=config.max_batch_size,
        concurrency=config.concurrency,
        flush_deadline_ms=config.flush_deadline_ms,
        **execution,
    )


def _make_service(config: ParallelBenchConfig, network, ranker,
                  root: FilePath, **execution) -> RankingService:
    registry = ModelRegistry(root, network)
    registry.publish(ranker, version="bench-a")
    service = RankingService(network, registry,
                             _serving_config(config, **execution))
    service.activate("bench-a")
    return service


def _best_engine_run(config: ParallelBenchConfig, service, workload) -> dict:
    """Closed-loop drive, best elapsed over ``repeats`` (fresh engine
    each repeat so close/drain costs are not carried across runs)."""
    best: dict = {}
    for _ in range(config.repeats):
        engine = ServingEngine(service, concurrency=config.concurrency,
                               flush_deadline_ms=config.flush_deadline_ms,
                               max_batch_size=config.max_batch_size)
        summary = run_engine_workload(engine, workload,
                                      concurrency=config.concurrency)
        engine.close()
        if not best or summary["elapsed_s"] < best["elapsed_s"]:
            best = summary
    return best


def _pool_microbench(plane, pings: int) -> dict:
    """Round-trip latency of no-op jobs through submit -> drainer."""
    latencies_ms = []
    for _ in range(pings):
        began = time.perf_counter()
        plane.pool.submit("ping", None).wait(timeout_s=30.0)
        latencies_ms.append((time.perf_counter() - began) * 1000.0)
    arena = plane.arena.stats()
    return {
        "pings": pings,
        "roundtrip_ms": {
            "mean": float(np.mean(latencies_ms)),
            "p50": percentile(latencies_ms, 50.0),
            "p95": percentile(latencies_ms, 95.0),
        },
        "arena": arena,
    }


def _compare(responses, inline_responses) -> dict:
    """Element-wise comparison against the inline oracle."""
    mismatches = 0
    max_diff = 0.0
    for mine, theirs in zip(responses, inline_responses):
        identical = (mine.served_by == theirs.served_by
                     and mine.model_version == theirs.model_version
                     and mine.error == theirs.error
                     and [r.path.vertices for r in mine.results]
                     == [r.path.vertices for r in theirs.results])
        if not identical:
            mismatches += 1
            continue
        for a, b in zip(mine.results, theirs.results):
            max_diff = max(max_diff, abs(a.score - b.score))
    return {
        "requests": len(inline_responses),
        "mismatches": mismatches,
        "max_abs_score_diff": max_diff,
    }


# ----------------------------------------------------------------------
# The benchmark
# ----------------------------------------------------------------------
def run_parallel_benchmark(config: ParallelBenchConfig | None = None) -> dict:
    """Benchmark the execution plane at the configured scale."""
    config = config or full_config()
    cores = os.cpu_count() or 1
    network = north_jutland_like(num_towns=config.num_towns, seed=config.seed)
    workload = generate_workload(
        network,
        WorkloadConfig(num_requests=config.num_requests,
                       num_hotspots=config.num_hotspots,
                       zipf_exponent=config.zipf_exponent),
        rng=config.seed)

    # One set of weights behind every arm: parity compares like with like.
    ranker = build_random_ranker(
        network, embedding_dim=config.embedding_dim,
        hidden_size=config.hidden_size, fc_hidden=config.fc_hidden,
        candidates=_candidates(config), seed=0)

    max_workers = max(config.worker_counts)
    with tempfile.TemporaryDirectory() as tmp_root:
        root = FilePath(tmp_root)

        # -- inline arms: the oracle and the dormant-seam check --------
        baseline = _make_service(config, network, ranker, root / "baseline")
        dormant = _make_service(config, network, ranker, root / "dormant",
                                execution="inline", workers=max_workers)
        baseline.warm_up(workload)
        dormant.warm_up(workload)
        baseline_run = _best_engine_run(config, baseline, workload)
        dormant_run = _best_engine_run(config, dormant, workload)
        inline_responses = baseline.rank_batch(workload)
        dormant.close()

        # -- thread fan-out arm ----------------------------------------
        threads = _make_service(config, network, ranker, root / "threads",
                                execution="threads", workers=max_workers)
        threads.warm_up(workload)
        threads_run = _best_engine_run(config, threads, workload)
        threads_parity = _compare(threads.rank_batch(workload),
                                  inline_responses)
        threads.close()

        # -- process-pool scaling sweep --------------------------------
        sweep = []
        processes_parity = None
        pool_micro = None
        exec_stats: dict = {}
        for workers in config.worker_counts:
            service = _make_service(config, network, ranker,
                                    root / f"processes-{workers}",
                                    execution="processes", workers=workers)
            service.warm_up(workload)
            run = _best_engine_run(config, service, workload)
            if workers == max_workers:
                processes_parity = _compare(service.rank_batch(workload),
                                            inline_responses)
                pool_micro = _pool_microbench(service.plane,
                                              config.pool_pings)
                exec_stats = service.stats().get("execution", {})
            sweep.append({
                "workers": workers,
                "elapsed_s": run["elapsed_s"],
                "throughput_qps": run["throughput_qps"],
                "latency_ms": run["latency_ms"],
            })
            service.close()

        baseline.close()
        leaked = list_repro_segments()

    qps_by_workers = {entry["workers"]: entry["throughput_qps"]
                      for entry in sweep}
    base_qps = qps_by_workers[min(config.worker_counts)]
    for entry in sweep:
        entry["speedup_vs_min_workers"] = (
            entry["throughput_qps"] / base_qps if base_qps > 0 else math.inf)
    achieved = sweep[-1]["speedup_vs_min_workers"]
    # The honest gate: a single-core host cannot run two CPU-bound
    # workers at once, so demanding a >= 2x speedup there would only
    # document scheduler noise.  The floor arms when cores >= 2 and the
    # sweep spans >= 2 worker counts at full scale.
    required = (config.preset == "full" and cores >= 2
                and len(config.worker_counts) >= 2)
    speedup_assertion = {
        "required": required,
        "target": SPEEDUP_TARGET,
        "workers": max_workers,
        "achieved": achieved,
        "note": (f"enforced: host has {cores} cores"
                 if required else
                 f"skipped: preset={config.preset!r}, cores={cores} "
                 f"(needs full preset, >= 2 cores, >= 2 worker counts)"),
    }

    report = {
        "schema_version": SCHEMA_VERSION,
        "preset": config.preset,
        "config": asdict(config),
        "network": {"vertices": network.num_vertices,
                    "edges": network.num_edges},
        "cores": cores,
        "pool": pool_micro,
        "scaling": {
            "requests": len(workload),
            "sweep": sweep,
            "speedup_assertion": speedup_assertion,
        },
        "parity": {
            "processes": processes_parity,
            "threads": threads_parity,
        },
        "dormant_inline": {
            "baseline_qps": baseline_run["throughput_qps"],
            "explicit_inline_qps": dormant_run["throughput_qps"],
            "throughput_ratio": (
                dormant_run["throughput_qps"]
                / baseline_run["throughput_qps"]
                if baseline_run["throughput_qps"] > 0 else math.inf),
        },
        "exec_stats": exec_stats,
        "shm": {"leaked_segments": leaked},
    }
    report["headline"] = {
        "cores": cores,
        "inline_qps": baseline_run["throughput_qps"],
        "processes_qps_at_max_workers": sweep[-1]["throughput_qps"],
        "threads_qps": threads_run["throughput_qps"],
        "speedup_at_max_workers": achieved,
        "speedup_enforced": required,
        "processes_mismatches": processes_parity["mismatches"],
        "threads_mismatches": threads_parity["mismatches"],
        "dormant_inline_ratio":
            report["dormant_inline"]["throughput_ratio"],
        "leaked_segments": len(leaked),
    }
    validate_report(report)
    return report


# ----------------------------------------------------------------------
# Report schema
# ----------------------------------------------------------------------
_TOP_KEYS = ("schema_version", "preset", "config", "network", "cores",
             "pool", "scaling", "parity", "dormant_inline", "exec_stats",
             "shm", "headline")
_NUMERIC_BLOCKS = {
    "dormant_inline": ("baseline_qps", "explicit_inline_qps",
                       "throughput_ratio"),
    "headline": ("cores", "inline_qps", "processes_qps_at_max_workers",
                 "threads_qps", "speedup_at_max_workers",
                 "processes_mismatches", "threads_mismatches",
                 "dormant_inline_ratio", "leaked_segments"),
}


def validate_report(report: dict) -> None:
    """Check a report parses as valid ``BENCH_parallel.json``.

    Raises :class:`DataError` on a malformed document, a parity
    violation, a leaked shared-memory segment, or — when the speedup
    floor is armed (full preset on a multi-core host) — a sub-target
    scaling curve; used both when a report is produced and by the smoke
    test against re-parsed JSON.
    """
    if report.get("schema_version") != SCHEMA_VERSION:
        raise DataError(
            f"unexpected schema_version {report.get('schema_version')!r}")
    missing = [key for key in _TOP_KEYS if key not in report]
    if missing:
        raise DataError(f"report missing keys: {missing}")
    for block, keys in _NUMERIC_BLOCKS.items():
        for key in keys:
            value = report[block].get(key)
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                raise DataError(
                    f"{block}.{key} must be a finite number, got {value!r}")
    sweep = report["scaling"]["sweep"]
    if not sweep:
        raise DataError("scaling sweep must cover >= 1 worker count")
    for entry in sweep:
        for key in ("workers", "throughput_qps", "speedup_vs_min_workers"):
            value = entry.get(key)
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                raise DataError(
                    f"sweep[workers={entry.get('workers')!r}].{key} must "
                    f"be a finite number, got {value!r}")
    roundtrip = report["pool"]["roundtrip_ms"]
    for key in ("mean", "p50", "p95"):
        value = roundtrip.get(key)
        if not isinstance(value, (int, float)) or not value >= 0.0:
            raise DataError(
                f"pool.roundtrip_ms.{key} must be >= 0, got {value!r}")
    for arm in ("processes", "threads"):
        parity = report["parity"][arm]
        if parity["requests"] < 1:
            raise DataError(f"parity oracle for {arm!r} saw no requests")
        if parity["mismatches"] != 0:
            raise DataError(
                f"parity violation: {parity['mismatches']} {arm} responses "
                f"differ from inline serving")
        if not parity["max_abs_score_diff"] <= PARITY_LIMIT:
            raise DataError(
                f"parity violation: {arm} max_abs_score_diff="
                f"{parity['max_abs_score_diff']!r}")
    leaked = report["shm"]["leaked_segments"]
    if leaked:
        raise DataError(
            f"shared-memory leak: {len(leaked)} repro-exec segments "
            f"survived teardown: {leaked}")
    assertion = report["scaling"]["speedup_assertion"]
    if assertion["required"] \
            and not assertion["achieved"] >= assertion["target"]:
        raise DataError(
            f"speedup floor violation: {assertion['achieved']:.2f}x at "
            f"{assertion['workers']} workers, target "
            f"{assertion['target']}x ({assertion['note']})")


def write_report(report: dict, path: str | FilePath) -> FilePath:
    """Validate and write the report; returns the output path."""
    validate_report(report)
    out = FilePath(path)
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return out
