"""Process-pool execution plane over shared-memory hot-state.

The serving stack's kernels (CSR routing, fused scoring) release no
GIL, so worker *threads* only amortise batching — cold candidate
generation and per-(shard, snapshot) scoring groups still execute
serially on one core.  This package takes the step past the GIL:

- :mod:`repro.exec.shm` — :class:`SharedArena` and the segment codec:
  immutable hot-state (CSR arrays, ALT landmark tables, compiled model
  weight buffers) packed into ``multiprocessing.shared_memory``
  segments keyed by graph fingerprint / ``weight_version``, attached
  zero-copy and refcounted per process.
- :mod:`repro.exec.pool` — :class:`WorkerPool`: warm, spawn-safe
  worker processes that pre-attach the CSR segment and run the
  *existing* kernels unmodified; dead workers are detected, their
  in-flight tickets failed (never hung), and the slot respawned.
- :mod:`repro.exec.plane` — :class:`ExecutionPlane`: the seam the
  serving layer talks to (``submit_candidates`` / ``submit_score_group``
  and a model-shaped scoring proxy), plus weight-segment lifecycle
  tied to registry activation.

Everything here is dormant unless ``ServingConfig.execution`` is set to
``"processes"`` — the default ``"inline"`` path is byte-identical to a
build without this package.
"""

from repro.exec.plane import ExecutionPlane
from repro.exec.pool import PoolTicket, WorkerPool
from repro.exec.shm import (
    SharedArena,
    attach_segment,
    create_segment,
    list_repro_segments,
)

__all__ = [
    "ExecutionPlane",
    "PoolTicket",
    "SharedArena",
    "WorkerPool",
    "attach_segment",
    "create_segment",
    "list_repro_segments",
]
