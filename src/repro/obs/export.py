"""Getting telemetry out of the process: JSONL time series + exposition.

Two consumers, two formats:

* **JSONL timelines** — :class:`SnapshotExporter` is a daemon thread
  that periodically calls a source's ``export()`` (a flat
  ``{name: value}`` dict, i.e. a :class:`~repro.obs.metrics.MetricsRegistry`)
  and appends one JSON line per snapshot::

      {"ts": 1754650000.12, "elapsed_s": 2.5, "metrics": {...}}

  ``ts`` is wall-clock (``time.time``), ``elapsed_s`` is monotonic
  seconds since the exporter started.  A final snapshot is always
  written on :meth:`SnapshotExporter.stop`, so even a run shorter than
  one interval leaves a usable timeline.

* **Prometheus-style text exposition** — :func:`prometheus_lines`
  renders a registry in the ``name{label="..."} value`` text format
  (dots become underscores; histograms expand to cumulative ``_bucket``
  series plus ``_sum``/``_count``), for scraping or eyeballing.

:func:`load_timeline` / :func:`summarise_timeline` read a JSONL file
back; ``repro metrics-dump`` is a thin CLI wrapper over them.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from pathlib import Path as FilePath

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["SnapshotExporter", "prometheus_lines",
           "prometheus_snapshot_lines", "load_timeline",
           "summarise_timeline"]


class SnapshotExporter:
    """Periodically append ``source.export()`` snapshots to a JSONL file.

    ``source`` is anything with an ``export() -> dict`` (usually a
    :class:`MetricsRegistry`).  The thread is a daemon and every write
    failure after the first successful open is swallowed into
    ``write_errors`` — telemetry export must never take the serving
    process down.  Usable as a context manager::

        with SnapshotExporter(service.metrics, "run.jsonl", 0.5):
            run_workload(...)
    """

    def __init__(self, source, path: str | FilePath,
                 interval_s: float = 1.0) -> None:
        if interval_s <= 0.0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.source = source
        self.path = FilePath(path)
        self.interval_s = interval_s
        self.snapshots_written = 0
        self.write_errors = 0
        self._origin = time.perf_counter()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text("")  # fresh timeline per run; fail early

    def snapshot(self) -> None:
        """Write one snapshot line right now."""
        line = json.dumps({
            "ts": time.time(),
            "elapsed_s": time.perf_counter() - self._origin,
            "metrics": self.source.export(),
        }, sort_keys=True)
        with self._lock:
            try:
                with self.path.open("a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
            except OSError:
                self.write_errors += 1
            else:
                self.snapshots_written += 1

    def start(self) -> "SnapshotExporter":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="metrics-exporter")
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.snapshot()

    def stop(self) -> None:
        """Stop the thread and flush one final snapshot."""
        thread = self._thread
        if thread is not None:
            self._stop.set()
            thread.join()
            self._thread = None
        self.snapshot()

    def __enter__(self) -> "SnapshotExporter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """A metric name the Prometheus text format accepts."""
    sanitised = _PROM_NAME_RE.sub("_", name.replace(".", "_"))
    if sanitised and sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return sanitised


def _prom_value(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        if isinstance(value, float) and math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value) if isinstance(value, float) else str(value)
    return "NaN"  # non-numeric callback payloads have no exposition value


def prometheus_lines(registry: MetricsRegistry) -> list[str]:
    """Render a registry in the Prometheus text exposition format.

    Counters/gauges become single samples with ``# TYPE`` headers;
    histograms expand into cumulative ``_bucket{le="..."}`` series plus
    ``_sum`` and ``_count``.  Callback payloads (already-flat trackers)
    are exposed as untyped gauges; non-numeric values are skipped.
    """
    lines: list[str] = []
    seen: set[str] = set()
    for name in registry.names():
        metric = registry.metric(name)
        prom = _prom_name(name)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {metric.value}")
            seen.add(name)
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_prom_value(metric.value)}")
            seen.add(name)
        elif isinstance(metric, Histogram):
            summary = metric.summary()
            lines.append(f"# TYPE {prom} histogram")
            for bound, cumulative in metric.buckets():
                le = "+Inf" if math.isinf(bound) else repr(bound)
                lines.append(f'{prom}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{prom}_sum {_prom_value(summary['sum'])}")
            lines.append(f"{prom}_count {int(summary['count'])}")
            seen.add(name)
    # Callback payloads: take them from one export() pass so the
    # exposition is a consistent snapshot.
    flat = registry.export()
    for name, value in flat.items():
        if any(name == known or name.startswith(known + ".")
               for known in seen):
            continue
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        lines.append(f"{_prom_name(name)} {_prom_value(value)}")
    return lines


def prometheus_snapshot_lines(flat: dict[str, object]) -> list[str]:
    """Render one already-flat snapshot (a timeline line's ``metrics``
    dict) as untyped exposition samples.

    Live registries go through :func:`prometheus_lines`, which knows
    metric types and bucket layouts; a recorded snapshot only has the
    flattened scalars, so ``repro metrics-dump --format prom`` emits
    them as bare samples, skipping non-numeric values.
    """
    lines: list[str] = []
    for name in sorted(flat):
        value = flat[name]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        lines.append(f"{_prom_name(name)} {_prom_value(value)}")
    return lines


def load_timeline(path: str | FilePath) -> list[dict[str, object]]:
    """Parse a :class:`SnapshotExporter` JSONL file (skipping torn lines)."""
    snapshots: list[dict[str, object]] = []
    with FilePath(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # a torn final line from a killed process
            if isinstance(record, dict) and "metrics" in record:
                snapshots.append(record)
    return snapshots


def summarise_timeline(
        snapshots: list[dict[str, object]]) -> dict[str, object]:
    """First/last deltas for every numeric series in a timeline.

    The ``repro metrics-dump`` default view: per metric, the first and
    last observed value plus the delta — which reads as "what moved
    over this run" without plotting anything.
    """
    if not snapshots:
        return {"snapshots": 0, "duration_s": 0.0, "series": {}}
    first, last = snapshots[0]["metrics"], snapshots[-1]["metrics"]
    series: dict[str, dict[str, float]] = {}
    for name in sorted(set(first) | set(last)):
        start, end = first.get(name), last.get(name)
        if not isinstance(start, (int, float)) \
                or not isinstance(end, (int, float)) \
                or isinstance(start, bool) or isinstance(end, bool):
            continue
        series[name] = {"first": start, "last": end,
                        "delta": end - start}
    return {
        "snapshots": len(snapshots),
        "duration_s": (float(snapshots[-1].get("elapsed_s", 0.0))
                       - float(snapshots[0].get("elapsed_s", 0.0))),
        "series": series,
    }
