"""Observability overhead benchmark: tracing on vs tracing off.

The telemetry plane's contract is that it may *observe* the serving
stack but not slow it down or change its answers.  This harness checks
both halves on the same Zipf-skewed OD-hotspot workload the serving
benchmark uses, and writes the result as ``BENCH_observability.json``:

* **baseline vs traced** — the same closed-loop engine workload run
  twice: once at ``trace_sample=0`` (telemetry dormant, a single
  ``None`` check per request) and once at ``trace_sample=1.0`` with
  the JSONL timeline exporter running.  Throughput is best-of-repeats
  on both arms; the headline is the traced arm's overhead fraction.
* **parity** — the traced arm's responses are checked element-wise
  against the baseline arm's (same outcome, same version, same
  ranking, scores within the float32 budget).  Tracing must be
  read-only.
* **stage breakdown** — the traced arm's per-stage p50/p95 summaries
  (``admit``, ``candidates``, ``queue_wait``, ``flush_wait``,
  ``score``, ``assemble``, ...) and its slowest-request exemplars,
  straight from the :class:`~repro.obs.trace.Tracer`.
* **timeline** — the exporter's JSONL snapshots, summarised, with the
  ``serving.requests`` series embedded so monotonicity is testable
  from the committed report alone.

Consumed by ``benchmarks/bench_observability.py`` (standalone + pytest
smoke mode) and the ``bench-observability`` CLI subcommand, mirroring
``serving.serving_bench`` / ``serving.sharding_bench``.
"""

from __future__ import annotations

import json
import math
import tempfile
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path as FilePath

from repro.errors import DataError
from repro.graph.builders import north_jutland_like
from repro.obs.export import load_timeline, summarise_timeline
from repro.ranking.training_data import Strategy, TrainingDataConfig
from repro.serving.engine import ServingEngine
from repro.serving.loadgen import (
    WorkloadConfig,
    generate_workload,
    run_engine_workload,
)
from repro.serving.registry import ModelRegistry
from repro.serving.service import RankingService, ServingConfig
from repro.serving.serving_bench import build_random_ranker

__all__ = [
    "ObservabilityBenchConfig",
    "smoke_config",
    "full_config",
    "apply_overrides",
    "run_observability_benchmark",
    "validate_report",
    "write_report",
]

SCHEMA_VERSION = 1

#: Score parity budget between the traced and baseline arms.  Both arms
#: run the identical model on the identical workload; tracing adds no
#: arithmetic, so any drift beyond float32 reduction-order noise is a
#: bug in the telemetry plane (same bound as ``serving_bench``).
PARITY_LIMIT = 1e-6

#: Stages every traced engine request must pass through; the report's
#: stage breakdown is checked against this set so a silently dropped
#: span shows up as a failed benchmark, not a quieter dashboard.
REQUIRED_STAGES = ("admit", "candidates", "queue_wait", "flush_wait",
                   "score", "assemble")


@dataclass(frozen=True)
class ObservabilityBenchConfig:
    """Knobs of one observability benchmark run."""

    num_towns: int = 6
    seed: int = 13
    embedding_dim: int = 64
    hidden_size: int = 64
    fc_hidden: int = 32
    k: int = 8
    diversity_threshold: float = 0.8
    examine_limit: int = 100
    num_requests: int = 400
    num_hotspots: int = 40
    zipf_exponent: float = 1.1
    min_hop_distance: float = 5000.0
    concurrency: int = 32
    flush_deadline_ms: float = 4.0
    max_batch_size: int = 128
    trace_exemplars: int = 8
    #: Timeline snapshot cadence for the traced arm's exporter.
    metrics_interval_s: float = 0.1
    repeats: int = 3
    #: Overhead ceiling enforced by :func:`validate_report`.  The full
    #: preset holds the <5% contract; the smoke preset runs a workload
    #: measured in hundreds of milliseconds where scheduler jitter
    #: alone exceeds 5%, so it gets a looser bound — the tight number
    #: is the committed report's job.
    overhead_limit: float = 0.05
    preset: str = "full"

    def __post_init__(self) -> None:
        if self.num_towns < 1:
            raise ValueError(f"num_towns must be >= 1, got {self.num_towns}")
        if self.num_requests < 1 or self.num_hotspots < 1:
            raise ValueError("num_requests and num_hotspots must be >= 1")
        if self.concurrency < 1 or self.repeats < 1:
            raise ValueError("concurrency and repeats must be >= 1")
        if self.trace_exemplars < 1:
            raise ValueError(
                f"trace_exemplars must be >= 1, got {self.trace_exemplars}")
        if self.metrics_interval_s <= 0.0:
            raise ValueError(
                f"metrics_interval_s must be > 0, got "
                f"{self.metrics_interval_s}")
        if self.overhead_limit <= 0.0:
            raise ValueError(
                f"overhead_limit must be > 0, got {self.overhead_limit}")


def smoke_config() -> ObservabilityBenchConfig:
    """Tiny preset for the tier-1 pytest wrapper: a small region and
    model, few requests — a couple of seconds, with an overhead bound
    loose enough to survive CI timer jitter on a sub-second workload."""
    return ObservabilityBenchConfig(num_towns=2, seed=7, embedding_dim=32,
                                    hidden_size=32, fc_hidden=16, k=3,
                                    examine_limit=30, num_requests=80,
                                    num_hotspots=12, min_hop_distance=2000.0,
                                    concurrency=8, flush_deadline_ms=1.0,
                                    max_batch_size=24,
                                    metrics_interval_s=0.05, repeats=2,
                                    overhead_limit=0.5, preset="smoke")


def full_config() -> ObservabilityBenchConfig:
    """The headline preset behind ``BENCH_observability.json``: full
    tracing + timeline export within 5% of the untraced engine."""
    return ObservabilityBenchConfig()


def apply_overrides(
    config: ObservabilityBenchConfig,
    requests: int | None = None,
    hotspots: int | None = None,
    concurrency: int | None = None,
    k: int | None = None,
    seed: int | None = None,
) -> ObservabilityBenchConfig:
    """Apply the command-line overrides shared by the
    ``bench-observability`` CLI subcommand and the standalone entry
    point."""
    overrides: dict[str, object] = {}
    if requests is not None:
        overrides["num_requests"] = requests
    if hotspots is not None:
        overrides["num_hotspots"] = hotspots
    if concurrency is not None:
        overrides["concurrency"] = concurrency
    if k is not None:
        overrides["k"] = k
    if seed is not None:
        overrides["seed"] = seed
    return replace(config, **overrides) if overrides else config


# ----------------------------------------------------------------------
# Fixture assembly
# ----------------------------------------------------------------------
def _candidates(config: ObservabilityBenchConfig) -> TrainingDataConfig:
    return TrainingDataConfig(strategy=Strategy.D_TKDI, k=config.k,
                              diversity_threshold=config.diversity_threshold,
                              examine_limit=config.examine_limit)


def _service(config: ObservabilityBenchConfig, network, registry,
             trace_sample: float) -> RankingService:
    # Score caches stay off in both arms so the comparison measures
    # scoring + telemetry work, not memoisation luck.
    serving = ServingConfig(
        candidates=_candidates(config),
        score_cache_size=0,
        max_batch_size=config.max_batch_size,
        concurrency=config.concurrency,
        flush_deadline_ms=config.flush_deadline_ms,
        trace_sample=trace_sample,
        trace_exemplars=config.trace_exemplars,
    )
    service = RankingService(network, registry, serving)
    service.activate("bench-a")
    return service


def _best_of(engine: ServingEngine, workload, config,
             metrics_out=None) -> tuple[float, dict]:
    """Closed-loop run repeated ``config.repeats`` times; fastest wins.

    The timeline file, when requested, is rewritten each repeat — the
    report embeds the timeline of the *fastest* traced run only when it
    is also the last, so the exporter is re-armed per repeat and the
    surviving file always matches a complete run.
    """
    best_elapsed = math.inf
    best_summary: dict = {}
    for _ in range(config.repeats):
        summary = run_engine_workload(
            engine, workload, concurrency=config.concurrency,
            metrics_out=metrics_out,
            metrics_interval_s=config.metrics_interval_s)
        if summary["elapsed_s"] < best_elapsed:
            best_elapsed = summary["elapsed_s"]
            best_summary = summary
    return best_elapsed, best_summary


def _trim_exemplars(exemplars: list[dict], limit: int = 4) -> list[dict]:
    """Slowest-first exemplars, bounded for the committed report."""
    return exemplars[:limit]


# ----------------------------------------------------------------------
# The benchmark
# ----------------------------------------------------------------------
def run_observability_benchmark(
        config: ObservabilityBenchConfig | None = None) -> dict:
    """Measure the telemetry plane's cost and verify it is read-only."""
    config = config or full_config()
    network = north_jutland_like(num_towns=config.num_towns, seed=config.seed)
    workload = generate_workload(
        network,
        WorkloadConfig(num_requests=config.num_requests,
                       num_hotspots=config.num_hotspots,
                       zipf_exponent=config.zipf_exponent,
                       min_hop_distance=config.min_hop_distance),
        rng=config.seed,
    )

    with tempfile.TemporaryDirectory() as tmp_root:
        root = FilePath(tmp_root)

        def publish(name: str) -> ModelRegistry:
            registry = ModelRegistry(root / name, network)
            ranker = build_random_ranker(
                network, embedding_dim=config.embedding_dim,
                hidden_size=config.hidden_size, fc_hidden=config.fc_hidden,
                candidates=_candidates(config), seed=0)
            registry.publish(ranker, version="bench-a")
            return registry

        # -- baseline arm: telemetry dormant ---------------------------
        base_service = _service(config, network, publish("base"),
                                trace_sample=0.0)
        base_engine = ServingEngine(base_service,
                                    concurrency=config.concurrency,
                                    flush_deadline_ms=config.flush_deadline_ms,
                                    max_batch_size=config.max_batch_size,
                                    warmup=workload)
        base_elapsed, base_summary = _best_of(base_engine, workload, config)
        base_responses = base_engine.rank_batch(workload)
        base_engine.close()

        # -- traced arm: every request traced, timeline exported -------
        timeline_path = root / "timeline.jsonl"
        traced_service = _service(config, network, publish("traced"),
                                  trace_sample=1.0)
        traced_engine = ServingEngine(
            traced_service, concurrency=config.concurrency,
            flush_deadline_ms=config.flush_deadline_ms,
            max_batch_size=config.max_batch_size, warmup=workload)
        traced_elapsed, traced_summary = _best_of(
            traced_engine, workload, config, metrics_out=timeline_path)
        traced_responses = traced_engine.rank_batch(workload)
        traced_stats = traced_engine.stats()
        traced_engine.close()

        snapshots = load_timeline(timeline_path)

    # -- parity: tracing must not change answers -----------------------
    mismatches = 0
    max_diff = 0.0
    for mine, theirs in zip(traced_responses, base_responses):
        same = (mine.served_by == theirs.served_by
                and mine.model_version == theirs.model_version
                and [r.path.vertices for r in mine.results]
                == [r.path.vertices for r in theirs.results])
        if not same:
            mismatches += 1
            continue
        for a, b in zip(mine.results, theirs.results):
            max_diff = max(max_diff, abs(a.score - b.score))

    base_qps = len(workload) / base_elapsed
    traced_qps = len(workload) / traced_elapsed
    overhead = max(0.0, 1.0 - traced_qps / base_qps)

    trace_section = traced_stats["trace"]
    timeline_summary = summarise_timeline(snapshots)
    requests_series = [snap["metrics"].get("serving.requests", 0)
                       for snap in snapshots]

    report = {
        "schema_version": SCHEMA_VERSION,
        "preset": config.preset,
        "config": asdict(config),
        "network": {"vertices": network.num_vertices,
                    "edges": network.num_edges},
        "baseline": {
            "requests": len(workload),
            "trace_sample": 0.0,
            "elapsed_s": base_elapsed,
            "throughput_qps": base_qps,
            "latency_ms": base_summary["latency_ms"],
        },
        "traced": {
            "requests": len(workload),
            "trace_sample": 1.0,
            "elapsed_s": traced_elapsed,
            "throughput_qps": traced_qps,
            "latency_ms": traced_summary["latency_ms"],
            "traces_finished": trace_section["finished"],
        },
        "overhead": {
            "fraction": overhead,
            "limit": config.overhead_limit,
        },
        "stages": trace_section["stages"],
        "slow_requests": _trim_exemplars(trace_section["slow_requests"]),
        "timeline": {
            "snapshots": timeline_summary["snapshots"],
            "duration_s": timeline_summary["duration_s"],
            "requests_series": requests_series,
        },
        "parity": {
            "requests": len(workload),
            "mismatched_responses": mismatches,
            "max_abs_score_diff": max_diff,
        },
    }
    report["headline"] = {
        "overhead_fraction": overhead,
        "traced_throughput_qps": traced_qps,
        "traced_p95_ms": traced_summary["latency_ms"]["p95"],
    }
    validate_report(report)
    return report


# ----------------------------------------------------------------------
# Report schema
# ----------------------------------------------------------------------
_TOP_KEYS = ("schema_version", "preset", "config", "network", "baseline",
             "traced", "overhead", "stages", "slow_requests", "timeline",
             "parity", "headline")
_NUMERIC_BLOCKS = {
    "baseline": ("requests", "elapsed_s", "throughput_qps"),
    "traced": ("requests", "elapsed_s", "throughput_qps",
               "traces_finished"),
    "overhead": ("fraction", "limit"),
    "parity": ("requests", "mismatched_responses", "max_abs_score_diff"),
    "headline": ("overhead_fraction", "traced_throughput_qps",
                 "traced_p95_ms"),
}


def validate_report(report: dict) -> None:
    """Check a report parses as valid ``BENCH_observability.json``.

    Raises :class:`DataError` on a malformed document, a parity
    violation, a missing pipeline stage, an overhead above the
    configured limit, or a non-monotone timeline; used both when a
    report is produced and by the smoke test against re-parsed JSON.
    """
    if report.get("schema_version") != SCHEMA_VERSION:
        raise DataError(
            f"unexpected schema_version {report.get('schema_version')!r}")
    missing = [key for key in _TOP_KEYS if key not in report]
    if missing:
        raise DataError(f"report missing keys: {missing}")
    for block, keys in _NUMERIC_BLOCKS.items():
        for key in keys:
            value = report[block].get(key)
            if not isinstance(value, (int, float)) or not math.isfinite(value):
                raise DataError(
                    f"{block}.{key} must be a finite number, got {value!r}")
    parity = report["parity"]
    if parity["mismatched_responses"] != 0:
        raise DataError(
            f"parity violation: {parity['mismatched_responses']} traced "
            f"responses differ from the untraced arm's")
    if not parity["max_abs_score_diff"] <= PARITY_LIMIT:
        raise DataError(
            f"parity violation: max_abs_score_diff="
            f"{parity['max_abs_score_diff']!r}")
    overhead = report["overhead"]
    if overhead["fraction"] > overhead["limit"]:
        raise DataError(
            f"tracing overhead {overhead['fraction']:.3f} exceeds the "
            f"{overhead['limit']:.3f} limit")
    missing_stages = [stage for stage in REQUIRED_STAGES
                      if report["stages"].get(stage, {}).get("count", 0) < 1]
    if missing_stages:
        raise DataError(f"stage breakdown missing spans: {missing_stages}")
    if not report["slow_requests"]:
        raise DataError("traced run retained no slow-request exemplars")
    series = report["timeline"]["requests_series"]
    if any(b < a for a, b in zip(series, series[1:])):
        raise DataError(
            f"timeline serving.requests series is not monotone: {series}")


def write_report(report: dict, path: str | FilePath) -> FilePath:
    """Validate and write the report; returns the output path."""
    validate_report(report)
    out = FilePath(path)
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return out
