"""Per-request stage tracing with sampling and slow-request exemplars.

A :class:`Trace` is a flat list of :class:`Span` records — one per
pipeline stage a request passed through (``admit``, ``shard_route``,
``split_assign``, ``candidates``, ``queue_wait``, ``flush_wait``,
``score``, ``assemble``) — cheap enough to ride on the
:class:`~repro.serving.pipeline.QueryState` itself.  Spans store their
absolute ``perf_counter`` start, so offsets stay consistent even when
the engine rebases a trace's origin to the submit time.

The :class:`Tracer` is the policy layer: *stride sampling* decides
which requests carry a trace at all (the default rate of 0 makes the
whole plane a single ``None`` check on the hot path), finished traces
feed per-stage latency histograms in a
:class:`~repro.obs.metrics.MetricsRegistry`, and a bounded min-heap
:class:`SlowRequestBuffer` retains the full span breakdown of the
top-K slowest requests — the exemplars an operator actually wants when
p99 moves.
"""

from __future__ import annotations

import heapq
import threading
import time
from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry

__all__ = ["Span", "Trace", "Tracer", "SlowRequestBuffer", "STAGE_PREFIX"]

#: Registry prefix for per-stage latency histograms.
STAGE_PREFIX = "serving.stage"


class Span:
    """One timed stage within a request."""

    __slots__ = ("name", "start", "duration_ms", "attrs")

    def __init__(self, name: str, start: float, duration_ms: float,
                 attrs: dict[str, object] | None = None) -> None:
        self.name = name
        self.start = start          # absolute perf_counter seconds
        self.duration_ms = duration_ms
        self.attrs = attrs

    def as_dict(self, origin: float) -> dict[str, object]:
        record: dict[str, object] = {
            "name": self.name,
            "offset_ms": (self.start - origin) * 1000.0,
            "duration_ms": self.duration_ms,
        }
        if self.attrs:
            record.update(self.attrs)
        return record


class Trace:
    """One request's span log.

    Spans are appended by whichever pipeline thread currently owns the
    request; ownership hand-offs (worker -> scoring thread -> waiter)
    are already sequenced by the engine's condvars, so no lock is
    needed.  ``started`` is the trace origin for offsets; the engine
    rebases it to the submit time so queue wait shows up at offset 0.
    """

    __slots__ = ("label", "started", "spans", "latency_ms")

    def __init__(self, label: str | None = None,
                 started: float | None = None) -> None:
        self.label = label
        self.started = started if started is not None \
            else time.perf_counter()
        self.spans: list[Span] = []
        self.latency_ms: float | None = None

    def add(self, name: str, start: float, end: float,
            **attrs: object) -> None:
        """Record a stage measured between two ``perf_counter`` readings."""
        self.spans.append(Span(name, start, (end - start) * 1000.0,
                               attrs or None))

    @contextmanager
    def span(self, name: str, **attrs: object):
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add(name, start, time.perf_counter(), **attrs)

    def duration_of(self, name: str) -> float:
        """Total milliseconds spent in spans called ``name``."""
        return sum(span.duration_ms for span in self.spans
                   if span.name == name)

    def as_dict(self) -> dict[str, object]:
        record: dict[str, object] = {
            "spans": [span.as_dict(self.started) for span in self.spans],
        }
        if self.label is not None:
            record["label"] = self.label
        if self.latency_ms is not None:
            record["latency_ms"] = self.latency_ms
        return record


class SlowRequestBuffer:
    """Top-K request records by latency, bounded memory.

    A min-heap keyed on latency: offering a record costs one comparison
    against the current floor once the buffer is full, so the common
    fast request pays almost nothing.
    """

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._heap: list[tuple[float, int, dict[str, object]]] = []
        self._sequence = 0
        self._lock = threading.Lock()

    def offer(self, latency_ms: float, record: dict[str, object]) -> bool:
        """Keep ``record`` if it is among the slowest seen; report if kept."""
        if self.capacity == 0:
            return False
        with self._lock:
            if len(self._heap) < self.capacity:
                self._sequence += 1
                heapq.heappush(self._heap,
                               (latency_ms, self._sequence, record))
                return True
            if latency_ms <= self._heap[0][0]:
                return False
            self._sequence += 1
            heapq.heapreplace(self._heap,
                              (latency_ms, self._sequence, record))
            return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)

    def snapshot(self) -> list[dict[str, object]]:
        """Retained records, slowest first."""
        with self._lock:
            entries = sorted(self._heap, key=lambda e: (-e[0], e[1]))
        return [record for _, _, record in entries]

    def clear(self) -> None:
        with self._lock:
            self._heap.clear()


class Tracer:
    """Sampling policy + aggregation sink for per-request traces.

    ``sample`` is the fraction of requests that carry a trace: 0 (the
    default) disables tracing entirely — :meth:`maybe_start` is a
    single attribute check — and 1.0 traces every request.  Fractional
    rates use deterministic stride sampling (every ``round(1/rate)``-th
    request), which keeps the choice cheap and replay-stable.

    :meth:`finish` folds a completed trace into per-stage histograms
    (``serving.stage.<name>`` in the attached registry) and offers the
    full breakdown to the slow-request exemplar buffer.
    """

    def __init__(self, sample: float = 0.0, max_exemplars: int = 16,
                 metrics: MetricsRegistry | None = None) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {sample}")
        self.sample = sample
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.exemplars = SlowRequestBuffer(max_exemplars)
        self._stride = 0 if sample <= 0.0 \
            else 1 if sample >= 1.0 else max(1, round(1.0 / sample))
        self._tick = 0
        self._finished = 0
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self._stride > 0

    @property
    def finished(self) -> int:
        with self._lock:
            return self._finished

    def maybe_start(self, label: str | None = None) -> Trace | None:
        """A fresh :class:`Trace` for this request, or ``None`` if unsampled."""
        if self._stride == 0:
            return None
        if self._stride > 1:
            with self._lock:
                self._tick += 1
                if self._tick % self._stride:
                    return None
        return Trace(label)

    def finish(self, trace: Trace, latency_ms: float,
               **info: object) -> None:
        """Fold a completed trace into histograms + exemplars."""
        trace.latency_ms = latency_ms
        for span in trace.spans:
            self.metrics.histogram(
                f"{STAGE_PREFIX}.{span.name}").observe(span.duration_ms)
        with self._lock:
            self._finished += 1
        if self.exemplars.capacity > 0:
            record: dict[str, object] = dict(info)
            record.update(trace.as_dict())
            record["latency_ms"] = latency_ms
            self.exemplars.offer(latency_ms, record)

    def stage_summary(self) -> dict[str, dict[str, float]]:
        """Per-stage latency summaries (p50/p95/mean/...), by stage name."""
        prefix = f"{STAGE_PREFIX}."
        return {
            name[len(prefix):]: histogram.summary()
            for name, histogram
            in sorted(self.metrics.histograms(prefix).items())
        }

    def as_dict(self) -> dict[str, object]:
        """The ``stats()["trace"]`` section: policy, stages, exemplars."""
        return {
            "sample": self.sample,
            "finished": self.finished,
            "stages": self.stage_summary(),
            "slow_requests": self.exemplars.snapshot(),
        }
