"""Unified telemetry plane: metrics, per-request tracing, and export.

The serving stack grew four independent stat holders (latency
reservoirs, outcome counters, split/shard accounting, flush occupancy)
but no way to answer the operator questions a production deployment
asks: *where* inside a request the time went, *which* requests were
slow and why, and *how* the system trends over a run.  This package is
the answer — a dependency-free telemetry substrate the serving layer
registers into:

* :mod:`repro.obs.metrics` — named :class:`Counter` / :class:`Gauge` /
  log2-bucketed :class:`Histogram` primitives behind one
  :class:`MetricsRegistry`, plus pull-mode callbacks so existing
  trackers publish under canonical dotted names
  (``serving.latency``, ``shard.shard-00.requests``,
  ``cache.candidate.hits``, …) without being rewritten;
* :mod:`repro.obs.trace` — a lightweight per-request :class:`Trace` /
  :class:`Span` recorder with stride sampling (~zero cost at the
  default sampling rate) and a bounded slow-request exemplar buffer
  that keeps the full span breakdown of the top-K slowest requests;
* :mod:`repro.obs.export` — a periodic :class:`SnapshotExporter`
  thread writing JSONL time series, a Prometheus-style text exposition
  formatter, and timeline loading/summarising for ``repro
  metrics-dump``.

Nothing in here imports :mod:`repro.serving` (the dependency points the
other way), numpy, or anything beyond the standard library — the plane
stays importable from any layer, kernels included.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import SlowRequestBuffer, Span, Trace, Tracer
from repro.obs.export import (
    SnapshotExporter,
    load_timeline,
    prometheus_lines,
    prometheus_snapshot_lines,
    summarise_timeline,
)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "Span", "Trace", "Tracer", "SlowRequestBuffer",
    "SnapshotExporter", "prometheus_lines", "prometheus_snapshot_lines",
    "load_timeline", "summarise_timeline",
]
