"""Named metric primitives and the central registry.

Three write-mode primitives — :class:`Counter`, :class:`Gauge`, and a
fixed-bucket log2 :class:`Histogram` — plus pull-mode *callbacks* for
trackers that already keep their own state.  Everything hangs off one
:class:`MetricsRegistry` under canonical dotted names, and
:meth:`MetricsRegistry.export` flattens the lot into a single
JSON-serialisable ``{name: number}`` mapping: the unit every consumer
(JSONL snapshots, the Prometheus formatter, ``stats()`` sections,
``repro metrics-dump``) works from.

Histograms use power-of-two bucket bounds so ``observe`` is a
``frexp`` + two integer adds — cheap enough for the serving hot path —
while still giving interpolated p50/p95/p99 good to within one octave,
which is all an operator dashboard needs.
"""

from __future__ import annotations

import math
import re
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "flatten_metrics"]

#: Dotted metric names: segments of letters/digits/underscore/dash.
_NAME_RE = re.compile(r"^[A-Za-z0-9_\-]+(\.[A-Za-z0-9_\-]+)*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"invalid metric name {name!r}: expected dotted segments of "
            f"letters, digits, '_' or '-'")
    return name


class Counter:
    """A monotonically non-decreasing integer."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = _check_name(name)
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease "
                             f"(inc by {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time number that can move both ways."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = _check_name(name)
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


#: Bucket upper bounds 2^MIN_EXP .. 2^MAX_EXP (inclusive), plus +inf.
#: For latencies in milliseconds this spans ~8 µs to ~2.2 min.
_MIN_EXP = -7
_MAX_EXP = 17
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    float(2.0 ** exp) for exp in range(_MIN_EXP, _MAX_EXP + 1)
) + (math.inf,)


def _bucket_index(value: float) -> int:
    """The first bucket whose upper bound is >= ``value``."""
    if value <= BUCKET_BOUNDS[0]:
        return 0
    mantissa, exponent = math.frexp(value)
    # frexp: value = mantissa * 2^exponent with mantissa in [0.5, 1);
    # the tight power-of-two ceiling is 2^(exponent-1) when the value
    # is itself an exact power of two.
    exp = exponent - 1 if mantissa == 0.5 else exponent
    if exp > _MAX_EXP:
        return len(BUCKET_BOUNDS) - 1
    return exp - _MIN_EXP


class Histogram:
    """Fixed log2-bucket histogram with interpolated percentiles.

    Exact ``count``/``sum``/``min``/``max``; percentiles are linear
    interpolations within the owning power-of-two bucket (the overflow
    bucket reports the exact observed max).  Memory is a flat int list,
    so a registry full of per-stage histograms stays tiny.
    """

    __slots__ = ("name", "_counts", "_count", "_sum", "_min", "_max",
                 "_lock")

    def __init__(self, name: str) -> None:
        self.name = _check_name(name)
        self._counts = [0] * len(BUCKET_BOUNDS)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = _bucket_index(value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def _snapshot(self) -> tuple[list[int], int, float, float, float]:
        with self._lock:
            return (list(self._counts), self._count, self._sum,
                    self._min, self._max)

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` in [0, 1] (0.0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        counts, count, _, minimum, maximum = self._snapshot()
        return self._quantile_from(counts, count, minimum, maximum, q)

    @staticmethod
    def _quantile_from(counts: list[int], count: int, minimum: float,
                       maximum: float, q: float) -> float:
        if count == 0:
            return 0.0
        rank = q * count
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                upper = BUCKET_BOUNDS[index]
                if not math.isfinite(upper):
                    return maximum
                lower = BUCKET_BOUNDS[index - 1] if index > 0 else 0.0
                # Clamp to the observed extremes so a single-sample
                # histogram reports the sample, not a bucket edge.
                lower = max(lower, minimum if math.isfinite(minimum)
                            else lower)
                upper = min(upper, maximum if math.isfinite(maximum)
                            else upper)
                if bucket_count == 1 or upper <= lower:
                    return upper
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * fraction
            cumulative += bucket_count
        return maximum

    def summary(self) -> dict[str, float]:
        """Flat scalar view: what :meth:`MetricsRegistry.export` emits."""
        counts, count, total, minimum, maximum = self._snapshot()
        if count == 0:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0,
                    "max": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        quantile = lambda q: self._quantile_from(  # noqa: E731
            counts, count, minimum, maximum, q)
        return {
            "count": count,
            "sum": total,
            "mean": total / count,
            "min": minimum,
            "max": maximum,
            "p50": quantile(0.50),
            "p95": quantile(0.95),
            "p99": quantile(0.99),
        }

    def buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, Prometheus-style."""
        counts, _, _, _, _ = self._snapshot()
        result: list[tuple[float, int]] = []
        cumulative = 0
        for bound, bucket_count in zip(BUCKET_BOUNDS, counts):
            cumulative += bucket_count
            result.append((bound, cumulative))
        return result


def flatten_metrics(prefix: str, value: object,
                    out: dict[str, object]) -> None:
    """Flatten a nested dict into dotted keys under ``prefix``.

    Scalars pass through; anything non-JSON-scalar is stringified so an
    export can never fail to serialise.
    """
    if isinstance(value, dict):
        for key, item in value.items():
            flatten_metrics(f"{prefix}.{key}" if prefix else str(key),
                            item, out)
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            flatten_metrics(f"{prefix}.{index}", item, out)
    elif isinstance(value, bool) or value is None:
        out[prefix] = value
    elif isinstance(value, (int, float, str)):
        out[prefix] = value
    else:
        out[prefix] = str(value)


class MetricsRegistry:
    """One namespace of counters, gauges, histograms, and callbacks.

    Write-mode metrics are created on first use (``counter(name)`` is a
    get-or-create; asking for an existing name as a different type is
    an error).  Pull-mode callbacks let trackers that already hold their
    own locked state (cache stats, split/shard accounting) publish a
    nested dict that :meth:`export` flattens under the callback's
    prefix — re-registering a prefix replaces the previous callback, so
    a rebuilt engine simply takes over its section.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._callbacks: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind):
        _check_name(name)
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                if name in self._callbacks:
                    raise ValueError(
                        f"metric name {name!r} already registered as a "
                        f"callback")
                metric = self._metrics[name] = kind(name)
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} already exists as "
                    f"{type(metric).__name__}, not {kind.__name__}")
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    def register_callback(self, prefix: str, callback) -> None:
        """Publish ``callback()`` (a scalar or nested dict) under ``prefix``."""
        _check_name(prefix)
        with self._lock:
            if prefix in self._metrics:
                raise ValueError(
                    f"metric name {prefix!r} already exists as a "
                    f"{type(self._metrics[prefix]).__name__}")
            self._callbacks[prefix] = callback

    def unregister_callback(self, prefix: str) -> None:
        with self._lock:
            self._callbacks.pop(prefix, None)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(set(self._metrics) | set(self._callbacks))

    def metric(self, name: str) -> Counter | Gauge | Histogram | None:
        with self._lock:
            return self._metrics.get(name)

    def histograms(self, prefix: str = "") -> dict[str, Histogram]:
        """Registered histograms whose names start with ``prefix``."""
        with self._lock:
            return {name: metric for name, metric in self._metrics.items()
                    if isinstance(metric, Histogram)
                    and name.startswith(prefix)}

    def export(self) -> dict[str, object]:
        """One flat, sorted, JSON-serialisable ``{name: value}`` view.

        Counters/gauges emit their value under their own name;
        histograms expand to ``<name>.count/.mean/.p50/...``; callback
        payloads are flattened under their prefix.  A callback that
        raises contributes an ``<prefix>.error`` string instead of
        poisoning the whole export — telemetry must never take the
        service down with it.
        """
        with self._lock:
            metrics = list(self._metrics.items())
            callbacks = list(self._callbacks.items())
        out: dict[str, object] = {}
        for name, metric in metrics:
            if isinstance(metric, Histogram):
                flatten_metrics(name, metric.summary(), out)
            else:
                out[name] = metric.value
        for prefix, callback in callbacks:
            try:
                payload = callback()
            except Exception as exc:  # noqa: BLE001 - keep export alive
                out[f"{prefix}.error"] = str(exc)
                continue
            flatten_metrics(prefix, payload, out)
        return dict(sorted(out.items()))
