"""Saving and loading module weights as ``.npz`` archives."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import SerializationError
from repro.nn.module import Module

__all__ = ["save_module", "load_module", "save_state", "load_state"]

_META_KEY = "__repro_meta__"
_FORMAT_VERSION = 1


def save_state(state: dict[str, np.ndarray], path: str | Path,
               metadata: dict[str, object] | None = None) -> None:
    """Write a state dict to ``path`` (``.npz``), with optional JSON metadata."""
    path = Path(path)
    if _META_KEY in state:
        raise SerializationError(f"{_META_KEY!r} is a reserved key")
    meta = {"format_version": _FORMAT_VERSION, "user": metadata or {}}
    payload = dict(state)
    payload[_META_KEY] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as handle:
        np.savez(handle, **payload)


def load_state(path: str | Path) -> tuple[dict[str, np.ndarray], dict[str, object]]:
    """Read back a state dict and its metadata."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"no such checkpoint: {path}")
    with np.load(path, allow_pickle=False) as archive:
        if _META_KEY not in archive:
            raise SerializationError(f"{path} is not a repro checkpoint (missing metadata)")
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise SerializationError(
                f"unsupported checkpoint version {meta.get('format_version')!r}"
            )
        state = {key: archive[key] for key in archive.files if key != _META_KEY}
    return state, meta.get("user", {})


def save_module(module: Module, path: str | Path,
                metadata: dict[str, object] | None = None) -> None:
    """Persist ``module.state_dict()`` to ``path``."""
    save_state(module.state_dict(), path, metadata=metadata)


def load_module(module: Module, path: str | Path, strict: bool = True) -> dict[str, object]:
    """Load weights into ``module`` in place; returns the saved metadata."""
    state, metadata = load_state(path)
    module.load_state_dict(state, strict=strict)
    return metadata
