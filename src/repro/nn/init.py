"""Weight initialisers.

All initialisers take an explicit :class:`numpy.random.Generator` so that
model construction is reproducible from the experiment seed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["uniform", "normal", "xavier_uniform", "xavier_normal", "orthogonal", "zeros"]


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def uniform(rng: np.random.Generator, shape: tuple[int, ...], low: float, high: float) -> np.ndarray:
    if low > high:
        raise ValueError(f"uniform bounds inverted: [{low}, {high}]")
    return rng.uniform(low, high, size=shape)


def normal(rng: np.random.Generator, shape: tuple[int, ...], std: float = 1.0) -> np.ndarray:
    if std < 0:
        raise ValueError(f"standard deviation must be non-negative, got {std}")
    return rng.normal(0.0, std, size=shape)


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 2:
        raise ValueError(f"xavier initialisation needs >= 2 dimensions, got shape {shape}")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive


def xavier_uniform(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """Glorot & Bengio (2010) uniform initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = float(np.sqrt(6.0 / (fan_in + fan_out)))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    fan_in, fan_out = _fan_in_out(shape)
    std = float(np.sqrt(2.0 / (fan_in + fan_out)))
    return rng.normal(0.0, std, size=shape)


def orthogonal(rng: np.random.Generator, shape: tuple[int, int], gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialisation (Saxe et al., 2014), used for GRU recurrences."""
    if len(shape) != 2:
        raise ValueError(f"orthogonal initialisation needs a 2-D shape, got {shape}")
    rows, cols = shape
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q = q * np.sign(np.diag(r))  # make the decomposition unique
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]
