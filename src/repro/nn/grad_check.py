"""Finite-difference gradient checking.

The test-suite validates every differentiable operator and every layer of
the PathRank stack against central differences; this module holds the
machinery.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(
    func: Callable[[], Tensor],
    parameter: Tensor,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of scalar ``func()`` w.r.t. ``parameter``.

    ``func`` must recompute the forward pass from scratch on every call so
    that perturbations to ``parameter.data`` are observed.
    """
    grad = np.zeros_like(parameter.data)
    flat = parameter.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = func().item()
        flat[i] = original - eps
        minus = func().item()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    func: Callable[[], Tensor],
    parameters: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> list[float]:
    """Compare autodiff gradients of ``func`` against finite differences.

    Returns the max absolute deviation per parameter; raises
    ``AssertionError`` on mismatch so tests can call it directly.
    """
    for p in parameters:
        p.zero_grad()
    loss = func()
    loss.backward()
    deviations: list[float] = []
    for p in parameters:
        assert p.grad is not None, f"no gradient accumulated for {p!r}"
        numeric = numerical_gradient(func, p, eps=eps)
        deviation = float(np.max(np.abs(p.grad - numeric))) if p.size else 0.0
        deviations.append(deviation)
        np.testing.assert_allclose(
            p.grad, numeric, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch for parameter {p.name or p!r}",
        )
    return deviations
