"""Regression and classification losses.

PathRank trains with mean-squared error against the weighted-Jaccard
ground-truth scores; MAE/Huber/BCE are provided for ablations and for the
node2vec trainer.
"""

from __future__ import annotations

from repro.errors import ShapeError
from repro.nn.module import Module
from repro.nn.tensor import Tensor, as_tensor

__all__ = ["MSELoss", "MAELoss", "HuberLoss", "BCELoss"]


def _check_same_shape(prediction: Tensor, target: Tensor) -> None:
    if prediction.shape != target.shape:
        raise ShapeError(
            f"loss shapes differ: prediction {prediction.shape} vs target {target.shape}"
        )


class MSELoss(Module):
    """Mean squared error, the paper's regression objective."""

    def forward(self, prediction: Tensor, target: Tensor | object) -> Tensor:
        target = as_tensor(target)
        _check_same_shape(prediction, target)
        diff = prediction - target
        return (diff * diff).mean()


class MAELoss(Module):
    """Mean absolute error (L1)."""

    def forward(self, prediction: Tensor, target: Tensor | object) -> Tensor:
        target = as_tensor(target)
        _check_same_shape(prediction, target)
        return (prediction - target).abs().mean()


class HuberLoss(Module):
    """Smooth L1: quadratic within ``delta``, linear outside."""

    def __init__(self, delta: float = 1.0) -> None:
        super().__init__()
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = float(delta)

    def forward(self, prediction: Tensor, target: Tensor | object) -> Tensor:
        target = as_tensor(target)
        _check_same_shape(prediction, target)
        diff = prediction - target
        abs_diff = diff.abs()
        quadratic = 0.5 * diff * diff
        linear = self.delta * abs_diff - 0.5 * self.delta * self.delta
        from repro.nn.functional import where

        return where(abs_diff.data <= self.delta, quadratic, linear).mean()


class BCELoss(Module):
    """Binary cross-entropy on probabilities, clipped for stability."""

    def __init__(self, eps: float = 1e-9) -> None:
        super().__init__()
        self.eps = float(eps)

    def forward(self, prediction: Tensor, target: Tensor | object) -> Tensor:
        target = as_tensor(target)
        _check_same_shape(prediction, target)
        p = prediction.clip(self.eps, 1.0 - self.eps)
        losses = -(target * p.log() + (1.0 - target) * (1.0 - p).log())
        return losses.mean()
