"""First-order optimisers over :class:`~repro.nn.module.Parameter` lists.

Provides SGD (with optional momentum and weight decay), Adam, and
AdaGrad, plus global-norm gradient clipping — everything the PathRank
trainer and the skip-gram trainer need.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdaGrad", "clip_grad_norm"]


def clip_grad_norm(parameters: Sequence[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm, which trainers log to detect exploding
    gradients in the recurrent stack.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    norm = float(np.sqrt(sum(float((g * g).sum()) for g in grads)))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in parameters:
            if p.grad is not None:
                p.grad = p.grad * scale
    return norm


class Optimizer:
    """Shared bookkeeping: parameter list, learning rate, zero_grad."""

    def __init__(self, parameters: Sequence[Parameter], lr: float) -> None:
        params = list(parameters)
        if not params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.parameters = params
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and L2 weight decay."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.parameters:
            if p.grad is None or not p.requires_grad:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                velocity = self._velocity.get(id(p))
                velocity = grad if velocity is None else self.momentum * velocity + grad
                self._velocity[id(p)] = velocity
                grad = velocity
            p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if weight_decay < 0.0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._first: dict[int, np.ndarray] = {}
        self._second: dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for p in self.parameters:
            if p.grad is None or not p.requires_grad:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            first = self._first.get(id(p), np.zeros_like(p.data))
            second = self._second.get(id(p), np.zeros_like(p.data))
            first = self.beta1 * first + (1.0 - self.beta1) * grad
            second = self.beta2 * second + (1.0 - self.beta2) * grad * grad
            self._first[id(p)] = first
            self._second[id(p)] = second
            update = (first / bias1) / (np.sqrt(second / bias2) + self.eps)
            p.data = p.data - self.lr * update


class AdaGrad(Optimizer):
    """AdaGrad, the classic choice for sparse embedding updates."""

    def __init__(
        self, parameters: Sequence[Parameter], lr: float = 0.01, eps: float = 1e-10
    ) -> None:
        super().__init__(parameters, lr)
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        self.eps = float(eps)
        self._accumulator: dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.parameters:
            if p.grad is None or not p.requires_grad:
                continue
            acc = self._accumulator.get(id(p), np.zeros_like(p.data))
            acc = acc + p.grad * p.grad
            self._accumulator[id(p)] = acc
            p.data = p.data - self.lr * p.grad / (np.sqrt(acc) + self.eps)
