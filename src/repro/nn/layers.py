"""Feed-forward layers: Linear, Embedding, Dropout, Sequential."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.rng import RngLike, make_rng

__all__ = ["Linear", "Embedding", "Dropout", "Sequential", "Tanh", "ReLU", "Sigmoid"]


class Linear(Module):
    """Affine map ``y = x W + b`` with Xavier-uniform initialisation."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: RngLike = None) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(f"layer sizes must be positive, got ({in_features}, {out_features})")
        generator = make_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform(generator, (in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ShapeError(
                f"Linear expected last dimension {self.in_features}, got shape {x.shape}"
            )
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table of shape ``(num_embeddings, dim)``.

    This is PathRank's vertex-embedding matrix ``B``.  It can be
    initialised from a pre-trained node2vec matrix and optionally frozen
    (PR-A1) or left trainable (PR-A2).
    """

    def __init__(self, num_embeddings: int, dim: int, rng: RngLike = None) -> None:
        super().__init__()
        if num_embeddings <= 0 or dim <= 0:
            raise ValueError(
                f"embedding sizes must be positive, got ({num_embeddings}, {dim})"
            )
        generator = make_rng(rng)
        self.num_embeddings = num_embeddings
        self.dim = dim
        bound = 1.0 / np.sqrt(dim)
        self.weight = Parameter(init.uniform(generator, (num_embeddings, dim), -bound, bound))

    @classmethod
    def from_pretrained(cls, matrix: np.ndarray, trainable: bool = True) -> "Embedding":
        """Build an embedding whose rows are a pre-trained matrix."""
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ShapeError(f"pretrained matrix must be 2-D, got shape {matrix.shape}")
        layer = cls(matrix.shape[0], matrix.shape[1])
        layer.weight.data = matrix.copy()
        if not trainable:
            layer.weight.freeze()
        return layer

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding_lookup(self.weight, indices)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, rate: float, rng: RngLike = None) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = make_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self._rng, training=self.training)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Sequential(Module):
    """Chain modules; the output of one feeds the next."""

    def __init__(self, layers: Sequence[Module]) -> None:
        super().__init__()
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self._layer_list = list(layers)
        for index, layer in enumerate(self._layer_list):
            setattr(self, f"layer{index}", layer)

    def __len__(self) -> int:
        return len(self._layer_list)

    def __getitem__(self, index: int) -> Module:
        return self._layer_list[index]

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layer_list:
            x = layer(x)
        return x
