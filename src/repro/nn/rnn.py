"""Recurrent layers: GRU cell/stack, bidirectional GRU, and LSTM.

PathRank consumes a candidate path as a sequence of vertex embeddings and
summarises it with a bidirectional GRU (the two GRU rows in the paper's
architecture figure).  Sequences in a batch have different lengths, so
all recurrences here are *masked*: padded steps propagate the previous
hidden state unchanged, which makes the final hidden state of every
sequence the state at its own last real vertex.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.rng import RngLike, make_rng, spawn

__all__ = ["GRUCell", "GRU", "BiGRU", "LSTMCell", "LSTM"]


def _check_step_inputs(x: Tensor, h: Tensor, input_size: int, hidden_size: int) -> None:
    if x.ndim != 2 or x.shape[1] != input_size:
        raise ShapeError(f"cell expected input (batch, {input_size}), got {x.shape}")
    if h.ndim != 2 or h.shape[1] != hidden_size:
        raise ShapeError(f"cell expected hidden (batch, {hidden_size}), got {h.shape}")
    if x.shape[0] != h.shape[0]:
        raise ShapeError(f"batch mismatch between input {x.shape} and hidden {h.shape}")


def _as_mask(mask: np.ndarray, steps: int, batch: int) -> np.ndarray:
    mask = np.asarray(mask, dtype=float)
    if mask.shape != (steps, batch):
        raise ShapeError(f"mask must have shape ({steps}, {batch}), got {mask.shape}")
    return mask


class GRUCell(Module):
    """Single-step gated recurrent unit (Cho et al., 2014).

    Uses the standard gating formulation::

        r = sigmoid(x W_ir + b_ir + h W_hr + b_hr)
        z = sigmoid(x W_iz + b_iz + h W_hz + b_hz)
        n = tanh(x W_in + b_in + r * (h W_hn + b_hn))
        h' = (1 - z) * n + z * h
    """

    def __init__(self, input_size: int, hidden_size: int, rng: RngLike = None) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError(f"sizes must be positive, got ({input_size}, {hidden_size})")
        generator = make_rng(rng)
        input_rng, hidden_rng = spawn(generator, 2)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(init.xavier_uniform(input_rng, (input_size, 3 * hidden_size)))
        recurrent = np.concatenate(
            [init.orthogonal(hidden_rng, (hidden_size, hidden_size)) for _ in range(3)], axis=1
        )
        self.weight_hh = Parameter(recurrent)
        self.bias_ih = Parameter(np.zeros(3 * hidden_size))
        self.bias_hh = Parameter(np.zeros(3 * hidden_size))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        _check_step_inputs(x, h, self.input_size, self.hidden_size)
        return self.step(x @ self.weight_ih + self.bias_ih, h)

    def step(self, gates_input: Tensor, h: Tensor) -> Tensor:
        """Advance one step from *precomputed* input-side gates.

        ``gates_input`` is ``x @ W_ih + b_ih`` of shape
        ``(batch, 3 * hidden)``.  :class:`GRU` hoists that projection out
        of the time loop (one matmul for the whole sequence) and calls
        this directly; :meth:`forward` keeps the classic per-step
        contract.
        """
        gates_hidden = h @ self.weight_hh + self.bias_hh
        i_r, i_z, i_n = F.chunk(gates_input, 3, axis=-1)
        h_r, h_z, h_n = F.chunk(gates_hidden, 3, axis=-1)
        reset = (i_r + h_r).sigmoid()
        update = (i_z + h_z).sigmoid()
        candidate = (i_n + reset * h_n).tanh()
        return (1.0 - update) * candidate + update * h

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_size)))


class GRU(Module):
    """Masked unidirectional GRU over a ``(steps, batch, input)`` tensor.

    Returns ``(outputs, final)`` where ``outputs`` has shape
    ``(steps, batch, hidden)`` and ``final`` is each sequence's hidden
    state at its last unmasked step.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: RngLike = None) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.cell = GRUCell(input_size, hidden_size, rng=rng)

    def forward(
        self,
        inputs: Tensor,
        mask: np.ndarray | None = None,
        h0: Tensor | None = None,
    ) -> tuple[Tensor, Tensor]:
        if inputs.ndim != 3 or inputs.shape[2] != self.input_size:
            raise ShapeError(
                f"GRU expected (steps, batch, {self.input_size}), got {inputs.shape}"
            )
        steps, batch, _ = inputs.shape
        if steps == 0:
            raise ShapeError("GRU requires at least one time step")
        if mask is not None:
            mask = _as_mask(mask, steps, batch)
        if h0 is not None and h0.shape != (batch, self.hidden_size):
            raise ShapeError(
                f"GRU expected h0 ({batch}, {self.hidden_size}), got {h0.shape}"
            )
        hidden = h0 if h0 is not None else self.cell.initial_state(batch)
        # Hoist the input projection out of the recurrence: one
        # (steps * batch, input) matmul for the whole sequence instead of
        # ``steps`` small ones; only h @ W_hh stays inside the loop.
        cell = self.cell
        flat = inputs.reshape(steps * batch, self.input_size)
        gates_input = (flat @ cell.weight_ih + cell.bias_ih).reshape(
            steps, batch, 3 * self.hidden_size)
        outputs: list[Tensor] = []
        for t in range(steps):
            updated = cell.step(gates_input[t], hidden)
            if mask is None:
                hidden = updated
            else:
                step_mask = Tensor(mask[t][:, None])
                hidden = step_mask * updated + (1.0 - step_mask) * hidden
            outputs.append(hidden)
        return F.stack(outputs, axis=0), hidden


class BiGRU(Module):
    """Bidirectional GRU; summaries are the concatenated final states.

    The backward direction consumes the *reversed* sequence together with
    the reversed mask; padded steps (mask 0) simply carry the zero state
    until the sequence's real suffix begins, so no re-alignment of padded
    batches is needed for the final state.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: RngLike = None) -> None:
        super().__init__()
        generator = make_rng(rng)
        forward_rng, backward_rng = spawn(generator, 2)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.forward_gru = GRU(input_size, hidden_size, rng=forward_rng)
        self.backward_gru = GRU(input_size, hidden_size, rng=backward_rng)

    @property
    def output_size(self) -> int:
        return 2 * self.hidden_size

    def forward(
        self, inputs: Tensor, mask: np.ndarray | None = None
    ) -> tuple[Tensor, Tensor]:
        """Return ``(outputs, summary)``.

        ``outputs`` is ``(steps, batch, 2*hidden)`` with the backward
        stream re-reversed so both streams align per time step;
        ``summary`` is ``(batch, 2*hidden)``.
        """
        forward_out, forward_final = self.forward_gru(inputs, mask=mask)
        reversed_inputs = inputs[::-1]
        reversed_mask = mask[::-1] if mask is not None else None
        backward_out, backward_final = self.backward_gru(reversed_inputs, mask=reversed_mask)
        aligned_backward = backward_out[::-1]
        outputs = F.concat([forward_out, aligned_backward], axis=2)
        summary = F.concat([forward_final, backward_final], axis=1)
        return outputs, summary


class LSTMCell(Module):
    """Single-step LSTM, provided for the RNN-architecture ablation."""

    def __init__(self, input_size: int, hidden_size: int, rng: RngLike = None) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError(f"sizes must be positive, got ({input_size}, {hidden_size})")
        generator = make_rng(rng)
        input_rng, hidden_rng = spawn(generator, 2)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(init.xavier_uniform(input_rng, (input_size, 4 * hidden_size)))
        recurrent = np.concatenate(
            [init.orthogonal(hidden_rng, (hidden_size, hidden_size)) for _ in range(4)], axis=1
        )
        self.weight_hh = Parameter(recurrent)
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size:2 * hidden_size] = 1.0  # forget-gate bias trick
        self.bias = Parameter(bias)

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        h, c = state
        _check_step_inputs(x, h, self.input_size, self.hidden_size)
        gates = x @ self.weight_ih + h @ self.weight_hh + self.bias
        i_gate, f_gate, g_gate, o_gate = F.chunk(gates, 4, axis=-1)
        i_gate = i_gate.sigmoid()
        f_gate = f_gate.sigmoid()
        g_gate = g_gate.tanh()
        o_gate = o_gate.sigmoid()
        c_next = f_gate * c + i_gate * g_gate
        h_next = o_gate * c_next.tanh()
        return h_next, c_next

    def initial_state(self, batch: int) -> tuple[Tensor, Tensor]:
        zeros = np.zeros((batch, self.hidden_size))
        return Tensor(zeros.copy()), Tensor(zeros.copy())


class LSTM(Module):
    """Masked unidirectional LSTM over ``(steps, batch, input)``."""

    def __init__(self, input_size: int, hidden_size: int, rng: RngLike = None) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.cell = LSTMCell(input_size, hidden_size, rng=rng)

    def forward(
        self, inputs: Tensor, mask: np.ndarray | None = None
    ) -> tuple[Tensor, Tensor]:
        if inputs.ndim != 3 or inputs.shape[2] != self.input_size:
            raise ShapeError(
                f"LSTM expected (steps, batch, {self.input_size}), got {inputs.shape}"
            )
        steps, batch, _ = inputs.shape
        if steps == 0:
            raise ShapeError("LSTM requires at least one time step")
        if mask is not None:
            mask = _as_mask(mask, steps, batch)
        hidden, cell_state = self.cell.initial_state(batch)
        outputs: list[Tensor] = []
        for t in range(steps):
            h_next, c_next = self.cell(inputs[t], (hidden, cell_state))
            if mask is None:
                hidden, cell_state = h_next, c_next
            else:
                step_mask = Tensor(mask[t][:, None])
                keep = 1.0 - step_mask
                hidden = step_mask * h_next + keep * hidden
                cell_state = step_mask * c_next + keep * cell_state
            outputs.append(hidden)
        return F.stack(outputs, axis=0), hidden
