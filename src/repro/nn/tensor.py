"""Reverse-mode automatic differentiation on numpy arrays.

PyTorch is not available in the reproduction environment, so this module
implements the minimal-but-complete tensor substrate PathRank needs: a
:class:`Tensor` wrapping a :class:`numpy.ndarray`, a dynamic computation
graph built as operations execute, and :meth:`Tensor.backward` running
reverse-mode differentiation over a topological ordering of that graph.

Design notes
------------
* Gradients are plain numpy arrays accumulated into ``Tensor.grad``.
* Every operation is broadcast-aware: gradients flowing into an operand
  whose shape was broadcast are summed back to the operand's shape by
  :func:`unbroadcast`.
* A module-level no-grad switch (:func:`no_grad`) disables graph
  construction for inference paths, which both saves memory and matches
  the usual deep-learning-framework contract.
* ``float64`` is the default dtype: the test-suite validates every
  operator against central finite differences, which needs the headroom.
"""

from __future__ import annotations

import contextlib
from collections.abc import Callable, Iterator

import numpy as np

from repro.errors import GradientError, ShapeError

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]

_GRAD_ENABLED = True

# Adjoint staging area for the backward pass currently in flight.  Backward
# passes are synchronous and never nested, so a module-level dict (keyed by
# tensor identity) is sufficient and avoids storing traversal state on the
# slotted Tensor instances themselves.
_ACTIVE_ADJOINTS: dict[int, np.ndarray] | None = None


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables computation-graph construction."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the computation graph."""
    return _GRAD_ENABLED


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting.

    Broadcasting either prepends new axes or stretches size-1 axes; its
    adjoint sums over exactly those axes.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _coerce_array(data: object, dtype: np.dtype | None) -> np.ndarray:
    array = np.asarray(data, dtype=dtype if dtype is not None else None)
    if array.dtype.kind in "iub":  # integers/bools promote to float for autodiff
        array = array.astype(np.float64)
    return array


class Tensor:
    """A numpy array plus the bookkeeping for reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything :func:`numpy.asarray` accepts.  Integer and boolean
        inputs are promoted to ``float64`` because gradients only make
        sense for floating-point leaves.
    requires_grad:
        Whether gradients should be accumulated into this tensor when
        :meth:`backward` runs on a descendant.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: object,
        requires_grad: bool = False,
        dtype: np.dtype | None = None,
        name: str | None = None,
    ) -> None:
        self.data = _coerce_array(data, dtype)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def is_leaf(self) -> bool:
        """True when this tensor was created by the user, not an op."""
        return not self._parents

    def __len__(self) -> int:
        if self.ndim == 0:
            raise TypeError("len() of a 0-d tensor")
        return self.shape[0]

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        name_note = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_note}{name_note})"

    def item(self) -> float:
        """Return the value of a single-element tensor as a python float."""
        if self.size != 1:
            raise ShapeError(f"item() requires a single-element tensor, got shape {self.shape}")
        return float(self.data.reshape(()))

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing this tensor's data."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a new leaf tensor with a copy of this tensor's data."""
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create an op output, wiring the graph only when grad is enabled."""
        needs_grad = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data)
        if needs_grad:
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad = self.grad + grad

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        ``grad`` seeds the output adjoint; it defaults to 1.0 and is only
        optional for scalar tensors.
        """
        if not self.requires_grad:
            raise GradientError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise GradientError(
                    f"backward() on non-scalar tensor of shape {self.shape} requires an "
                    "explicit gradient seed"
                )
            seed = np.ones_like(self.data)
        else:
            seed = np.broadcast_to(np.asarray(grad, dtype=self.data.dtype), self.shape).copy()

        global _ACTIVE_ADJOINTS
        if _ACTIVE_ADJOINTS is not None:
            raise GradientError("nested backward() calls are not supported")
        order = self._topological_order()
        adjoints: dict[int, np.ndarray] = {id(self): seed}
        _ACTIVE_ADJOINTS = adjoints
        try:
            for node in order:
                adjoint = adjoints.pop(id(node), None)
                if adjoint is None:
                    continue
                if node._backward is None:
                    # A leaf (or a detached node): accumulate into .grad.
                    if node.requires_grad:
                        node._accumulate(adjoint)
                    continue
                node._backward(adjoint)
        finally:
            _ACTIVE_ADJOINTS = None

    def _topological_order(self) -> list["Tensor"]:
        """Reverse topological order (outputs first) via iterative DFS."""
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        order.reverse()
        return order

    def _send(self, parent: "Tensor", grad: np.ndarray) -> None:
        """Route ``grad`` to ``parent`` during a backward pass.

        Leaves accumulate into ``.grad``; interior nodes stage the adjoint
        in the traversal's dictionary so each op's backward runs exactly
        once with the full adjoint.
        """
        if not parent.requires_grad:
            return
        if parent._backward is None:
            parent._accumulate(grad)
            return
        assert _ACTIVE_ADJOINTS is not None, "_send outside an active backward pass"
        existing = _ACTIVE_ADJOINTS.get(id(parent))
        _ACTIVE_ADJOINTS[id(parent)] = grad if existing is None else existing + grad

    # ------------------------------------------------------------------
    # Arithmetic ops (broadcast-aware)
    # ------------------------------------------------------------------
    def _binary(
        self,
        other: "Tensor | float",
        forward: Callable[[np.ndarray, np.ndarray], np.ndarray],
        grad_a: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
        grad_b: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    ) -> "Tensor":
        other_t = as_tensor(other)
        a, b = self, other_t
        data = forward(a.data, b.data)

        def backward(g: np.ndarray) -> None:
            if a.requires_grad:
                out._send(a, unbroadcast(grad_a(g, a.data, b.data), a.shape))
            if b.requires_grad:
                out._send(b, unbroadcast(grad_b(g, a.data, b.data), b.shape))

        out = Tensor._make(data, (a, b), backward)
        return out

    def __add__(self, other: "Tensor | float") -> "Tensor":
        return self._binary(other, np.add, lambda g, a, b: g, lambda g, a, b: g)

    __radd__ = __add__

    def __sub__(self, other: "Tensor | float") -> "Tensor":
        return self._binary(other, np.subtract, lambda g, a, b: g, lambda g, a, b: -g)

    def __rsub__(self, other: "Tensor | float") -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other: "Tensor | float") -> "Tensor":
        return self._binary(other, np.multiply, lambda g, a, b: g * b, lambda g, a, b: g * a)

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | float") -> "Tensor":
        return self._binary(
            other,
            np.divide,
            lambda g, a, b: g / b,
            lambda g, a, b: -g * a / (b * b),
        )

    def __rtruediv__(self, other: "Tensor | float") -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        a = self

        def backward(g: np.ndarray) -> None:
            out._send(a, -g)

        out = Tensor._make(-a.data, (a,), backward)
        return out

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        a = self
        data = a.data**exponent

        def backward(g: np.ndarray) -> None:
            out._send(a, g * exponent * a.data ** (exponent - 1))

        out = Tensor._make(data, (a,), backward)
        return out

    def __matmul__(self, other: "Tensor") -> "Tensor":
        a, b = self, as_tensor(other)
        if a.ndim < 1 or b.ndim < 1:
            raise ShapeError("matmul requires tensors with at least one dimension")
        data = a.data @ b.data

        def backward(g: np.ndarray) -> None:
            if a.ndim == 1 and b.ndim == 1:  # inner product
                if a.requires_grad:
                    out._send(a, g * b.data)
                if b.requires_grad:
                    out._send(b, g * a.data)
                return
            if a.requires_grad:
                if b.ndim == 1:
                    ga = np.outer(g, b.data) if a.ndim == 2 else g[..., None] * b.data
                else:
                    ga = g @ np.swapaxes(b.data, -1, -2)
                out._send(a, unbroadcast(ga, a.shape))
            if b.requires_grad:
                if a.ndim == 1:
                    gb = np.outer(a.data, g)
                else:
                    gb = np.swapaxes(a.data, -1, -2) @ g
                out._send(b, unbroadcast(gb, b.shape))

        out = Tensor._make(data, (a, b), backward)
        return out

    # ------------------------------------------------------------------
    # Elementwise non-linearities
    # ------------------------------------------------------------------
    def _unary(
        self,
        forward: Callable[[np.ndarray], np.ndarray],
        grad_fn: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    ) -> "Tensor":
        """``grad_fn(g, x, y)`` receives the adjoint, the input, the output."""
        a = self
        data = forward(a.data)

        def backward(g: np.ndarray) -> None:
            out._send(a, grad_fn(g, a.data, data))

        out = Tensor._make(data, (a,), backward)
        return out

    def exp(self) -> "Tensor":
        return self._unary(np.exp, lambda g, x, y: g * y)

    def log(self) -> "Tensor":
        return self._unary(np.log, lambda g, x, y: g / x)

    def sqrt(self) -> "Tensor":
        return self._unary(np.sqrt, lambda g, x, y: g / (2.0 * y))

    def tanh(self) -> "Tensor":
        return self._unary(np.tanh, lambda g, x, y: g * (1.0 - y * y))

    def sigmoid(self) -> "Tensor":
        def forward(x: np.ndarray) -> np.ndarray:
            # Numerically stable piecewise sigmoid.
            positive = x >= 0
            result = np.empty_like(x)
            result[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
            ex = np.exp(x[~positive])
            result[~positive] = ex / (1.0 + ex)
            return result

        return self._unary(forward, lambda g, x, y: g * y * (1.0 - y))

    def relu(self) -> "Tensor":
        return self._unary(
            lambda x: np.maximum(x, 0.0), lambda g, x, y: g * (x > 0.0).astype(x.dtype)
        )

    def abs(self) -> "Tensor":
        return self._unary(np.abs, lambda g, x, y: g * np.sign(x))

    def clip(self, low: float, high: float) -> "Tensor":
        if low > high:
            raise ValueError(f"clip bounds are inverted: [{low}, {high}]")
        return self._unary(
            lambda x: np.clip(x, low, high),
            lambda g, x, y: g * ((x >= low) & (x <= high)).astype(x.dtype),
        )

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        a = self
        data = a.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            grad = g
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(ax % a.ndim for ax in axes):
                    grad = np.expand_dims(grad, ax)
            out._send(a, np.broadcast_to(grad, a.shape).copy())

        out = Tensor._make(data, (a,), backward)
        return out

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.shape[ax] for ax in axes]))
        if count == 0:
            raise ShapeError("mean over zero elements")
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        a = self
        data = a.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            expanded = data if keepdims or axis is None else np.expand_dims(data, axis)
            grad_out = g if keepdims or axis is None else np.expand_dims(g, axis)
            mask = (a.data == expanded).astype(a.data.dtype)
            # Split the adjoint between ties, matching the subgradient convention.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            out._send(a, np.broadcast_to(grad_out, a.shape) * mask / counts)

        out = Tensor._make(data, (a,), backward)
        return out

    def min(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self
        data = a.data.reshape(shape)

        def backward(g: np.ndarray) -> None:
            out._send(a, g.reshape(a.shape))

        out = Tensor._make(data, (a,), backward)
        return out

    def transpose(self, *axes: int) -> "Tensor":
        a = self
        order = axes if axes else tuple(reversed(range(a.ndim)))
        data = a.data.transpose(order)
        inverse = np.argsort(order)

        def backward(g: np.ndarray) -> None:
            out._send(a, g.transpose(inverse))

        out = Tensor._make(data, (a,), backward)
        return out

    @property
    def T(self) -> "Tensor":  # noqa: N802 - numpy-compatible alias
        return self.transpose()

    def __getitem__(self, index: object) -> "Tensor":
        a = self
        data = a.data[index]

        def backward(g: np.ndarray) -> None:
            grad = np.zeros_like(a.data)
            np.add.at(grad, index, g)
            out._send(a, grad)

        out = Tensor._make(np.ascontiguousarray(data), (a,), backward)
        return out

    def take_rows(self, indices: np.ndarray) -> "Tensor":
        """Gather rows by integer index — the embedding-lookup primitive.

        Equivalent to ``self[indices]`` but documents intent and keeps the
        scatter-add backward (duplicate indices accumulate, which is what
        an embedding matrix shared across a batch requires).
        """
        idx = np.asarray(indices)
        if idx.dtype.kind not in "iu":
            raise TypeError("take_rows requires integer indices")
        return self[idx]


def as_tensor(value: "Tensor | float | np.ndarray", dtype: np.dtype | None = None) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, dtype=dtype)
