"""Neural-network substrate: numpy reverse-mode autodiff.

PyTorch is unavailable in the reproduction environment, so this package
implements the pieces PathRank needs — tensors with autograd, embedding
and linear layers, masked (bi)directional GRUs, losses, and optimisers —
with the conventional framework API surface.
"""

from repro.nn import functional  # noqa: F401  (re-export the namespace)
from repro.nn.fused import (
    CompiledPathRank,
    compiled_for,
    compiled_if_cached,
    get_scoring_backend,
    resolve_scoring_backend,
    set_scoring_backend,
    use_scoring_backend,
)
from repro.nn.grad_check import check_gradients, numerical_gradient
from repro.nn.layers import Dropout, Embedding, Linear, ReLU, Sequential, Sigmoid, Tanh
from repro.nn.loss import BCELoss, HuberLoss, MAELoss, MSELoss
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, AdaGrad, Adam, Optimizer, clip_grad_norm
from repro.nn.rnn import GRU, LSTM, BiGRU, GRUCell, LSTMCell
from repro.nn.schedule import (
    ConstantLR,
    CosineLR,
    ExponentialLR,
    LinearWarmup,
    LRSchedule,
    StepLR,
)
from repro.nn.serialization import load_module, load_state, save_module, save_state
from repro.nn.tensor import Tensor, as_tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "Dropout",
    "Sequential",
    "Tanh",
    "ReLU",
    "Sigmoid",
    "GRUCell",
    "GRU",
    "BiGRU",
    "LSTMCell",
    "LSTM",
    "MSELoss",
    "MAELoss",
    "HuberLoss",
    "BCELoss",
    "Optimizer",
    "SGD",
    "Adam",
    "AdaGrad",
    "clip_grad_norm",
    "LRSchedule",
    "ConstantLR",
    "StepLR",
    "ExponentialLR",
    "CosineLR",
    "LinearWarmup",
    "save_module",
    "load_module",
    "save_state",
    "load_state",
    "check_gradients",
    "numerical_gradient",
    "CompiledPathRank",
    "compiled_for",
    "compiled_if_cached",
    "get_scoring_backend",
    "set_scoring_backend",
    "use_scoring_backend",
    "resolve_scoring_backend",
]
