"""Module/parameter containers, mirroring the familiar framework contract.

A :class:`Module` tracks its :class:`Parameter` leaves and child modules
through attribute assignment, exposes them via :meth:`parameters` /
:meth:`named_parameters`, and serialises to a flat ``state_dict`` of
numpy arrays.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.errors import SerializationError
from repro.nn.tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor registered as a trainable leaf of a module."""

    def __init__(self, data: object, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)

    def freeze(self) -> None:
        """Stop gradient accumulation (used by PathRank's PR-A1 variant)."""
        self.requires_grad = False
        self.grad = None

    def unfreeze(self) -> None:
        self.requires_grad = True


class Module:
    """Base class for layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; registration is automatic.  ``training`` toggles
    behaviours such as dropout.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)
        object.__setattr__(self, "_weight_version", 0)

    def __setattr__(self, name: str, value: object) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            if value.name is None:
                value.name = name
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth first."""
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self, trainable_only: bool = False) -> list[Parameter]:
        params = [p for _, p in self.named_parameters()]
        if trainable_only:
            params = [p for p in params if p.requires_grad]
        return params

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self, trainable_only: bool = False) -> int:
        return sum(p.size for p in self.parameters(trainable_only=trainable_only))

    # ------------------------------------------------------------------
    # Modes
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", True)
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", False)
        return self

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    # ------------------------------------------------------------------
    # Weight versioning
    # ------------------------------------------------------------------
    @property
    def weight_version(self) -> int:
        """Monotonic counter identifying this module's current weights.

        Compiled inference kernels (:mod:`repro.nn.fused`) snapshot the
        parameters and key the snapshot on this counter, recompiling
        only when it moves.  :meth:`load_state_dict` bumps it
        automatically; code that mutates parameter ``.data`` in place
        through any other route must call :meth:`bump_weight_version`.
        """
        return self._weight_version

    def bump_weight_version(self) -> int:
        """Mark the weights as changed; returns the new version."""
        object.__setattr__(self, "_weight_version", self._weight_version + 1)
        return self._weight_version

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter keyed by dotted path."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values in place.

        With ``strict`` (the default) the key sets must match exactly and
        every array shape must agree.
        """
        own = dict(self.named_parameters())
        missing = sorted(set(own) - set(state))
        unexpected = sorted(set(state) - set(own))
        if strict and (missing or unexpected):
            raise SerializationError(
                f"state dict mismatch: missing={missing}, unexpected={unexpected}"
            )
        for name, parameter in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name])
            if value.shape != parameter.shape:
                raise SerializationError(
                    f"shape mismatch for {name!r}: "
                    f"expected {parameter.shape}, got {value.shape}"
                )
            parameter.data = value.astype(parameter.data.dtype, copy=True)
        self.bump_weight_version()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args: object, **kwargs: object) -> object:
        raise NotImplementedError

    def __call__(self, *args: object, **kwargs: object) -> object:
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}(params={self.num_parameters()}, children=[{children}])"
