"""Fused numpy inference kernel for PathRank-shaped models.

The autograd :class:`~repro.nn.tensor.Tensor` layer is the *reference*
forward implementation: every operation builds (or at least dispatches
through) the computation-graph machinery, the GRU advances one timestep
at a time through ~30 small Tensor ops, and each op allocates fresh
arrays.  That is exactly what training needs and far more than inference
needs — under ``no_grad`` the bookkeeping is pure overhead, and online
serving pays it per request.

:class:`CompiledPathRank` is the inference counterpart: the model's
weights snapshotted into flat contiguous arrays (float32 by default) and
a graph-free forward pass over preallocated per-thread buffers:

* **embedding gather** — one ``np.take`` into a reused buffer;
* **hoisted input projection** — ``x @ W_ih + b_ih`` for *all* timesteps
  as a single batched matmul before the recurrence; only the unavoidable
  ``h @ W_hh`` remains inside the per-step loop;
* **(Bi)GRU recurrence** — in-place gate math (stable sigmoid / tanh
  with ``out=``), masked state propagation via boolean ``np.copyto``;
* **pooling + FC head** — masked mean / final-state / additive-attention
  reduction and the two-layer head, all on the same workspace.

The arithmetic mirrors the module forward expression for expression, so
scores agree with the reference to float32 roundoff (and to ~1e-12 when
compiled with ``dtype=np.float64`` — the parity tests pin both).

**Staleness.**  A compiled kernel is a snapshot: it is keyed by the
source model's :attr:`~repro.nn.module.Module.weight_version` counter,
which bumps on ``load_state_dict``.  :func:`compiled_for` caches one
kernel per live model and recompiles only when the counter moved, so a
registry hot-swap (which loads fresh weights) can never serve a stale
snapshot.  Code that mutates parameter ``.data`` in place outside
``load_state_dict`` must call ``model.bump_weight_version()`` before the
next fused score.

**Backend seam.**  ``PathRank.score_paths`` (and everything above it:
the batching scorer, the serving facade, the evaluation harness)
dispatches through :func:`resolve_scoring_backend`.  Set the environment
variable ``REPRO_SCORING_BACKEND=module`` (or call
:func:`set_scoring_backend`, or pass ``backend="module"`` per call) to
force the reference Tensor forward; ``fused`` / ``auto`` (the default)
select this kernel.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from contextlib import contextmanager
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigError, ShapeError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.nn.module import Module

__all__ = [
    "DEFAULT_COMPILE_DTYPE",
    "CompiledPathRank",
    "compiled_for",
    "compiled_if_cached",
    "get_scoring_backend",
    "set_scoring_backend",
    "use_scoring_backend",
    "resolve_scoring_backend",
]

#: Compiled kernels default to float32: inference does not need the
#: float64 headroom the gradient checks require, and halving the memory
#: traffic is most of the point of a fused kernel.
DEFAULT_COMPILE_DTYPE = np.float32


def _sigmoid_into(x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Numerically-stable sigmoid written into ``out`` (may alias ``x``).

    Uses the identity ``sigmoid(x) = (tanh(x / 2) + 1) / 2``: ``tanh``
    saturates instead of overflowing, so this is as stable as the
    piecewise ``e^{-|x|}`` formulation of ``Tensor.sigmoid`` while
    costing four ufunc calls instead of eight — the recurrence runs this
    twice per gate block per timestep, so call count matters.
    """
    np.multiply(x, 0.5, out=out)
    np.tanh(out, out=out)
    out += 1.0
    out *= 0.5
    return out


class _Workspace:
    """Named scratch buffers, grown monotonically and reused across calls.

    Buffers live per ``(kernel, thread)``; a request for a larger shape
    reallocates, a smaller one returns a view of the existing base, so a
    serving process converges to zero steady-state allocation.
    """

    __slots__ = ("_base",)

    def __init__(self) -> None:
        self._base: dict[str, np.ndarray] = {}

    def get(self, name: str, shape: tuple[int, ...],
            dtype: np.dtype) -> np.ndarray:
        need = 1
        for extent in shape:
            need *= int(extent)
        base = self._base.get(name)
        if base is None or base.size < need or base.dtype != dtype:
            base = np.empty(max(need, 1), dtype=dtype)
            self._base[name] = base
        return base[:need].reshape(shape)


class CompiledPathRank:
    """Weight snapshot + fused forward for one PathRank-shaped model.

    Built structurally (duck-typed) from any module exposing PathRank's
    surface: ``embedding``, ``rnn`` (GRU or BiGRU), ``fc1``/``fc2``,
    ``pooling``, and the attention layers when ``pooling="attention"``.
    Instances are immutable snapshots — use :func:`compiled_for` for the
    version-checked cache.
    """

    def __init__(self, model: "Module", dtype: np.dtype | None = None) -> None:
        dtype = np.dtype(dtype if dtype is not None else DEFAULT_COMPILE_DTYPE)
        if dtype.kind != "f":
            raise ConfigError(f"compile dtype must be floating, got {dtype}")
        self.dtype = dtype
        self.weight_version = int(getattr(model, "weight_version", 0))

        def snap(array: np.ndarray) -> np.ndarray:
            return np.ascontiguousarray(array, dtype=dtype)

        try:
            self.embedding = snap(model.embedding.weight.data)
            self.pooling = str(model.pooling)
            self.bidirectional = bool(model.bidirectional)
            self.hidden_size = int(model.hidden_size)
            if self.bidirectional:
                cells = [model.rnn.forward_gru.cell, model.rnn.backward_gru.cell]
            else:
                cells = [model.rnn.cell]
            self.gru = [
                (snap(cell.weight_ih.data), snap(cell.weight_hh.data),
                 snap(cell.bias_ih.data), snap(cell.bias_hh.data))
                for cell in cells
            ]
            self.fc1_weight = snap(model.fc1.weight.data)
            self.fc1_bias = snap(model.fc1.bias.data)
            self.fc2_weight = snap(model.fc2.weight.data)
            self.fc2_bias = snap(model.fc2.bias.data)
            if self.pooling == "attention":
                self.attn_proj_weight = snap(model.attn_proj.weight.data)
                self.attn_proj_bias = snap(model.attn_proj.bias.data)
                self.attn_score_weight = snap(model.attn_score.weight.data)
        except AttributeError as exc:
            raise ConfigError(
                f"cannot compile {type(model).__name__}: model does not "
                f"expose the PathRank forward surface ({exc})"
            ) from exc
        self.num_vertices, self.embedding_dim = self.embedding.shape
        self.summary_size = (2 if self.bidirectional else 1) * self.hidden_size
        self._tls = threading.local()
        # Cumulative forward-pass profile (surfaced by the serving layer
        # under ``kernel.scoring.*``): call/volume counters, wall time,
        # and a log2 batch-size distribution.  One short lock hold per
        # forward — noise next to the matmuls it measures.
        self._profile_lock = threading.Lock()
        self._profile: dict[str, float] = {
            "forwards": 0, "paths_scored": 0, "steps_total": 0,
            "wall_s": 0.0,
        }
        self._profile_batches: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def _workspace(self) -> _Workspace:
        workspace = getattr(self._tls, "workspace", None)
        if workspace is None:
            workspace = self._tls.workspace = _Workspace()
        return workspace

    def _run_direction(
        self,
        direction: int,
        x: np.ndarray,
        mask_float: np.ndarray,
        mask_bool: np.ndarray,
        outputs: np.ndarray | None,
        workspace: _Workspace,
    ) -> np.ndarray:
        """One GRU direction; returns the final hidden state buffer."""
        w_ih, w_hh, b_ih, b_hh = self.gru[direction]
        steps, batch = mask_float.shape
        hidden = self.hidden_size
        two_h = 2 * hidden
        dtype = self.dtype

        # The hoisted input projection: every timestep's x @ W_ih in one
        # matmul.  The recurrent biases of the r/z gates do not interact
        # with the reset gate, so they fold into the hoist too; only the
        # candidate gate's b_hn must stay inside r * (h W_hn + b_hn).
        # The buffer is shared between directions (they run sequentially)
        # and between calls.
        gates_input = workspace.get("gates_input", (steps * batch, 3 * hidden),
                                    dtype)
        np.matmul(x, w_ih, out=gates_input)
        gates_input += b_ih
        gates_input[:, :two_h] += b_hh[:two_h]
        gates_input = gates_input.reshape(steps, batch, 3 * hidden)
        b_hn = b_hh[two_h:]

        gates_hidden = workspace.get("gates_hidden", (batch, 3 * hidden), dtype)
        gate_rz = workspace.get("gate_rz", (batch, two_h), dtype)
        hidden_n = workspace.get("hidden_n", (batch, hidden), dtype)
        candidate = workspace.get("candidate", (batch, hidden), dtype)
        blend = workspace.get("blend", (batch, hidden), dtype)
        state = workspace.get(f"state{direction}", (batch, hidden), dtype)
        state.fill(0.0)

        column = slice(direction * hidden, (direction + 1) * hidden)
        time_order = range(steps) if direction == 0 else range(steps - 1, -1, -1)
        mask_cols = mask_bool[:, :, None]
        for t in time_order:
            np.matmul(state, w_hh, out=gates_hidden)
            step_input = gates_input[t]
            # r = sigmoid(i_r + h_r), z = sigmoid(i_z + h_z) in one shot.
            np.add(step_input[:, :two_h], gates_hidden[:, :two_h], out=gate_rz)
            _sigmoid_into(gate_rz, gate_rz)
            # n = tanh(i_n + r * (h W_hn + b_hn))
            np.add(gates_hidden[:, two_h:], b_hn, out=hidden_n)
            np.multiply(gate_rz[:, :hidden], hidden_n, out=candidate)
            candidate += step_input[:, two_h:]
            np.tanh(candidate, out=candidate)
            # h' = (1 - z) * n + z * h = n + z * (h - n), applied only
            # where the mask is on.
            np.subtract(state, candidate, out=blend)
            blend *= gate_rz[:, hidden:two_h]
            blend += candidate
            np.copyto(state, blend, where=mask_cols[t])
            if outputs is not None:
                np.copyto(outputs[t, :, column], state)
        return state

    def forward(self, vertex_ids: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Scores for one padded batch, shape ``(batch,)``, ``float64``.

        ``vertex_ids`` and ``mask`` follow the ``(steps, batch)`` layout
        of :func:`repro.core.batching.encode_paths`.  Inference only —
        dropout is treated as identity, exactly like the module forward
        in eval mode.
        """
        ids = np.asarray(vertex_ids)
        if ids.ndim != 2:
            raise ShapeError(
                f"vertex_ids must be (steps, batch), got shape {ids.shape}")
        raw_mask = np.asarray(mask)
        if raw_mask.shape != ids.shape:
            raise ShapeError(
                f"mask shape {raw_mask.shape} does not match ids {ids.shape}")
        steps, batch = ids.shape
        dtype = self.dtype
        began = time.perf_counter()
        workspace = self._workspace()

        # Embedding gather, flattened so both direction matmuls reuse it.
        x = workspace.get("x", (steps * batch, self.embedding_dim), dtype)
        np.take(self.embedding, ids.reshape(-1), axis=0, out=x)

        mask_float = workspace.get("mask_float", (steps, batch), dtype)
        np.copyto(mask_float, raw_mask, casting="unsafe")
        mask_bool = workspace.get("mask_bool", (steps, batch), np.dtype(bool))
        np.greater(mask_float, 0.5, out=mask_bool)

        outputs = None
        if self.pooling != "final":
            outputs = workspace.get("outputs",
                                    (steps, batch, self.summary_size), dtype)
        summary = workspace.get("summary", (batch, self.summary_size), dtype)
        for direction in range(len(self.gru)):
            final = self._run_direction(direction, x, mask_float, mask_bool,
                                        outputs, workspace)
            if self.pooling == "final":
                width = self.hidden_size
                np.copyto(summary[:, direction * width:(direction + 1) * width],
                          final)

        if self.pooling == "mean":
            counts = np.maximum(mask_float.sum(axis=0), 1.0)
            np.einsum("tbs,tb->bs", outputs, mask_float, out=summary)
            summary /= counts[:, None]
        elif self.pooling == "attention":
            self._attention_pool(outputs, mask_float, summary, workspace)

        # FC head: tanh hidden layer, scalar logit, stable sigmoid.
        fc_hidden = workspace.get("fc_hidden",
                                  (batch, self.fc1_weight.shape[1]), dtype)
        np.matmul(summary, self.fc1_weight, out=fc_hidden)
        fc_hidden += self.fc1_bias
        np.tanh(fc_hidden, out=fc_hidden)
        logits = workspace.get("logits", (batch, 1), dtype)
        np.matmul(fc_hidden, self.fc2_weight, out=logits)
        logits += self.fc2_bias
        flat = logits.reshape(batch)
        scores = workspace.get("scores", (batch,), dtype)
        _sigmoid_into(flat, scores)
        result = scores.astype(np.float64)
        elapsed = time.perf_counter() - began
        with self._profile_lock:
            profile = self._profile
            profile["forwards"] += 1
            profile["paths_scored"] += batch
            profile["steps_total"] += steps * batch
            profile["wall_s"] += elapsed
            bucket = 1 << max(0, batch - 1).bit_length()
            self._profile_batches[bucket] = \
                self._profile_batches.get(bucket, 0) + 1
        return result

    __call__ = forward

    def profile_counters(self) -> dict[str, object]:
        """Cumulative forward-pass profile since this kernel was compiled.

        ``batch_le_<N>`` keys form a log2 batch-size distribution (the
        count of forwards whose batch fit under each power-of-two
        ceiling) — the direct evidence of whether batching/coalescing
        delivers the batch sizes the fused kernel is built for.
        """
        with self._profile_lock:
            profile = dict(self._profile)
            batches = dict(self._profile_batches)
        forwards = profile["forwards"]
        profile["mean_batch"] = (
            profile["paths_scored"] / forwards if forwards else 0.0)
        for bucket in sorted(batches):
            profile[f"batch_le_{bucket}"] = batches[bucket]
        return profile

    # ------------------------------------------------------------------
    # Shared-memory export / import (repro.exec)
    # ------------------------------------------------------------------
    def shared_payload(self) -> tuple[dict[str, np.ndarray], dict[str, object]]:
        """The snapshot's flat weight buffers as ``(arrays, meta)``.

        Everything :meth:`forward` reads is already a contiguous array
        on this object, so the export is a plain dict of those buffers;
        :meth:`from_shared` rebuilds a kernel whose weights are
        zero-copy views into a shared segment.
        """
        arrays: dict[str, np.ndarray] = {"embedding": self.embedding}
        for index, (w_ih, w_hh, b_ih, b_hh) in enumerate(self.gru):
            arrays[f"gru:{index}:w_ih"] = w_ih
            arrays[f"gru:{index}:w_hh"] = w_hh
            arrays[f"gru:{index}:b_ih"] = b_ih
            arrays[f"gru:{index}:b_hh"] = b_hh
        arrays["fc1_weight"] = self.fc1_weight
        arrays["fc1_bias"] = self.fc1_bias
        arrays["fc2_weight"] = self.fc2_weight
        arrays["fc2_bias"] = self.fc2_bias
        if self.pooling == "attention":
            arrays["attn_proj_weight"] = self.attn_proj_weight
            arrays["attn_proj_bias"] = self.attn_proj_bias
            arrays["attn_score_weight"] = self.attn_score_weight
        meta: dict[str, object] = {
            "dtype": str(self.dtype),
            "weight_version": self.weight_version,
            "pooling": self.pooling,
            "bidirectional": self.bidirectional,
            "hidden_size": self.hidden_size,
            "gru_cells": len(self.gru),
        }
        return arrays, meta

    @classmethod
    def from_shared(cls, arrays: dict[str, np.ndarray],
                    meta: dict[str, object]) -> "CompiledPathRank":
        """Rebuild a scoring kernel over a shared segment's buffers.

        The weight views stay zero-copy (the forward pass only reads
        them); per-thread workspaces and profile counters are fresh and
        private to the attaching process.
        """
        kernel = cls.__new__(cls)
        kernel.dtype = np.dtype(meta["dtype"])
        kernel.weight_version = int(meta["weight_version"])
        kernel.embedding = arrays["embedding"]
        kernel.pooling = str(meta["pooling"])
        kernel.bidirectional = bool(meta["bidirectional"])
        kernel.hidden_size = int(meta["hidden_size"])
        kernel.gru = [
            (arrays[f"gru:{index}:w_ih"], arrays[f"gru:{index}:w_hh"],
             arrays[f"gru:{index}:b_ih"], arrays[f"gru:{index}:b_hh"])
            for index in range(int(meta["gru_cells"]))
        ]
        kernel.fc1_weight = arrays["fc1_weight"]
        kernel.fc1_bias = arrays["fc1_bias"]
        kernel.fc2_weight = arrays["fc2_weight"]
        kernel.fc2_bias = arrays["fc2_bias"]
        if kernel.pooling == "attention":
            kernel.attn_proj_weight = arrays["attn_proj_weight"]
            kernel.attn_proj_bias = arrays["attn_proj_bias"]
            kernel.attn_score_weight = arrays["attn_score_weight"]
        kernel.num_vertices, kernel.embedding_dim = kernel.embedding.shape
        kernel.summary_size = (2 if kernel.bidirectional else 1) \
            * kernel.hidden_size
        kernel._tls = threading.local()
        kernel._profile_lock = threading.Lock()
        kernel._profile = {
            "forwards": 0, "paths_scored": 0, "steps_total": 0,
            "wall_s": 0.0,
        }
        kernel._profile_batches = {}
        return kernel

    def _attention_pool(self, outputs: np.ndarray, mask_float: np.ndarray,
                        summary: np.ndarray, workspace: _Workspace) -> None:
        """Masked additive attention, mirroring ``PathRank._attention_pool``."""
        steps, batch = mask_float.shape
        dtype = self.dtype
        flat = outputs.reshape(steps * batch, self.summary_size)
        projected = workspace.get("attn_projected",
                                  (steps * batch, self.attn_proj_weight.shape[1]),
                                  dtype)
        np.matmul(flat, self.attn_proj_weight, out=projected)
        projected += self.attn_proj_bias
        np.tanh(projected, out=projected)
        logits = workspace.get("attn_logits", (steps * batch, 1), dtype)
        np.matmul(projected, self.attn_score_weight, out=logits)
        logits = logits.reshape(steps, batch)
        # Push padded steps to -inf, then a masked, shifted softmax over time.
        penalty = workspace.get("attn_penalty", (steps, batch), dtype)
        np.subtract(1.0, mask_float, out=penalty)
        penalty *= -1e9
        logits += penalty
        logits -= logits.max(axis=0, keepdims=True)
        np.exp(logits, out=logits)
        logits *= mask_float
        logits /= logits.sum(axis=0, keepdims=True)
        np.einsum("tb,tbs->bs", logits, outputs, out=summary)

    def __repr__(self) -> str:
        return (f"CompiledPathRank(vertices={self.num_vertices}, "
                f"M={self.embedding_dim}, H={self.hidden_size}, "
                f"pooling={self.pooling!r}, dtype={self.dtype}, "
                f"weight_version={self.weight_version})")


# ----------------------------------------------------------------------
# Compiled-kernel cache
# ----------------------------------------------------------------------
_compiled_cache: "weakref.WeakKeyDictionary[object, dict[np.dtype, CompiledPathRank]]" = \
    weakref.WeakKeyDictionary()
_compiled_lock = threading.Lock()


def compiled_for(model: "Module",
                 dtype: np.dtype | None = None) -> CompiledPathRank:
    """The cached compiled kernel for ``model``, recompiled when stale.

    Staleness is the model's ``weight_version`` counter (bumped by
    ``load_state_dict``), so a hot-swapped or freshly loaded model always
    scores with its current weights while steady-state serving pays only
    a dictionary lookup.
    """
    dtype = np.dtype(dtype if dtype is not None else DEFAULT_COMPILE_DTYPE)
    version = int(getattr(model, "weight_version", 0))
    entry = _compiled_cache.get(model)
    if entry is not None:
        compiled = entry.get(dtype)
        if compiled is not None and compiled.weight_version == version:
            return compiled
    with _compiled_lock:
        entry = _compiled_cache.get(model)
        if entry is not None:
            compiled = entry.get(dtype)
            if compiled is not None and compiled.weight_version == version:
                return compiled
        compiled = CompiledPathRank(model, dtype=dtype)
        if entry is None or any(c.weight_version != version
                                for c in entry.values()):
            entry = {}  # drop snapshots of older weight versions
            _compiled_cache[model] = entry
        entry[dtype] = compiled
        return compiled


def compiled_if_cached(model: "Module",
                       dtype: np.dtype | None = None) -> CompiledPathRank | None:
    """The cached compiled kernel for ``model`` — without compiling one.

    Telemetry readers (``kernel.scoring.*`` callbacks) want the profile
    of the kernel serving actually used; ``None`` means nothing compiled
    this model yet (e.g. the module backend is active) and there is no
    profile to report.  Staleness is deliberately ignored: a superseded
    snapshot's counters still describe the forwards that really ran.
    """
    dtype = np.dtype(dtype if dtype is not None else DEFAULT_COMPILE_DTYPE)
    entry = _compiled_cache.get(model)
    return entry.get(dtype) if entry else None


# ----------------------------------------------------------------------
# Backend seam
# ----------------------------------------------------------------------
_VALID_SCORING_BACKENDS = ("auto", "fused", "module")


def _scoring_backend_from_env() -> str:
    name = os.environ.get("REPRO_SCORING_BACKEND", "auto").strip().lower()
    return name if name in _VALID_SCORING_BACKENDS else "auto"


_scoring_backend = _scoring_backend_from_env()


def set_scoring_backend(name: str) -> None:
    """Select the process-wide scoring backend.

    ``"fused"`` (and ``"auto"``, the default) score through the compiled
    numpy kernel; ``"module"`` forces the reference autograd forward.
    """
    global _scoring_backend
    if name not in _VALID_SCORING_BACKENDS:
        raise ConfigError(
            f"unknown scoring backend {name!r}; expected one of "
            f"{', '.join(_VALID_SCORING_BACKENDS)}"
        )
    _scoring_backend = name


def get_scoring_backend() -> str:
    """The currently selected scoring backend name."""
    return _scoring_backend


@contextmanager
def use_scoring_backend(name: str):
    """Temporarily select a scoring backend (tests, benchmarks)."""
    previous = get_scoring_backend()
    set_scoring_backend(name)
    try:
        yield
    finally:
        set_scoring_backend(previous)


def resolve_scoring_backend(override: str | None = None) -> str:
    """Resolve an optional per-call override against the global setting
    to a concrete backend: ``"fused"`` or ``"module"``."""
    name = override if override is not None else _scoring_backend
    if name not in _VALID_SCORING_BACKENDS:
        raise ConfigError(
            f"unknown scoring backend {name!r}; expected one of "
            f"{', '.join(_VALID_SCORING_BACKENDS)}"
        )
    return "module" if name == "module" else "fused"
