"""Learning-rate schedules driving an :class:`~repro.nn.optim.Optimizer`."""

from __future__ import annotations

import math

from repro.nn.optim import Optimizer

__all__ = ["LRSchedule", "ConstantLR", "StepLR", "ExponentialLR", "CosineLR", "LinearWarmup"]


class LRSchedule:
    """Base: call :meth:`step` once per epoch to update ``optimizer.lr``."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def lr_at(self, epoch: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        self.epoch += 1
        new_lr = self.lr_at(self.epoch)
        if new_lr <= 0:
            raise ValueError(f"schedule produced non-positive lr {new_lr} at epoch {self.epoch}")
        self.optimizer.lr = new_lr
        return new_lr


class ConstantLR(LRSchedule):
    def lr_at(self, epoch: int) -> float:
        return self.base_lr


class StepLR(LRSchedule):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class ExponentialLR(LRSchedule):
    def __init__(self, optimizer: Optimizer, gamma: float = 0.95) -> None:
        super().__init__(optimizer)
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.gamma = gamma

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma**epoch


class CosineLR(LRSchedule):
    """Cosine annealing from the base rate down to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 1e-6) -> None:
        super().__init__(optimizer)
        if total_epochs <= 0:
            raise ValueError(f"total_epochs must be positive, got {total_epochs}")
        if min_lr <= 0:
            raise ValueError(f"min_lr must be positive, got {min_lr}")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def lr_at(self, epoch: int) -> float:
        progress = min(epoch, self.total_epochs) / self.total_epochs
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1.0 + math.cos(math.pi * progress))


class LinearWarmup(LRSchedule):
    """Linear ramp to the base rate over ``warmup_epochs``, then constant."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int) -> None:
        super().__init__(optimizer)
        if warmup_epochs <= 0:
            raise ValueError(f"warmup_epochs must be positive, got {warmup_epochs}")
        self.warmup_epochs = warmup_epochs
        # Start the optimiser at the first ramp value rather than the peak.
        optimizer.lr = self.lr_at(0)

    def lr_at(self, epoch: int) -> float:
        if epoch >= self.warmup_epochs:
            return self.base_lr
        return self.base_lr * (epoch + 1) / (self.warmup_epochs + 1)
