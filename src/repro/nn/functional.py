"""Composite tensor operations built on :mod:`repro.nn.tensor`.

These are the free functions a layer implementation reaches for:
concatenation, stacking, masked selection, softmax, dropout, and the
embedding gather used by PathRank's vertex-embedding matrix ``B``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.nn.tensor import Tensor, as_tensor, unbroadcast

__all__ = [
    "add",
    "mul",
    "matmul",
    "concat",
    "stack",
    "where",
    "maximum",
    "minimum",
    "softmax",
    "log_softmax",
    "dropout",
    "embedding_lookup",
    "sigmoid",
    "tanh",
    "relu",
    "exp",
    "log",
    "square",
    "mean",
    "total",
    "chunk",
]


def add(a: Tensor | float, b: Tensor | float) -> Tensor:
    return as_tensor(a) + as_tensor(b)


def mul(a: Tensor | float, b: Tensor | float) -> Tensor:
    return as_tensor(a) * as_tensor(b)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    return as_tensor(a) @ as_tensor(b)


def sigmoid(x: Tensor) -> Tensor:
    return as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    return as_tensor(x).tanh()


def relu(x: Tensor) -> Tensor:
    return as_tensor(x).relu()


def exp(x: Tensor) -> Tensor:
    return as_tensor(x).exp()


def log(x: Tensor) -> Tensor:
    return as_tensor(x).log()


def square(x: Tensor) -> Tensor:
    x = as_tensor(x)
    return x * x


def mean(x: Tensor) -> Tensor:
    return as_tensor(x).mean()


def total(x: Tensor) -> Tensor:
    """Sum of all elements (named ``total`` to avoid shadowing ``sum``)."""
    return as_tensor(x).sum()


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with a slicing backward."""
    if not tensors:
        raise ShapeError("concat requires at least one tensor")
    parts = [as_tensor(t) for t in tensors]
    data = np.concatenate([p.data for p in parts], axis=axis)
    sizes = [p.shape[axis] for p in parts]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        for part, start, stop in zip(parts, offsets[:-1], offsets[1:]):
            if part.requires_grad:
                index: list[slice] = [slice(None)] * g.ndim
                index[axis] = slice(int(start), int(stop))
                out._send(part, np.ascontiguousarray(g[tuple(index)]))

    out = Tensor._make(data, tuple(parts), backward)
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack same-shape tensors along a new axis."""
    if not tensors:
        raise ShapeError("stack requires at least one tensor")
    parts = [as_tensor(t) for t in tensors]
    first_shape = parts[0].shape
    for part in parts[1:]:
        if part.shape != first_shape:
            raise ShapeError(f"stack shapes differ: {first_shape} vs {part.shape}")
    data = np.stack([p.data for p in parts], axis=axis)

    def backward(g: np.ndarray) -> None:
        slices = np.moveaxis(g, axis, 0)
        for part, piece in zip(parts, slices):
            if part.requires_grad:
                out._send(part, np.ascontiguousarray(piece))

    out = Tensor._make(data, tuple(parts), backward)
    return out


def where(condition: np.ndarray, a: Tensor | float, b: Tensor | float) -> Tensor:
    """Elementwise select: ``condition`` is a boolean array (not a tensor)."""
    cond = np.asarray(condition, dtype=bool)
    at, bt = as_tensor(a), as_tensor(b)
    data = np.where(cond, at.data, bt.data)

    def backward(g: np.ndarray) -> None:
        if at.requires_grad:
            out._send(at, unbroadcast(g * cond, at.shape))
        if bt.requires_grad:
            out._send(bt, unbroadcast(g * ~cond, bt.shape))

    out = Tensor._make(data, (at, bt), backward)
    return out


def maximum(a: Tensor | float, b: Tensor | float) -> Tensor:
    """Elementwise max; ties send the full gradient to the first operand."""
    at, bt = as_tensor(a), as_tensor(b)
    return where(at.data >= bt.data, at, bt)


def minimum(a: Tensor | float, b: Tensor | float) -> Tensor:
    """Elementwise min; ties send the full gradient to the first operand."""
    at, bt = as_tensor(a), as_tensor(b)
    return where(at.data <= bt.data, at, bt)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax built from differentiable primitives."""
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    x = as_tensor(x)
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: scale at train time so inference is identity."""
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    x = as_tensor(x)
    if not training or rate == 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep
    return x * Tensor(mask)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Gather rows of ``weight`` for integer ``indices`` of any shape.

    The backward pass scatter-adds, so repeated vertices in one batch
    accumulate gradient into the shared embedding row — the behaviour
    PathRank's fine-tuned variant (PR-A2) relies on.
    """
    idx = np.asarray(indices)
    if idx.dtype.kind not in "iu":
        raise TypeError(f"embedding indices must be integers, got dtype {idx.dtype}")
    if weight.ndim != 2:
        raise ShapeError(f"embedding weight must be 2-D, got shape {weight.shape}")
    if idx.size and (idx.min() < 0 or idx.max() >= weight.shape[0]):
        raise IndexError(
            f"embedding indices out of range [0, {weight.shape[0]}): "
            f"[{idx.min()}, {idx.max()}]"
        )
    return weight[idx]


def chunk(x: Tensor, chunks: int, axis: int = -1) -> list[Tensor]:
    """Split ``x`` into ``chunks`` equal parts along ``axis``."""
    x = as_tensor(x)
    axis = axis % x.ndim
    size = x.shape[axis]
    if size % chunks != 0:
        raise ShapeError(f"cannot split axis of size {size} into {chunks} equal chunks")
    step = size // chunks
    pieces: list[Tensor] = []
    for i in range(chunks):
        index: list[slice] = [slice(None)] * x.ndim
        index[axis] = slice(i * step, (i + 1) * step)
        pieces.append(x[tuple(index)])
    return pieces
