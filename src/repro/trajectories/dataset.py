"""Trajectory datasets: containers, splits, persistence.

A :class:`TrajectoryDataset` bundles a network with a trip corpus and
provides the train/validation/test split used by every experiment.
Splitting is *by trip* with a fixed seed, so all models in a comparison
see identical data.
"""

from __future__ import annotations

import json
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path as FilePath

import numpy as np

from repro.errors import DataError, SerializationError
from repro.graph.io import network_from_dict, network_to_dict
from repro.graph.network import RoadNetwork
from repro.graph.path import Path
from repro.rng import RngLike, make_rng
from repro.trajectories.generator import Trip

__all__ = ["TrajectoryDataset", "DatasetSplit"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class DatasetSplit:
    """Train/validation/test partition of a dataset's trips."""

    train: tuple[Trip, ...]
    validation: tuple[Trip, ...]
    test: tuple[Trip, ...]

    @property
    def sizes(self) -> tuple[int, int, int]:
        return (len(self.train), len(self.validation), len(self.test))


class TrajectoryDataset:
    """A trip corpus over one road network."""

    def __init__(self, network: RoadNetwork, trips: Sequence[Trip]) -> None:
        if not trips:
            raise DataError("a trajectory dataset needs at least one trip")
        for trip in trips:
            if trip.path.network is not network:
                raise DataError(
                    f"trip {trip.trip_id} belongs to a different network"
                )
        self.network = network
        self.trips = tuple(trips)

    def __len__(self) -> int:
        return len(self.trips)

    def __iter__(self) -> Iterator[Trip]:
        return iter(self.trips)

    def __getitem__(self, index: int) -> Trip:
        return self.trips[index]

    @property
    def num_drivers(self) -> int:
        return len({trip.driver_id for trip in self.trips})

    def trips_of_driver(self, driver_id: int) -> list[Trip]:
        return [trip for trip in self.trips if trip.driver_id == driver_id]

    def mean_path_length(self) -> float:
        return float(np.mean([trip.path.length for trip in self.trips]))

    def split(
        self,
        train_fraction: float = 0.7,
        validation_fraction: float = 0.1,
        rng: RngLike = None,
    ) -> DatasetSplit:
        """Shuffled split by trip; the remainder goes to test.

        Guarantees at least one trip in train when fractions allow, and
        validates that all three parts are consistent with the corpus
        size.
        """
        if not 0.0 < train_fraction < 1.0:
            raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
        if validation_fraction < 0 or train_fraction + validation_fraction >= 1.0:
            raise ValueError(
                "fractions must satisfy 0 < train, 0 <= validation, "
                f"train + validation < 1; got ({train_fraction}, {validation_fraction})"
            )
        generator = make_rng(rng)
        order = generator.permutation(len(self.trips))
        n_train = max(1, int(round(train_fraction * len(self.trips))))
        n_val = int(round(validation_fraction * len(self.trips)))
        n_train = min(n_train, len(self.trips) - 1)
        train_idx = order[:n_train]
        val_idx = order[n_train:n_train + n_val]
        test_idx = order[n_train + n_val:]
        if len(test_idx) == 0:
            raise ValueError("split produced an empty test set; lower the fractions")
        pick = lambda idx: tuple(self.trips[int(i)] for i in idx)  # noqa: E731
        return DatasetSplit(train=pick(train_idx), validation=pick(val_idx),
                            test=pick(test_idx))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "format_version": _FORMAT_VERSION,
            "network": network_to_dict(self.network),
            "trips": [
                {
                    "trip_id": trip.trip_id,
                    "driver_id": trip.driver_id,
                    "vertices": list(trip.path.vertices),
                }
                for trip in self.trips
            ],
        }

    @classmethod
    def from_dict(cls, document: dict) -> "TrajectoryDataset":
        if not isinstance(document, dict):
            raise SerializationError("dataset document must be a mapping")
        if document.get("format_version") != _FORMAT_VERSION:
            raise SerializationError(
                f"unsupported dataset version {document.get('format_version')!r}"
            )
        network = network_from_dict(document["network"])
        try:
            trips = [
                Trip(
                    trip_id=int(row["trip_id"]),
                    driver_id=int(row["driver_id"]),
                    path=Path(network, row["vertices"]),
                )
                for row in document["trips"]
            ]
        except (KeyError, TypeError) as exc:
            raise SerializationError(f"malformed dataset document: {exc}") from exc
        return cls(network, trips)

    def save(self, path: str | FilePath) -> None:
        path = FilePath(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)

    @classmethod
    def load(cls, path: str | FilePath) -> "TrajectoryDataset":
        path = FilePath(path)
        if not path.exists():
            raise SerializationError(f"no such dataset file: {path}")
        with open(path, encoding="utf-8") as handle:
            try:
                document = json.load(handle)
            except json.JSONDecodeError as exc:
                raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
        return cls.from_dict(document)

    def __repr__(self) -> str:
        return (f"TrajectoryDataset(trips={len(self.trips)}, "
                f"drivers={self.num_drivers}, network={self.network.name!r})")
