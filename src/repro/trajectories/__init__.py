"""Trajectory substrate: synthetic fleets, GPS rendering, map matching."""

from repro.trajectories.dataset import DatasetSplit, TrajectoryDataset
from repro.trajectories.drivers import ARCHETYPES, DriverProfile, sample_population
from repro.trajectories.generator import (
    FleetConfig,
    TrajectoryGenerator,
    Trip,
    generate_fleet,
)
from repro.trajectories.gps import GPSPoint, Trajectory, render_path_to_gps
from repro.trajectories.map_matching import MapMatcher, MatchResult

__all__ = [
    "GPSPoint",
    "Trajectory",
    "render_path_to_gps",
    "DriverProfile",
    "ARCHETYPES",
    "sample_population",
    "Trip",
    "FleetConfig",
    "TrajectoryGenerator",
    "generate_fleet",
    "MapMatcher",
    "MatchResult",
    "TrajectoryDataset",
    "DatasetSplit",
]
