"""Synthetic fleet simulation.

Produces the reproduction's stand-in for the paper's trajectory corpus
(183 vehicles, 180M GPS records over North Jutland): a population of
preference-driven drivers executing trips between sampled OD pairs.
Each trip records the *chosen vertex path* (what map-matching would
recover) and can optionally render raw GPS fixes for the map-matching
pipeline itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.errors import DataError, NoPathError
from repro.graph.network import RoadNetwork
from repro.graph.path import Path
from repro.graph.shortest_path import shortest_path
from repro.rng import RngLike, make_rng, spawn
from repro.trajectories.drivers import DriverProfile, sample_population
from repro.trajectories.gps import Trajectory, render_path_to_gps

__all__ = ["Trip", "FleetConfig", "TrajectoryGenerator", "generate_fleet"]


@dataclass(frozen=True)
class Trip:
    """One realised trip: the driver's chosen path through the network."""

    trip_id: int
    driver_id: int
    path: Path

    @property
    def source(self) -> int:
        return self.path.source

    @property
    def target(self) -> int:
        return self.path.target


@dataclass(frozen=True)
class FleetConfig:
    """Fleet-simulation parameters.

    ``min_trip_distance`` (metres, straight-line) filters out trivially
    short OD pairs whose candidate sets would be degenerate — mirroring
    the paper's preprocessing, which discards very short trajectories.
    ``via_detour_probability`` makes a driver occasionally route through
    a random intermediate vertex (errands, habits), adding the kind of
    path diversity real trajectories show.

    ``num_od_hotspots`` models commuting regularity: the paper's corpus
    (183 vehicles over two years in one region) revisits the same
    origin-destination pairs constantly, so train and test trajectories
    share OD pairs even though the trips themselves differ.  When set,
    every trip draws its OD pair from a fixed pool of that many hotspot
    pairs (optionally reversed); ``None`` samples a fresh OD pair per
    trip, which yields the strictly harder unseen-OD generalisation
    setting explored in the extension benchmarks.
    """

    num_drivers: int = 20
    trips_per_driver: int = 10
    min_trip_distance: float = 1500.0
    via_detour_probability: float = 0.05
    max_od_attempts: int = 200
    num_od_hotspots: int | None = 60
    reverse_od_probability: float = 0.5

    def __post_init__(self) -> None:
        if self.num_drivers < 1 or self.trips_per_driver < 1:
            raise ValueError("num_drivers and trips_per_driver must be >= 1")
        if self.min_trip_distance < 0:
            raise ValueError("min_trip_distance must be >= 0")
        if not 0.0 <= self.via_detour_probability <= 1.0:
            raise ValueError("via_detour_probability must be in [0, 1]")
        if self.max_od_attempts < 1:
            raise ValueError("max_od_attempts must be >= 1")
        if self.num_od_hotspots is not None and self.num_od_hotspots < 1:
            raise ValueError("num_od_hotspots must be >= 1 or None")
        if not 0.0 <= self.reverse_od_probability <= 1.0:
            raise ValueError("reverse_od_probability must be in [0, 1]")


class TrajectoryGenerator:
    """Simulates trips for a driver population over a network."""

    def __init__(
        self,
        network: RoadNetwork,
        population: Sequence[DriverProfile],
        config: FleetConfig | None = None,
    ) -> None:
        if not population:
            raise ValueError("population must not be empty")
        if network.num_vertices < 2:
            raise ValueError("network too small to generate trips")
        self.network = network
        self.population = list(population)
        self.config = config or FleetConfig()
        self._hotspots: list[tuple[int, int]] | None = None

    def _fresh_od(self, rng: np.random.Generator) -> tuple[int, int]:
        ids = self.network.vertex_ids()
        for _ in range(self.config.max_od_attempts):
            source, target = rng.choice(len(ids), size=2, replace=False)
            s, d = ids[int(source)], ids[int(target)]
            if self.network.euclidean(s, d) >= self.config.min_trip_distance:
                return s, d
        raise DataError(
            "could not sample a sufficiently long OD pair; lower "
            "min_trip_distance for this network"
        )

    def _hotspot_pool(self, rng: np.random.Generator) -> list[tuple[int, int]]:
        """Lazily build the fixed hotspot pool from its own stream.

        The pool depends only on the network and the fleet seed, so every
        driver shares the same travel-demand pattern.
        """
        if self._hotspots is None:
            pool_rng = np.random.default_rng(rng.integers(0, 2**63 - 1))
            count = self.config.num_od_hotspots or 0
            self._hotspots = [self._fresh_od(pool_rng) for _ in range(count)]
        return self._hotspots

    def _sample_od(self, rng: np.random.Generator) -> tuple[int, int]:
        if self.config.num_od_hotspots is None:
            return self._fresh_od(rng)
        pool = self._hotspot_pool(rng)
        source, target = pool[int(rng.integers(len(pool)))]
        if rng.random() < self.config.reverse_od_probability:
            return target, source
        return source, target

    def _route(self, driver: DriverProfile, source: int, target: int,
               rng: np.random.Generator) -> Path:
        """The driver's chosen path, possibly via a detour waypoint."""
        cost = driver.cost_function()
        direct = shortest_path(self.network, source, target, cost)
        if rng.random() >= self.config.via_detour_probability:
            return direct
        # Detour through a vertex near the direct path's midpoint.
        midpoint = direct.vertices[direct.num_vertices // 2]
        neighbours = self.network.successors(midpoint)
        if not neighbours:
            return direct
        via = int(neighbours[int(rng.integers(len(neighbours)))])
        if via in (source, target):
            return direct
        try:
            first = shortest_path(self.network, source, via, cost)
            second = shortest_path(self.network, via, target, cost)
        except NoPathError:
            return direct
        combined_vertices = first.vertices + second.vertices[1:]
        if len(set(combined_vertices)) != len(combined_vertices):
            return direct  # the detour would revisit vertices; keep it simple
        return first.concat(second)

    def generate_trip(self, trip_id: int, driver: DriverProfile,
                      rng: RngLike = None) -> Trip:
        generator = make_rng(rng)
        source, target = self._sample_od(generator)
        path = self._route(driver, source, target, generator)
        return Trip(trip_id=trip_id, driver_id=driver.driver_id, path=path)

    def generate(self, rng: RngLike = None) -> list[Trip]:
        """All trips for the configured fleet (deterministic given rng)."""
        generator = make_rng(rng)
        trips: list[Trip] = []
        trip_id = 0
        for driver in self.population:
            driver_rng = np.random.default_rng(
                generator.integers(0, 2**63 - 1)
            )
            for _ in range(self.config.trips_per_driver):
                trips.append(self.generate_trip(trip_id, driver, rng=driver_rng))
                trip_id += 1
        return trips

    def render_gps(self, trips: Sequence[Trip], sample_interval: float = 10.0,
                   noise_std: float = 8.0, rng: RngLike = None) -> list[Trajectory]:
        """Raw GPS fixes for the given trips (for map-matching demos)."""
        generator = make_rng(rng)
        return [
            render_path_to_gps(
                trip.path,
                trip_id=trip.trip_id,
                vehicle_id=trip.driver_id,
                sample_interval=sample_interval,
                noise_std=noise_std,
                rng=generator,
            )
            for trip in trips
        ]


def generate_fleet(
    network: RoadNetwork,
    num_drivers: int = 20,
    trips_per_driver: int = 10,
    rng: RngLike = None,
    config: FleetConfig | None = None,
) -> tuple[list[DriverProfile], list[Trip]]:
    """Convenience wrapper: sample a population and its trips."""
    generator = make_rng(rng)
    population_rng, trip_rng = spawn(generator, 2)
    if config is None:
        config = FleetConfig(num_drivers=num_drivers, trips_per_driver=trips_per_driver)
    population = sample_population(config.num_drivers, rng=population_rng)
    trips = TrajectoryGenerator(network, population, config).generate(rng=trip_rng)
    return population, trips
