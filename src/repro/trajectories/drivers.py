"""Latent driver route-choice preferences.

The paper's premise is that local drivers systematically choose paths
that are neither shortest nor fastest.  The synthetic fleet manufactures
exactly that signal: each driver carries a *preference profile* —
multiplicative aversions per road category plus a stable per-edge
familiarity factor — and routes by minimising the resulting personalised
cost.  A population mixes archetypes (motorway lovers, motorway
avoiders, balanced drivers, ...) so the learned ranking cannot collapse
to a single global rule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.network import Edge, RoadCategory
from repro.graph.shortest_path import CostFunction
from repro.rng import RngLike, make_rng

__all__ = ["DriverProfile", "ARCHETYPES", "sample_population"]


@dataclass(frozen=True)
class DriverProfile:
    """One driver's route-choice preferences.

    ``category_multipliers`` scale each road category's travel time in
    the driver's perceived cost (>1 = avoided, <1 = preferred).
    ``familiarity_noise`` is the log-std of a stable per-edge factor,
    modelling idiosyncratic knowledge of particular streets; it is
    deterministic per (driver, edge), so a driver is consistent across
    trips.
    """

    driver_id: int
    category_multipliers: dict[RoadCategory, float]
    familiarity_noise: float = 0.15
    archetype: str = "custom"

    def __post_init__(self) -> None:
        for category in RoadCategory:
            value = self.category_multipliers.get(category)
            if value is None:
                raise ValueError(f"profile missing multiplier for {category}")
            if value <= 0:
                raise ValueError(f"multiplier for {category} must be positive, got {value}")
        if self.familiarity_noise < 0:
            raise ValueError(
                f"familiarity_noise must be non-negative, got {self.familiarity_noise}"
            )

    def _familiarity(self, edge: Edge) -> float:
        """Stable log-normal factor per (driver, edge)."""
        if self.familiarity_noise == 0.0:
            return 1.0
        seed = hash((self.driver_id, edge.source, edge.target)) & 0xFFFFFFFF
        draw = np.random.default_rng(seed).normal(0.0, self.familiarity_noise)
        return float(np.exp(draw))

    def perceived_cost(self, edge: Edge) -> float:
        """The driver's subjective cost of traversing ``edge``."""
        return edge.travel_time * self.category_multipliers[edge.category] \
            * self._familiarity(edge)

    def cost_function(self) -> CostFunction:
        """An edge-cost function for the routing algorithms."""
        return self.perceived_cost


#: Named archetypes with (category multipliers, mixture weight).  The
#: multipliers were chosen so each archetype's preferred routes visibly
#: deviate from both shortest-distance and fastest-time routes.  The
#: mixture is deliberately dominated by one mainstream archetype: the
#: paper's premise (and its reported τ ≈ 0.7) requires local drivers to
#: be *predictable as a population* even though individuals differ; a
#: uniform archetype mix would cap every model's attainable rank
#: correlation far below what the paper observes on real trajectories.
ARCHETYPES: dict[str, tuple[dict[RoadCategory, float], float]] = {
    "motorway_lover": (
        {
            RoadCategory.MOTORWAY: 0.5,
            RoadCategory.ARTERIAL: 0.7,
            RoadCategory.LOCAL: 1.3,
            RoadCategory.RESIDENTIAL: 1.9,
        },
        0.15,
    ),
    "motorway_avoider": (
        {
            RoadCategory.MOTORWAY: 2.2,
            RoadCategory.ARTERIAL: 0.55,
            RoadCategory.LOCAL: 1.0,
            RoadCategory.RESIDENTIAL: 1.5,
        },
        0.05,
    ),
    "main_street_regular": (
        {
            RoadCategory.MOTORWAY: 0.95,
            RoadCategory.ARTERIAL: 0.45,
            RoadCategory.LOCAL: 1.05,
            RoadCategory.RESIDENTIAL: 1.8,
        },
        0.60,
    ),
    "time_minimiser": (
        {
            RoadCategory.MOTORWAY: 0.9,
            RoadCategory.ARTERIAL: 0.8,
            RoadCategory.LOCAL: 1.0,
            RoadCategory.RESIDENTIAL: 1.2,
        },
        0.20,
    ),
}


def sample_population(
    num_drivers: int,
    rng: RngLike = None,
    archetypes: dict[str, tuple[dict[RoadCategory, float], float]] | None = None,
    multiplier_jitter: float = 0.05,
    familiarity_noise: float = 0.05,
) -> list[DriverProfile]:
    """Draw a driver population from the archetype mixture.

    Each driver perturbs its archetype's multipliers log-normally by
    ``multiplier_jitter`` so no two drivers are identical.
    """
    if num_drivers < 1:
        raise ValueError(f"num_drivers must be >= 1, got {num_drivers}")
    if multiplier_jitter < 0:
        raise ValueError(f"multiplier_jitter must be >= 0, got {multiplier_jitter}")
    table = archetypes if archetypes is not None else ARCHETYPES
    if not table:
        raise ValueError("archetype table is empty")
    generator = make_rng(rng)

    names = list(table)
    weights = np.array([table[name][1] for name in names], dtype=float)
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ValueError("archetype weights must be non-negative and sum > 0")
    weights = weights / weights.sum()

    population: list[DriverProfile] = []
    for driver_id in range(num_drivers):
        name = names[int(generator.choice(len(names), p=weights))]
        base = table[name][0]
        multipliers = {
            category: float(base[category] * np.exp(
                generator.normal(0.0, multiplier_jitter)))
            for category in RoadCategory
        }
        population.append(
            DriverProfile(
                driver_id=driver_id,
                category_multipliers=multipliers,
                familiarity_noise=familiarity_noise,
                archetype=name,
            )
        )
    return population
