"""HMM map matching: raw GPS fixes → a network vertex path.

The paper consumes *map-matched* trajectory paths; this module supplies
that preprocessing step with the standard hidden-Markov formulation of
Newson & Krumm (2009):

* **states** — for each GPS fix, the ``k`` directed edges nearest to the
  fix (exact point-to-segment projection, computed vectorised over all
  edges — road networks at the reproduction's scale make a full scan
  cheaper than an index);
* **emission** — Gaussian in the fix-to-edge distance (std ``sigma``);
* **transition** — exponential in the absolute difference between the
  on-network route distance of consecutive projections and the
  straight-line distance of their fixes (scale ``beta``): candidate
  routes that detour wildly relative to the vehicle's actual
  displacement are implausible;
* **decoding** — Viterbi; the edge sequence is stitched with shortest
  paths and collapsed into one loop-free vertex path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import DataError, NoPathError
from repro.graph.network import Edge, RoadNetwork
from repro.graph.path import Path
from repro.graph.shortest_path import dijkstra, length_cost, shortest_path
from repro.trajectories.gps import Trajectory

__all__ = ["MapMatcher", "MatchResult"]


@dataclass(frozen=True)
class MatchResult:
    """A matched trajectory: the inferred path and diagnostics."""

    path: Path
    matched_edges: tuple[tuple[int, int], ...]
    log_likelihood: float


@dataclass(frozen=True)
class _State:
    """One candidate: a directed edge, the projection fraction along it,
    and the fix-to-projection distance."""

    edge: Edge
    fraction: float
    distance: float


class MapMatcher:
    """Reusable matcher for one road network (precomputes edge geometry)."""

    def __init__(
        self,
        network: RoadNetwork,
        sigma: float = 15.0,
        beta: float = 80.0,
        candidates_per_point: int = 6,
    ) -> None:
        if sigma <= 0 or beta <= 0:
            raise ValueError(f"sigma and beta must be positive, got ({sigma}, {beta})")
        if candidates_per_point < 1:
            raise ValueError(
                f"candidates_per_point must be >= 1, got {candidates_per_point}"
            )
        if network.num_edges == 0:
            raise ValueError("cannot match against a network with no edges")
        self.network = network
        self.sigma = float(sigma)
        self.beta = float(beta)
        self.candidates_per_point = int(candidates_per_point)

        self._edges: list[Edge] = list(network.edges())
        ax, ay, bx, by = [], [], [], []
        for edge in self._edges:
            a = network.vertex(edge.source)
            b = network.vertex(edge.target)
            ax.append(a.x)
            ay.append(a.y)
            bx.append(b.x)
            by.append(b.y)
        self._ax = np.array(ax)
        self._ay = np.array(ay)
        self._dx = np.array(bx) - self._ax
        self._dy = np.array(by) - self._ay
        self._len2 = np.maximum(self._dx**2 + self._dy**2, 1e-12)

    # ------------------------------------------------------------------
    # HMM pieces
    # ------------------------------------------------------------------
    def _candidates(self, x: float, y: float) -> list[_State]:
        """The k nearest directed edges by point-to-segment distance."""
        t = np.clip(((x - self._ax) * self._dx + (y - self._ay) * self._dy)
                    / self._len2, 0.0, 1.0)
        px = self._ax + t * self._dx
        py = self._ay + t * self._dy
        dist2 = (px - x) ** 2 + (py - y) ** 2
        k = min(self.candidates_per_point, len(self._edges))
        best = np.argpartition(dist2, k - 1)[:k]
        states = [
            _State(edge=self._edges[int(i)], fraction=float(t[int(i)]),
                   distance=float(math.sqrt(dist2[int(i)])))
            for i in best
        ]
        states.sort(key=lambda s: s.distance)
        return states

    def _emission_logp(self, distance: float) -> float:
        return -0.5 * (distance / self.sigma) ** 2

    def _transition_logp(self, route_distance: float, crow_distance: float) -> float:
        return -abs(route_distance - crow_distance) / self.beta

    def _route_distance(
        self,
        from_state: _State,
        to_state: _State,
        distance_cache: dict[int, dict[int, float]],
    ) -> float | None:
        """On-network distance between two projection points."""
        e1, e2 = from_state.edge, to_state.edge
        if e1.key == e2.key:
            if to_state.fraction >= from_state.fraction:
                return (to_state.fraction - from_state.fraction) * e1.length
            # Driving backwards along one edge means leaving and re-entering.
            remaining = (1.0 - from_state.fraction) * e1.length
            comeback = self._vertex_distance(e1.target, e1.source, distance_cache)
            if comeback is None:
                return None
            return remaining + comeback + to_state.fraction * e2.length
        head = (1.0 - from_state.fraction) * e1.length
        middle = self._vertex_distance(e1.target, e2.source, distance_cache)
        if middle is None:
            return None
        return head + middle + to_state.fraction * e2.length

    def _vertex_distance(
        self, source: int, target: int, cache: dict[int, dict[int, float]]
    ) -> float | None:
        if source == target:
            return 0.0
        table = cache.get(source)
        if table is None:
            table, _ = dijkstra(self.network, source, cost=length_cost)
            cache[source] = table
        return table.get(target)

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(self, trajectory: Trajectory) -> MatchResult:
        """Viterbi-decode ``trajectory`` into a vertex path.

        Raises :class:`DataError` when no plausible state sequence exists
        (e.g. the fixes are far outside the network or disconnected).
        """
        points = trajectory.points
        layers = [self._candidates(p.x, p.y) for p in points]
        distance_cache: dict[int, dict[int, float]] = {}

        scores = [self._emission_logp(s.distance) for s in layers[0]]
        back: list[list[int]] = []
        for t in range(1, len(points)):
            crow = points[t - 1].distance_to(points[t])
            new_scores: list[float] = []
            pointers: list[int] = []
            for state in layers[t]:
                best_score = -math.inf
                best_prev = -1
                for i, prev_state in enumerate(layers[t - 1]):
                    if scores[i] == -math.inf:
                        continue
                    route = self._route_distance(prev_state, state, distance_cache)
                    if route is None:
                        continue
                    candidate = scores[i] + self._transition_logp(route, crow)
                    if candidate > best_score:
                        best_score = candidate
                        best_prev = i
                emission = self._emission_logp(state.distance)
                new_scores.append(best_score + emission if best_prev >= 0 else -math.inf)
                pointers.append(best_prev)
            if all(score == -math.inf for score in new_scores):
                raise DataError(
                    f"map matching broke at fix {t}: no reachable candidate states"
                )
            scores = new_scores
            back.append(pointers)

        best_final = int(np.argmax(scores))
        if scores[best_final] == -math.inf:
            raise DataError("map matching found no feasible state sequence")
        indices = [best_final]
        for pointers in reversed(back):
            prev = pointers[indices[-1]]
            if prev < 0:
                raise DataError("map matching backtrack hit an unreachable state")
            indices.append(prev)
        indices.reverse()
        matched_states = [layers[t][i] for t, i in enumerate(indices)]

        path = self._stitch(matched_states)
        return MatchResult(
            path=path,
            matched_edges=tuple(s.edge.key for s in matched_states),
            log_likelihood=float(scores[best_final]),
        )

    def _stitch(self, states: list[_State]) -> Path:
        """Join the decoded states into one vertex path.

        A projection that lands (within ``endpoint_tolerance`` metres) on
        an edge endpoint anchors the route at that *vertex* rather than
        committing to the whole edge — otherwise a fix sitting exactly on
        a junction would drag in an arbitrary incident edge and create a
        spurious final or initial leg.
        """
        endpoint_tolerance = 1.0  # metres
        anchors: list[tuple[str, object]] = []
        for state in states:
            offset = state.fraction * state.edge.length
            if offset <= endpoint_tolerance:
                anchor: tuple[str, object] = ("vertex", state.edge.source)
            elif state.edge.length - offset <= endpoint_tolerance:
                anchor = ("vertex", state.edge.target)
            else:
                anchor = ("edge", state.edge)
            if not anchors or anchors[-1] != anchor:
                anchors.append(anchor)

        vertices: list[int] = []

        def connect_to(target: int) -> None:
            if vertices and vertices[-1] == target:
                return
            if not vertices:
                vertices.append(target)
                return
            try:
                connector = shortest_path(self.network, vertices[-1], target)
            except NoPathError as exc:
                raise DataError(
                    f"matched positions {vertices[-1]} -> {target} are not connected"
                ) from exc
            vertices.extend(connector.vertices[1:])

        for kind, value in anchors:
            if kind == "vertex":
                connect_to(int(value))  # type: ignore[arg-type]
            else:
                edge = value  # type: ignore[assignment]
                if len(vertices) >= 2 and vertices[-2] == edge.source \
                        and vertices[-1] == edge.target:
                    continue  # already traversing this edge
                connect_to(edge.source)
                vertices.append(edge.target)

        cleaned = self._remove_loops(vertices)
        if len(cleaned) < 2:
            raise DataError(
                "matched trajectory collapsed to a single vertex; the trip is "
                "too short to map-match"
            )
        return Path(self.network, cleaned)

    @staticmethod
    def _remove_loops(vertices: list[int]) -> list[int]:
        """Make the vertex sequence loop-free.

        At each revisit, remove whichever is smaller: the cycle between
        the two visits, or the tail from the revisit onward.  Cutting the
        cycle handles mid-route noise wiggles; cutting the tail handles a
        spurious final spur that would otherwise delete most of the path.
        """
        result = list(vertices)
        while True:
            position: dict[int, int] = {}
            revisit: tuple[int, int] | None = None
            for index, vertex in enumerate(result):
                if vertex in position:
                    revisit = (position[vertex], index)
                    break
                position[vertex] = index
            if revisit is None:
                return result
            first, second = revisit
            cycle_cost = second - first
            tail_cost = len(result) - second
            if cycle_cost <= tail_cost:
                result = result[: first + 1] + result[second + 1:]
            else:
                result = result[:second]
