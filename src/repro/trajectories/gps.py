"""GPS records and trajectories.

The paper's raw input is a stream of timestamped GPS positions per
vehicle.  :class:`GPSPoint` and :class:`Trajectory` model that stream;
:func:`render_path_to_gps` simulates a vehicle driving a network path at
the edges' speeds and emitting noisy fixes at a fixed sampling interval,
which is how the synthetic fleet produces raw data for the map-matching
substrate.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro.errors import DataError
from repro.graph.path import Path
from repro.rng import RngLike, make_rng

__all__ = ["GPSPoint", "Trajectory", "render_path_to_gps"]


@dataclass(frozen=True)
class GPSPoint:
    """One fix: planar position (metres) and timestamp (seconds)."""

    x: float
    y: float
    t: float

    def distance_to(self, other: "GPSPoint") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


class Trajectory:
    """A time-ordered sequence of GPS points for one trip."""

    __slots__ = ("trip_id", "vehicle_id", "points")

    def __init__(self, trip_id: int, vehicle_id: int, points: Sequence[GPSPoint]) -> None:
        pts = tuple(points)
        if len(pts) < 2:
            raise DataError(f"trajectory {trip_id} needs at least 2 points, got {len(pts)}")
        for a, b in zip(pts, pts[1:]):
            if b.t < a.t:
                raise DataError(f"trajectory {trip_id} has non-monotone timestamps")
        self.trip_id = int(trip_id)
        self.vehicle_id = int(vehicle_id)
        self.points = pts

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[GPSPoint]:
        return iter(self.points)

    def __getitem__(self, index: int) -> GPSPoint:
        return self.points[index]

    @property
    def duration(self) -> float:
        """Elapsed seconds between the first and last fix."""
        return self.points[-1].t - self.points[0].t

    @property
    def crow_distance(self) -> float:
        """Straight-line distance between endpoints."""
        return self.points[0].distance_to(self.points[-1])

    def travelled_distance(self) -> float:
        """Sum of inter-fix distances (noisy upper-ish bound on length)."""
        return sum(a.distance_to(b) for a, b in zip(self.points, self.points[1:]))

    def __repr__(self) -> str:
        return (f"Trajectory(trip={self.trip_id}, vehicle={self.vehicle_id}, "
                f"fixes={len(self.points)}, duration={self.duration:.0f}s)")


def render_path_to_gps(
    path: Path,
    trip_id: int,
    vehicle_id: int,
    sample_interval: float = 10.0,
    noise_std: float = 8.0,
    start_time: float = 0.0,
    rng: RngLike = None,
) -> Trajectory:
    """Drive ``path`` at free-flow speeds, emitting a fix every
    ``sample_interval`` seconds with isotropic Gaussian noise.

    ``noise_std`` of ~5-10 m mirrors consumer GPS receivers.  The first
    and last fixes always coincide (noisily) with the path endpoints so
    the trip's extent is preserved.
    """
    if sample_interval <= 0:
        raise ValueError(f"sample_interval must be positive, got {sample_interval}")
    if noise_std < 0:
        raise ValueError(f"noise_std must be non-negative, got {noise_std}")
    generator = make_rng(rng)
    network = path.network

    # Piecewise-linear position as a function of elapsed time.
    segment_ends: list[float] = [0.0]
    for edge in path.edges:
        segment_ends.append(segment_ends[-1] + edge.travel_time)
    total_time = segment_ends[-1]

    def position_at(elapsed: float) -> tuple[float, float]:
        elapsed = min(max(elapsed, 0.0), total_time)
        # Find the edge containing this time offset.
        for index, edge in enumerate(path.edges):
            if elapsed <= segment_ends[index + 1] or index == len(path.edges) - 1:
                begin = segment_ends[index]
                span = segment_ends[index + 1] - begin
                fraction = 0.0 if span == 0 else (elapsed - begin) / span
                a = network.vertex(edge.source)
                b = network.vertex(edge.target)
                return (a.x + (b.x - a.x) * fraction, a.y + (b.y - a.y) * fraction)
        raise AssertionError("unreachable: elapsed clamped to total_time")

    times = [0.0]
    while times[-1] + sample_interval < total_time:
        times.append(times[-1] + sample_interval)
    times.append(total_time)

    points = []
    for t in times:
        x, y = position_at(t)
        nx = x + generator.normal(0.0, noise_std) if noise_std else x
        ny = y + generator.normal(0.0, noise_std) if noise_std else y
        points.append(GPSPoint(nx, ny, start_time + t))
    return Trajectory(trip_id, vehicle_id, points)
