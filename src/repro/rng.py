"""Seeding helpers.

All randomised components of the library accept either an integer seed or
a :class:`numpy.random.Generator`.  Centralising the coercion here keeps
every experiment reproducible from a single integer and avoids the legacy
global ``numpy.random`` state.
"""

from __future__ import annotations

import numpy as np

#: Seed used throughout the test-suite and the default experiment configs.
DEFAULT_SEED = 2020

RngLike = int | np.random.Generator | None


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a generator seeded with :data:`DEFAULT_SEED` so that
    library behaviour is deterministic unless the caller explicitly asks
    for entropy.  An existing generator is returned unchanged, which lets
    call chains share one stream.
    """
    if seed is None:
        return np.random.default_rng(DEFAULT_SEED)
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be an int, Generator, or None, got {type(seed).__name__}")


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Used when one experiment seed must drive several components (network
    construction, fleet simulation, model initialisation) without their
    draws interleaving — adding draws to one component then never
    perturbs the others.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
